//! # Cocktail
//!
//! A from-scratch Rust reproduction of *"Cocktail: Chunk-Adaptive
//! Mixed-Precision Quantization for Long-Context LLM Inference"*
//! (DATE 2025).
//!
//! This facade crate re-exports the public API of every workspace member so
//! that downstream users can depend on a single crate:
//!
//! * [`tensor`] — dense linear algebra, FP16 rounding, RoPE, softmax.
//! * [`quant`] — INT2/INT4/INT8 group quantization and fused quantized GEMM.
//! * [`kvcache`] — the chunked KV-cache substrate with physical layout.
//! * [`model`] — a decoder-only transformer inference engine.
//! * [`retrieval`] — chunk scorers (Contriever-style dense encoders, BM25).
//! * [`baselines`] — FP16 / Atom / KIVI / KVQuant cache policies.
//! * [`core`] — the Cocktail method itself (search, reordering, block-wise
//!   mixed-precision attention, end-to-end pipeline).
//! * [`workloads`] — LongBench-style synthetic tasks and accuracy metrics.
//! * [`hwsim`] — the analytic GPU memory/latency/throughput model.
//! * [`server`] — the HTTP/1.1 serving gateway: SSE token streaming,
//!   disconnect-cancel, and admission backpressure over the engine.
//!
//! # Quickstart
//!
//! ```
//! use cocktail::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a small simulated model profile and a synthetic QA task.
//! let profile = ModelProfile::tiny();
//! let task = TaskGenerator::qasper(WorkloadConfig::tiny()).generate(42);
//!
//! // Run the Cocktail pipeline end to end: prefill, chunk-level search,
//! // reorder + quantize the KV cache, decode over the compressed cache.
//! let config = CocktailConfig::default().with_chunk_size(16)?;
//! let pipeline = CocktailPipeline::new(profile, config)?;
//! let outcome = pipeline.run(&task.context, &task.query, 8)?;
//! assert!(!outcome.answer.is_empty());
//! assert!(outcome.compression_ratio() >= 1.0);
//! # Ok(())
//! # }
//! ```

pub use cocktail_baselines as baselines;
pub use cocktail_core as core;
pub use cocktail_hwsim as hwsim;
pub use cocktail_kvcache as kvcache;
pub use cocktail_model as model;
pub use cocktail_quant as quant;
pub use cocktail_retrieval as retrieval;
pub use cocktail_server as server;
pub use cocktail_tensor as tensor;
pub use cocktail_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use cocktail_baselines::{
        AtomPolicy, CachePolicy, Fp16Policy, KiviPolicy, KvQuantPolicy, PolicyContext, PolicyReport,
    };
    pub use cocktail_core::{
        AdmitDecision, BatchScheduler, BitwidthPlan, ChunkQuantSearch, CocktailConfig,
        CocktailOutcome, CocktailPipeline, CocktailPolicy, FinishReason, PipelineTimings,
        PrefixCache, PrefixCacheConfig, PrefixCacheStats, RequestId, RequestOutcome, RequestState,
        RestoreReport, RoutePolicy, RoutedId, Router, RouterConfig, SamplerChain, SamplingParams,
        SchedulerConfig, ServeRequest, ServeRequestBuilder, ServingEngine, ServingStats,
        SnapshotReport, TokenEvent,
    };
    pub use cocktail_hwsim::{AcceleratorSpec, DeploymentModel, KvCacheProfile, RequestShape};
    pub use cocktail_kvcache::{
        read_snapshot, write_snapshot, ChunkPermutation, ChunkSegmentation, ChunkedKvCache,
        ChunkedLayerCache, KvChunk, PrefixKvBlock, SharedPrefixKv, SnapshotError, TrieSnapshot,
        SNAPSHOT_FORMAT_VERSION,
    };
    pub use cocktail_model::{
        BatchPrefill, DecodeSlot, InferenceEngine, ModelConfig, ModelProfile, PrefillSlot,
        Tokenizer,
    };
    pub use cocktail_quant::{Bitwidth, QuantAxis, QuantConfig, QuantizedMatrix};
    pub use cocktail_retrieval::{Bm25, ChunkScorer, ContrieverSim, EncoderKind};
    pub use cocktail_server::{
        AdminRestoreResponse, AdminSnapshotResponse, EngineSettings, GatewayClient, GatewayConfig,
        GatewayServer, GenerateRequest, GenerateResponse, ReplicaStats, SnapshotRequest,
        StatsResponse, StreamEvent, VersionResponse,
    };
    pub use cocktail_tensor::Matrix;
    pub use cocktail_workloads::eval::{EvalConfig, Evaluator};
    pub use cocktail_workloads::{
        TaskGenerator, TaskInstance, TaskKind, TrafficConfig, TrafficGenerator, TrafficRequest,
        WorkloadConfig,
    };
}
