//! Integration tests tying the measured pipeline behaviour to the analytic
//! hardware model: the compression the policies actually achieve on the
//! simulated model must agree with what the deployment model assumes.

use cocktail::hwsim::SearchKind;
use cocktail::prelude::*;

#[test]
fn measured_cocktail_mix_feeds_the_hardware_model() {
    // Run Cocktail on a real (simulated-model) request, convert the measured
    // chunk mix into a hardware profile and check the projected memory sits
    // between Atom and FP16, as in Figure 4.
    let task = TaskGenerator::qmsum(WorkloadConfig::small()).generate(5);
    let pipeline =
        CocktailPipeline::new(ModelProfile::llama2_7b_sim(), CocktailConfig::default()).unwrap();
    let outcome = pipeline.run(&task.context, &task.query, 2).unwrap();

    let profile = KvCacheProfile::from_chunk_counts(
        "Cocktail (measured)",
        &outcome.report.chunk_bitwidths,
        0.0,
        32,
        true,
        SearchKind::ChunkLevel,
    );
    let deployment = DeploymentModel::new(
        AcceleratorSpec::a800(),
        ModelProfile::llama2_7b_sim().full().clone(),
        RequestShape::with_context(3968),
    );
    let fp16 = deployment.gpu_memory_bytes(&KvCacheProfile::fp16(), 1);
    let atom = deployment.gpu_memory_bytes(&KvCacheProfile::atom_int4(), 1);
    let measured = deployment.gpu_memory_bytes(&profile, 1);
    assert!(measured < fp16, "cocktail must project below FP16");
    // Depending on how many chunks the search keeps at FP16, the measured
    // mix can land on either side of uniform INT4, but never far below the
    // pure-INT2 floor.
    let int2_floor = deployment.gpu_memory_bytes(
        &KvCacheProfile::new(
            "int2-floor",
            &[(Bitwidth::Int2, 1.0)],
            0.0,
            32,
            true,
            SearchKind::None,
        ),
        1,
    );
    assert!(measured >= int2_floor);
    assert!(atom < fp16);
}

#[test]
fn measured_compression_ratio_matches_analytic_bytes_per_value() {
    // The compression measured on the real chunked cache (for a context
    // that divides evenly into chunks) should be close to the analytic
    // bytes-per-value model for the same mix.
    let evaluator = Evaluator::new(EvalConfig::new(32));
    let task = TaskGenerator::qasper(WorkloadConfig::paper_scale()).generate(17);
    let policy = CocktailPolicy::new(CocktailConfig::default()).unwrap();
    let outcome = evaluator.evaluate(&task, &policy).unwrap();

    let profile = KvCacheProfile::from_chunk_counts(
        "measured",
        &outcome.report.chunk_bitwidths,
        0.0,
        32,
        true,
        SearchKind::ChunkLevel,
    );
    let measured_ratio = outcome.fp16_cache_bytes as f64 / outcome.cache_bytes as f64;
    let analytic_ratio = 2.0 / profile.bytes_per_value();
    let relative_gap = (measured_ratio - analytic_ratio).abs() / analytic_ratio;
    assert!(
        relative_gap < 0.35,
        "measured {measured_ratio:.2}x vs analytic {analytic_ratio:.2}x"
    );
}

#[test]
fn oom_ordering_is_consistent_across_models() {
    // For every model profile the admissible batch ordering must be
    // FP16 <= KVQuant <= Atom, with Cocktail in between Atom and FP16.
    for model in ModelProfile::paper_suite() {
        let deployment = DeploymentModel::new(
            AcceleratorSpec::a800(),
            model.full().clone(),
            RequestShape::with_context(model.full().max_context - 128),
        );
        let max = |p: &KvCacheProfile| deployment.max_batch(p, 1024);
        let fp16 = max(&KvCacheProfile::fp16());
        let atom = max(&KvCacheProfile::atom_int4());
        let kvq = max(&KvCacheProfile::kvquant_default());
        let cocktail = max(&KvCacheProfile::cocktail_default());
        assert!(fp16 <= kvq && kvq <= atom, "{}", model.name());
        // Every quantized method admits at least as many requests as FP16;
        // Cocktail's default mix (INT2-heavy) sits near Atom on either side.
        assert!(fp16 <= cocktail, "{}", model.name());
        assert!(
            cocktail * 10 >= atom * 7,
            "{}: cocktail {} vs atom {}",
            model.name(),
            cocktail,
            atom
        );
    }
}

#[test]
fn measured_serving_capacity_mirrors_the_hwsim_batch_ordering() {
    // The hwsim claim behind Figure 6 is that compression buys batch
    // capacity: under the same memory budget, Cocktail admits more
    // concurrent requests than FP16. Check the *measured* serving engine
    // agrees: with a budget sized for a couple of FP16 requests, the
    // Cocktail-policy engine reaches a strictly higher peak concurrency
    // than the FP16-policy engine on identical traffic.
    let config = CocktailConfig::default().with_chunk_size(16).unwrap();
    let traffic = TrafficGenerator::new(TrafficConfig::small(5), 1234).generate();

    let serve = |fp16: bool, budget: Option<usize>| -> (usize, Vec<usize>) {
        let mut engine = ServingEngine::new(ModelProfile::tiny(), config.clone()).unwrap();
        if let Some(bytes) = budget {
            engine = engine.with_scheduler_config(SchedulerConfig::default().with_budget(bytes));
        }
        for request in &traffic {
            let mut serve_request = ServeRequest::builder()
                .context(request.task.context.clone())
                .query(request.task.query.clone())
                .max_new_tokens(request.max_new_tokens);
            if fp16 {
                serve_request = serve_request.policy(Box::new(Fp16Policy::new()));
            }
            engine.submit(serve_request.build());
        }
        let mut peak = 0;
        while !engine.is_idle() {
            engine.step().unwrap();
            peak = peak.max(engine.scheduler().running_len());
        }
        let costs = (0..traffic.len() as u64)
            .filter_map(|raw| {
                let id = RequestId::new(raw);
                engine
                    .stats(id)
                    .map(|s| s.cache_bytes + s.reserved_tail_bytes)
            })
            .collect();
        (peak, costs)
    };

    // Probe both policies unconstrained to size the budget.
    let (_, fp16_costs) = serve(true, None);
    let (_, cocktail_costs) = serve(false, None);
    let fp16_avg = fp16_costs.iter().sum::<usize>() / fp16_costs.len();
    let cocktail_avg = cocktail_costs.iter().sum::<usize>() / cocktail_costs.len();
    assert!(
        cocktail_avg < fp16_avg,
        "cocktail requests must be cheaper: {cocktail_avg} vs {fp16_avg}"
    );

    // A budget that fits two FP16 requests fits strictly more Cocktail
    // requests — measured compression directly buys batch capacity.
    let budget = fp16_avg * 2 + fp16_avg / 2;
    let (fp16_peak, _) = serve(true, Some(budget));
    let (cocktail_peak, _) = serve(false, Some(budget));
    assert!(
        cocktail_peak > fp16_peak,
        "cocktail peak batch {cocktail_peak} must exceed fp16 peak {fp16_peak}"
    );

    // And the analytic model predicts the same ordering for the real A800.
    let deployment = DeploymentModel::new(
        AcceleratorSpec::a800(),
        ModelProfile::llama2_7b_sim().full().clone(),
        RequestShape::with_context(3968),
    );
    assert!(
        deployment.max_batch(&KvCacheProfile::cocktail_default(), 1024)
            > deployment.max_batch(&KvCacheProfile::fp16(), 1024)
    );
}
