//! Socket-level end-to-end tests for the HTTP gateway: every assertion
//! here crosses a real localhost TCP connection.
//!
//! The load-bearing invariants:
//!
//! * bytes streamed over SSE are identical to the answer the in-process
//!   engine produces for the same request (batching, interleaving, and
//!   the prefix cache must not leak into the wire protocol),
//! * a client dropping its socket mid-stream cancels the request and
//!   releases budget/queue/pins, leaving concurrent survivors
//!   byte-identical to their solo runs,
//! * over-capacity traffic surfaces as 429 + queue depth, not unbounded
//!   buffering,
//! * shutdown from idle reports zero scheduler bytes and zero pinned
//!   prefix entries.

use std::time::{Duration, Instant};

use cocktail::prelude::*;
use cocktail::server::{ClientError, EngineSettings, ErrorResponse, StreamOutcome};

fn tiny_settings() -> EngineSettings {
    let config = CocktailConfig::default()
        .with_chunk_size(16)
        .expect("valid chunk size");
    EngineSettings::new(ModelProfile::tiny(), config)
}

fn start_server(
    settings: EngineSettings,
    gateway: GatewayConfig,
) -> (GatewayServer, GatewayClient) {
    let server = GatewayServer::start(settings, gateway).expect("bind localhost");
    let client = GatewayClient::new(server.addr());
    (server, client)
}

/// Ground-truth reference for byte-identity checks: one shared
/// [`CocktailPipeline`] running requests sequentially, in the same order
/// they are submitted to the gateway. The tokenizer interns vocabulary
/// in encounter order, so the reference has to see the same prompts in
/// the same order as the engine behind the gateway — this mirrors the
/// "solo sequential run" convention of the core serving tests.
struct SoloReference {
    pipeline: CocktailPipeline,
}

impl SoloReference {
    fn new() -> Self {
        let config = CocktailConfig::default()
            .with_chunk_size(16)
            .expect("valid chunk size");
        Self {
            pipeline: CocktailPipeline::new(ModelProfile::tiny(), config).expect("pipeline"),
        }
    }

    fn answer(&self, ctx: &str, query: &str, max_new_tokens: usize) -> String {
        self.pipeline
            .run(ctx, query, max_new_tokens)
            .expect("reference run")
            .answer
    }
}

/// The answer a fresh single-request engine produces. Only a valid
/// reference for the *first* request served by a fresh gateway (the
/// tokenizer starts empty on both sides).
fn first_request_answer(
    ctx: &str,
    query: &str,
    max_new_tokens: usize,
    stop: Option<&str>,
) -> String {
    let config = CocktailConfig::default()
        .with_chunk_size(16)
        .expect("valid chunk size");
    let mut engine = ServingEngine::new(ModelProfile::tiny(), config).expect("engine");
    let mut builder = ServeRequest::builder()
        .context(ctx)
        .query(query)
        .max_new_tokens(max_new_tokens);
    if let Some(stop) = stop {
        builder = builder.stop_sequence(stop);
    }
    let id = engine.submit(builder.build());
    let outcomes = engine.run_until_idle().expect("solo run");
    outcomes
        .into_iter()
        .find(|o| o.id == id)
        .expect("solo outcome")
        .outcome
        .answer
}

fn traffic(n: usize, seed: u64) -> Vec<TrafficRequest> {
    TrafficGenerator::new(TrafficConfig::small(n).with_max_new_tokens(10), seed).generate()
}

fn poll_stats_until(
    client: &GatewayClient,
    what: &str,
    predicate: impl Fn(&StatsResponse) -> bool,
) -> StatsResponse {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats().expect("stats endpoint");
        if predicate(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last stats: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn generate_over_tcp_matches_in_process_answers() {
    let (server, client) = start_server(tiny_settings(), GatewayConfig::default());
    let reference = SoloReference::new();
    for request in traffic(4, 0x11AD) {
        let expected = reference.answer(
            &request.task.context,
            &request.task.query,
            request.max_new_tokens,
        );
        let response = client
            .generate(&GenerateRequest::new(
                request.task.context.clone(),
                request.task.query.clone(),
                request.max_new_tokens,
            ))
            .expect("generate succeeds");
        assert_eq!(response.answer, expected, "request {}", request.index);
        assert_eq!(response.finish, "length");
        assert!(response.generated_tokens > 0);
    }
    let last = server.shutdown();
    assert_eq!(last.completed, 4);
}

#[test]
fn streamed_concatenation_equals_in_process_answer() {
    let (server, client) = start_server(tiny_settings(), GatewayConfig::default());
    let reference = SoloReference::new();
    for request in traffic(3, 0x5EED) {
        let expected = reference.answer(
            &request.task.context,
            &request.task.query,
            request.max_new_tokens,
        );
        let handle = client
            .open_stream(&GenerateRequest::new(
                request.task.context.clone(),
                request.task.query.clone(),
                request.max_new_tokens,
            ))
            .expect("stream opens");
        let outcome = handle.finish().expect("stream finishes");
        assert_eq!(outcome.finish, "length");
        assert_eq!(outcome.streamed, expected, "request {}", request.index);
        assert_eq!(
            outcome.answer.as_deref(),
            Some(expected.as_str()),
            "final event repeats the full answer"
        );
        assert_eq!(outcome.token_events, request.max_new_tokens);
    }
    server.shutdown();
}

#[test]
fn stop_sequences_end_streams_early_over_the_wire() {
    let (server, client) = start_server(tiny_settings(), GatewayConfig::default());
    let request = &traffic(1, 0x57A9)[0];
    // Pick a stop string the unstopped answer provably contains, so the
    // stop must fire.
    let unstopped = first_request_answer(&request.task.context, &request.task.query, 12, None);
    let stop = unstopped
        .split_whitespace()
        .nth(1)
        .expect("answer has words")
        .to_string();
    let expected =
        first_request_answer(&request.task.context, &request.task.query, 12, Some(&stop));
    let outcome = client
        .open_stream(
            &GenerateRequest::new(request.task.context.clone(), request.task.query.clone(), 12)
                .with_stop(stop.clone()),
        )
        .expect("stream opens")
        .finish()
        .expect("stream finishes");
    assert_eq!(outcome.finish, "stop", "stop {stop:?} must fire");
    assert_eq!(outcome.streamed, expected);
    assert!(outcome.streamed.contains(&stop));
    assert!(outcome.token_events < 12);
    server.shutdown();
}

#[test]
fn malformed_requests_get_4xx_not_a_hung_connection() {
    let (server, client) = start_server(tiny_settings(), GatewayConfig::default());
    let cases: Vec<(&str, Vec<u8>, u16)> = vec![
        (
            "bad json",
            b"POST /api/generate HTTP/1.1\r\nContent-Length: 8\r\n\r\nnot json".to_vec(),
            400,
        ),
        (
            "missing fields",
            b"POST /api/generate HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}".to_vec(),
            400,
        ),
        (
            "zero token budget",
            format!(
                "POST /api/generate HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                "{\"context\":\"c\",\"query\":\"q\",\"max_new_tokens\":0}".len(),
                "{\"context\":\"c\",\"query\":\"q\",\"max_new_tokens\":0}"
            )
            .into_bytes(),
            400,
        ),
        (
            "unsupported version",
            b"GET /api/stats HTTP/2.0\r\n\r\n".to_vec(),
            505,
        ),
        (
            "chunked request body",
            b"POST /api/generate HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
            501,
        ),
        (
            "header with no colon",
            b"GET /api/stats HTTP/1.1\r\nBroken Header\r\n\r\n".to_vec(),
            400,
        ),
        (
            "unknown path",
            b"GET /api/nope HTTP/1.1\r\n\r\n".to_vec(),
            404,
        ),
        (
            "wrong method on a known path",
            b"GET /api/generate HTTP/1.1\r\n\r\n".to_vec(),
            405,
        ),
        (
            "unimplemented method",
            b"DELETE /api/generate HTTP/1.1\r\n\r\n".to_vec(),
            501,
        ),
        (
            "oversized declared body",
            b"POST /api/generate HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n".to_vec(),
            413,
        ),
    ];
    for (what, raw, status) in cases {
        let response = client.send_raw(&raw).expect("server answers");
        assert_eq!(response.status, status, "{what}: {}", response.body_str());
    }
    // An oversized head (431) needs a header bigger than the cap.
    let mut huge = b"GET /api/stats HTTP/1.1\r\nX-Padding: ".to_vec();
    huge.extend_from_slice(&vec![b'a'; 20 * 1024]);
    huge.extend_from_slice(b"\r\n\r\n");
    let response = client.send_raw(&huge).expect("server answers");
    assert_eq!(response.status, 431);
    // The engine stays healthy through all of it.
    let request = &traffic(1, 0xF00D)[0];
    client
        .generate(&GenerateRequest::new(
            request.task.context.clone(),
            request.task.query.clone(),
            4,
        ))
        .expect("engine still serves after malformed traffic");
    server.shutdown();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let (server, client) = start_server(tiny_settings(), GatewayConfig::default());
    let raw = b"GET /healthz HTTP/1.1\r\n\r\nGET /api/v1/stats HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
    let responses = client
        .send_raw_pipelined(raw, 3)
        .expect("three pipelined responses");
    assert_eq!(responses[0].status, 200);
    assert!(responses[0].body_str().contains("ok"));
    assert_eq!(responses[1].status, 200);
    assert!(responses[1].body_str().contains("kv_bytes_in_use"));
    assert_eq!(responses[2].status, 200);
    server.shutdown();
}

#[test]
fn invalid_engine_input_maps_to_400_with_the_failure_message() {
    let (server, client) = start_server(tiny_settings(), GatewayConfig::default());
    // An empty context passes JSON validation but fails tokenization in
    // the engine; the Failed terminal event must become a clean 400.
    let err = client
        .generate(&GenerateRequest::new("", "question", 4))
        .expect_err("empty context fails");
    match err {
        ClientError::Status { status, error } => {
            assert_eq!(status, 400);
            assert!(error.error.contains("non-empty"), "{}", error.error);
        }
        other => panic!("expected a status error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn over_capacity_requests_get_429_with_queue_depth() {
    // One-at-a-time decode and a single queue slot make the rejection
    // point deterministic.
    let settings = tiny_settings().with_scheduler(SchedulerConfig::default().with_max_batch(1));
    let gateway = GatewayConfig::default().with_queue_limit(1);
    let (server, client) = start_server(settings, gateway);
    let request = &traffic(1, 0xCAFE)[0];
    // A long context plus a big token budget keeps the occupying request
    // decoding for long enough that the later submits race nothing.
    let long_context =
        "the cocktail gateway keeps decoding while later clients line up outside ".repeat(55);
    let slow = GenerateRequest::new(long_context, request.task.query.clone(), 300);

    // First stream occupies the single decode slot...
    let mut first = client.open_stream(&slow).expect("first stream opens");
    first.read_tokens(1).expect("first stream is decoding");
    poll_stats_until(&client, "first request running", |s| s.running == 1);
    // ...second one fills the single queue slot...
    let second = client.open_stream(&slow).expect("second stream queues");
    poll_stats_until(&client, "second request queued", |s| s.queued == 1);
    // ...third is told to back off, with the queue depth in the body.
    let err = client
        .generate(&GenerateRequest::new(
            request.task.context.clone(),
            request.task.query.clone(),
            4,
        ))
        .expect_err("queue is full");
    match err {
        ClientError::Status { status, error } => {
            assert_eq!(status, 429, "{}", error.error);
            assert_eq!(error.queued, Some(1));
            assert_eq!(error.queue_limit, Some(1));
        }
        other => panic!("expected 429, got {other:?}"),
    }

    // Dropping both streams cancels them and drains the queue.
    first.abort();
    second.abort();
    poll_stats_until(&client, "cancellations to land", |s| {
        s.queued == 0 && s.running == 0 && s.cancelled == 2
    });
    let request = &traffic(1, 0xD00D)[0];
    client
        .generate(&GenerateRequest::new(
            request.task.context.clone(),
            request.task.query.clone(),
            4,
        ))
        .expect("capacity is back after the disconnects");
    server.shutdown();
}

/// Satellite 3: the socket-level twin of the cancellation proptest. A
/// seeded client drops its TCP connection mid-stream at a random token
/// step; every surviving concurrent stream must stay byte-identical to
/// its solo run, and the dropped request's budget must come back.
#[test]
fn mid_stream_disconnect_leaves_survivors_byte_identical() {
    let trace = TrafficGenerator::new(
        TrafficConfig::small(6)
            .with_max_new_tokens(12)
            .with_cancellations(400),
        0xD15C,
    )
    .generate();
    assert!(
        trace.iter().any(|r| r.cancel_after_tokens.is_some()),
        "seed must produce at least one disconnecting client"
    );
    assert!(
        trace.iter().any(|r| r.cancel_after_tokens.is_none()),
        "seed must leave survivors"
    );
    // The reference runs every request — including the ones whose
    // clients will hang up — because the tokenizer interns each prompt's
    // vocabulary whether or not decode completes.
    let reference = SoloReference::new();
    let expected: Vec<String> = trace
        .iter()
        .map(|r| reference.answer(&r.task.context, &r.task.query, r.max_new_tokens))
        .collect();

    let (server, client) = start_server(tiny_settings(), GatewayConfig::default());
    // Open every stream from this thread, in trace order: submission
    // order fixes the engine's vocabulary-intern order, which is what
    // makes the sequential reference above apply.
    let handles: Vec<_> = trace
        .iter()
        .map(|request| {
            let generate = GenerateRequest::new(
                request.task.context.clone(),
                request.task.query.clone(),
                request.max_new_tokens,
            );
            client.open_stream(&generate).expect("stream opens")
        })
        .collect();
    let mut workers = Vec::new();
    for ((request, expected), mut handle) in trace
        .iter()
        .cloned()
        .zip(expected.iter().cloned())
        .zip(handles)
    {
        workers.push(std::thread::spawn(move || {
            match request.cancel_after_tokens {
                Some(after) => {
                    // Read a few tokens, then vanish without a goodbye.
                    handle.read_tokens(after).expect("partial read");
                    handle.abort();
                    None
                }
                None => {
                    let outcome = handle.finish().expect("survivor finishes");
                    assert_eq!(
                        outcome.streamed, expected,
                        "survivor {} diverged from its solo run",
                        request.index
                    );
                    assert_eq!(outcome.finish, "length");
                    Some(outcome.streamed)
                }
            }
        }));
    }
    let mut survivors = 0;
    for worker in workers {
        if worker.join().expect("client thread").is_some() {
            survivors += 1;
        }
    }
    assert!(survivors > 0);

    // Every disconnected request must be reaped; nothing may stay
    // admitted or queued once the storm is over. (A disconnecting client
    // can lose the race with a fast decode, so `completed` may exceed
    // the survivor count, but nothing may be left running or leaking.)
    let stats = poll_stats_until(&client, "disconnect storm to settle", |s| {
        s.queued == 0 && s.running == 0 && s.completed + s.cancelled == 6
    });
    assert!(stats.completed >= survivors);
    assert_eq!(stats.kv_bytes_in_use, 0, "cancelled budget leaked");
    server.shutdown();
}

/// A two-replica fleet: streams carry replica-qualified wire ids
/// (`"r1:req-3"`), every stream is byte-identical to a solo pipeline
/// replaying its replica's arrival subsequence, and `/api/v1/stats` reports
/// a per-replica breakdown whose rows sum to the aggregate.
#[test]
fn fleet_gateway_streams_route_and_report_per_replica() {
    let replicas = 2usize;
    // Three tenants branching off shared preambles over two replicas:
    // the follower requests give the fingerprint router something to
    // match, and three groups over two replicas avoid any accidental
    // alignment between tenant identity and placement.
    let trace = TrafficGenerator::new(
        TrafficConfig::small(8)
            .with_max_new_tokens(8)
            .with_branching_prefix(3, 24, 6),
        0xAF1,
    )
    .generate();
    let settings = tiny_settings().with_prefix_cache(PrefixCacheConfig::default());
    let (server, client) = start_server(settings, GatewayConfig::default().with_replicas(replicas));
    // Open sequentially (fixing each replica's arrival order), consume
    // concurrently.
    let handles: Vec<_> = trace
        .iter()
        .map(|request| {
            client
                .open_stream(&GenerateRequest::new(
                    request.task.context.clone(),
                    request.task.query.clone(),
                    request.max_new_tokens,
                ))
                .expect("stream opens")
        })
        .collect();
    let workers: Vec<_> = handles
        .into_iter()
        .map(|mut handle| {
            std::thread::spawn(move || {
                handle.read_tokens(1).expect("first token");
                let id = handle.id().expect("events carry the id").to_string();
                (id, handle.finish().expect("stream finishes"))
            })
        })
        .collect();
    let results: Vec<(String, StreamOutcome)> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();

    // Wire ids are replica-qualified on a fleet.
    let placements: Vec<usize> = results
        .iter()
        .map(|(id, _)| {
            id.strip_prefix('r')
                .and_then(|rest| rest.split(':').next())
                .and_then(|digits| digits.parse().ok())
                .unwrap_or_else(|| panic!("wire id {id:?} lacks a replica prefix"))
        })
        .collect();
    assert!(placements.iter().all(|&r| r < replicas));

    // Byte-identity per replica: a fresh solo reference replays exactly
    // the subsequence this replica served, in arrival order.
    for replica in 0..replicas {
        let reference = SoloReference::new();
        for (i, request) in trace.iter().enumerate() {
            if placements[i] != replica {
                continue;
            }
            let expected = reference.answer(
                &request.task.context,
                &request.task.query,
                request.max_new_tokens,
            );
            assert_eq!(
                results[i].1.streamed, expected,
                "request {} diverged on replica {replica}",
                request.index
            );
        }
    }

    // The stats breakdown has one row per replica and sums to the
    // aggregate.
    let stats = poll_stats_until(&client, "fleet to drain", |s| {
        s.queued == 0 && s.running == 0 && s.completed == trace.len()
    });
    assert_eq!(stats.replicas.len(), replicas);
    for (r, row) in stats.replicas.iter().enumerate() {
        assert_eq!(row.replica, r);
    }
    let sum = |f: fn(&ReplicaStats) -> usize| stats.replicas.iter().map(f).sum::<usize>();
    assert_eq!(sum(|r| r.completed), stats.completed);
    assert_eq!(sum(|r| r.kv_bytes_in_use), stats.kv_bytes_in_use);
    assert_eq!(sum(|r| r.prefix_reused_tokens), stats.prefix_reused_tokens);
    assert_eq!(
        stats.affinity_routed + stats.least_loaded_routed,
        trace.len(),
        "every admission was either affinity- or least-loaded-routed"
    );
    // Branching followers re-entered warm tries somewhere in the fleet.
    assert!(stats.affinity_routed > 0);
    assert!(stats.prefix_reused_tokens > 0);
    server.shutdown();
}

/// Only a fleet with *every* replica saturated answers 429, and the
/// refusal names the fleet width in `X-Replica-Count`.
#[test]
fn fleet_429_only_when_all_replicas_are_saturated() {
    let replicas = 2usize;
    let settings = tiny_settings().with_scheduler(SchedulerConfig::default().with_max_batch(1));
    let gateway = GatewayConfig::default()
        .with_queue_limit(1)
        .with_replicas(replicas);
    let (server, client) = start_server(settings, gateway);
    let long_context =
        "the cocktail fleet keeps decoding while later clients line up outside ".repeat(55);
    // A token budget far beyond what decodes during this test keeps all
    // four occupying requests in-flight until they are aborted below.
    let slow = GenerateRequest::new(long_context.clone(), "when is it my turn", 4000);

    // Four slow streams fill the fleet exactly: each replica ends up with
    // one running and one queued request (a saturated hot replica spills
    // to the other instead of refusing). No stream is read from — a
    // queued stream's first token only arrives once the decode slot in
    // front of it drains, long after this test is done. Each request must
    // land on its replica before the next is routed: a just-submitted
    // request counts as queued until its driver steps it, and two
    // un-stepped requests sitting on the two replicas would make the
    // whole fleet look transiently full.
    let mut occupying = Vec::new();
    for i in 0..replicas * 2 {
        occupying.push(client.open_stream(&slow).expect("stream admitted"));
        // Affinity routes each stream to the hot replica until it is
        // full, so the fleet fills running/queued/running/queued.
        let expect_running = i / 2 + 1;
        poll_stats_until(&client, "occupying request to land", |s| {
            s.running == expect_running && s.running + s.queued == i + 1
        });
    }
    poll_stats_until(&client, "fleet saturation", |s| {
        s.running + s.queued == replicas * 2
    });

    // The fifth client is refused by the whole fleet, and the 429 carries
    // the replica count.
    let body =
        format!("{{\"context\":\"{long_context}\",\"query\":\"one more\",\"max_new_tokens\":4}}");
    let raw = format!(
        "POST /api/generate HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let response = client.send_raw(raw.as_bytes()).expect("server answers");
    assert_eq!(response.status, 429, "{}", response.body_str());
    let replica_count = response
        .headers
        .iter()
        .find(|(name, _)| name.eq_ignore_ascii_case("x-replica-count"))
        .map(|(_, value)| value.as_str());
    assert_eq!(replica_count, Some("2"));

    // Disconnecting the occupying clients restores fleet capacity.
    for handle in occupying {
        handle.abort();
    }
    poll_stats_until(&client, "cancellations to land", |s| {
        s.queued == 0 && s.running == 0
    });
    client
        .generate(&GenerateRequest::new(
            "capacity is back".to_string(),
            "right".to_string(),
            4,
        ))
        .expect("fleet serves again after the disconnects");
    server.shutdown();
}

fn header(response: &cocktail::server::RawResponse, name: &str) -> Option<String> {
    response
        .headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, value)| value.clone())
}

fn temp_snapshot_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("cocktail_gw_{}_{tag}.snap", std::process::id()))
        .display()
        .to_string()
}

#[test]
fn versioned_surface_answers_and_legacy_paths_stay_deprecated() {
    let (server, client) = start_server(tiny_settings(), GatewayConfig::default());

    // The version endpoint names the API and the snapshot wire format.
    let version = client.version().expect("version endpoint");
    assert_eq!(version.api_version, "v1");
    assert_eq!(version.snapshot_format, SNAPSHOT_FORMAT_VERSION as usize);
    assert!(!version.crate_version.is_empty());

    // Legacy GET /api/stats answers a real 308 to its successor.
    let response = client
        .send_raw(b"GET /api/stats HTTP/1.1\r\nConnection: close\r\n\r\n")
        .expect("server answers");
    assert_eq!(response.status, 308, "{}", response.body_str());
    assert_eq!(
        header(&response, "location").as_deref(),
        Some("/api/v1/stats")
    );
    assert_eq!(header(&response, "deprecation").as_deref(), Some("true"));

    // Legacy POST /api/generate still serves identically (a 308 would
    // force a body replay) but flags its successor in the headers.
    let request = &traffic(1, 0xB007)[0];
    let body =
        GenerateRequest::new(request.task.context.clone(), request.task.query.clone(), 6).to_json();
    let raw = format!(
        "POST /api/generate HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let response = client.send_raw(raw.as_bytes()).expect("server answers");
    assert_eq!(response.status, 200, "{}", response.body_str());
    assert_eq!(header(&response, "deprecation").as_deref(), Some("true"));
    let link = header(&response, "link").expect("legacy answers carry a Link header");
    assert!(link.contains("/api/v1/generate") && link.contains("successor-version"));
    let legacy = GenerateResponse::from_json(&response.body_str()).expect("legacy body parses");

    // The same request on the v1 path answers byte-identically: both
    // paths feed the same deterministic engine, and with no prefix cache
    // configured a repeat serve replays the same computation.
    let v1 = client
        .generate(&GenerateRequest::new(
            request.task.context.clone(),
            request.task.query.clone(),
            6,
        ))
        .expect("v1 serve");
    assert_eq!(v1.answer, legacy.answer);
    server.shutdown();
}

#[test]
fn admin_snapshot_and_restore_round_trip_over_the_wire() {
    let settings = tiny_settings().with_prefix_cache(PrefixCacheConfig::default());
    let (server_a, client_a) = start_server(settings.clone(), GatewayConfig::default());
    let request = &traffic(1, 0xCAFE)[0];
    let generate =
        GenerateRequest::new(request.task.context.clone(), request.task.query.clone(), 8);
    let cold = client_a.generate(&generate).expect("cold serve");
    let warm = client_a.generate(&generate).expect("warm serve");
    assert_eq!(cold.answer, warm.answer);

    let path = temp_snapshot_path("roundtrip");
    let snap = client_a
        .admin_snapshot(&path, None)
        .expect("admin snapshot");
    assert_eq!(snap.replicas.len(), 1);
    assert!(
        snap.replicas[0].error.is_none(),
        "{:?}",
        snap.replicas[0].error
    );
    assert!(snap.replicas[0].bytes > 0);
    assert!(snap.replicas[0].nodes > 0);
    assert_eq!(
        snap.replicas[0].path, path,
        "single-replica fleets use the path verbatim"
    );
    server_a.shutdown();

    // A fresh gateway restored from the snapshot serves its *first*
    // request warm and byte-identical to the pre-restart answers.
    let (server_b, client_b) = start_server(settings, GatewayConfig::default());
    let restore = client_b.admin_restore(&path, None).expect("admin restore");
    assert!(
        restore.replicas[0].restored,
        "restore refused: {:?}",
        restore.replicas[0].reason
    );
    assert_eq!(restore.replicas[0].nodes, snap.replicas[0].nodes);
    assert!(restore.replicas[0].resident_bytes > 0);
    let restarted = client_b.generate(&generate).expect("post-restart serve");
    assert_eq!(restarted.answer, warm.answer);
    let stats = client_b.stats().expect("stats endpoint");
    assert!(
        stats.prefix_reused_tokens > 0,
        "first post-restore request must hit the restored trie: {stats:?}"
    );
    let _ = std::fs::remove_file(&path);
    server_b.shutdown();
}

#[test]
fn fleet_admin_operations_target_replicas_individually_or_all() {
    let settings = tiny_settings().with_prefix_cache(PrefixCacheConfig::default());
    let gateway = GatewayConfig::default().with_replicas(2);
    let (server, client) = start_server(settings, gateway);
    for request in traffic(3, 0x5EED) {
        client
            .generate(&GenerateRequest::new(
                request.task.context.clone(),
                request.task.query.clone(),
                4,
            ))
            .expect("serve");
    }

    // Fleet-wide snapshot: one row per replica, paths suffixed to stay
    // distinct.
    let base = temp_snapshot_path("fleet");
    let snap = client.admin_snapshot(&base, None).expect("fleet snapshot");
    assert_eq!(snap.replicas.len(), 2);
    assert_eq!(snap.replicas[0].path, format!("{base}.0"));
    assert_eq!(snap.replicas[1].path, format!("{base}.1"));
    assert!(snap.replicas.iter().all(|r| r.error.is_none()));

    // Targeted snapshot: exactly one row, path verbatim.
    let one_path = temp_snapshot_path("replica1");
    let one = client
        .admin_snapshot(&one_path, Some(1))
        .expect("targeted snapshot");
    assert_eq!(one.replicas.len(), 1);
    assert_eq!(one.replicas[0].replica, 1);
    assert_eq!(one.replicas[0].path, one_path);

    // Fleet-wide restore of the fleet snapshot succeeds on idle replicas.
    let restore = client.admin_restore(&base, None).expect("fleet restore");
    assert_eq!(restore.replicas.len(), 2);
    for row in &restore.replicas {
        assert!(
            row.restored,
            "replica {} refused: {:?}",
            row.replica, row.reason
        );
    }

    for path in [format!("{base}.0"), format!("{base}.1"), one_path] {
        let _ = std::fs::remove_file(path);
    }
    server.shutdown();
}

#[test]
fn admin_validation_and_degraded_restores_answer_cleanly() {
    let (server, client) = start_server(tiny_settings(), GatewayConfig::default());

    // Missing "path" in the body → 400.
    let response = client
        .send_raw(b"POST /api/v1/admin/snapshot HTTP/1.1\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}")
        .expect("server answers");
    assert_eq!(response.status, 400, "{}", response.body_str());

    // Out-of-range and non-numeric replica selectors → 400.
    let body = "{\"path\":\"/tmp/x.snap\"}";
    for query in ["?replica=7", "?replica=abc", "?nonsense=1"] {
        let raw = format!(
            "POST /api/v1/admin/restore{query} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        let response = client.send_raw(raw.as_bytes()).expect("server answers");
        assert_eq!(response.status, 400, "{query}: {}", response.body_str());
    }

    // Restoring from a missing file degrades (200, restored: false,
    // reason set) instead of failing the replica.
    let restore = client
        .admin_restore("/definitely/not/here.snap", None)
        .expect("degraded restore still answers 200");
    assert!(!restore.replicas[0].restored);
    let reason = restore.replicas[0].reason.clone().expect("reason is set");
    assert!(reason.contains("read snapshot"), "{reason}");

    // The engine keeps serving after all of it.
    let request = &traffic(1, 0xD06)[0];
    client
        .generate(&GenerateRequest::new(
            request.task.context.clone(),
            request.task.query.clone(),
            4,
        ))
        .expect("engine still serves");
    server.shutdown();
}

#[test]
fn restore_is_refused_while_the_replica_is_busy() {
    let settings = tiny_settings().with_scheduler(SchedulerConfig::default().with_max_batch(1));
    let (server, client) = start_server(settings, GatewayConfig::default());
    let long_context =
        "a restore racing live decode traffic must be refused not risked ".repeat(40);
    // A stream with a huge budget that is never read keeps the replica
    // busy for the duration of the test.
    let handle = client
        .open_stream(&GenerateRequest::new(long_context, "still going", 4000))
        .expect("stream admitted");
    poll_stats_until(&client, "the stream to start running", |s| s.running > 0);

    let restore = client
        .admin_restore("/tmp/whatever.snap", None)
        .expect("busy restore still answers 200");
    assert!(!restore.replicas[0].restored);
    let reason = restore.replicas[0].reason.clone().expect("reason is set");
    assert!(reason.contains("replica busy"), "{reason}");

    handle.abort();
    poll_stats_until(&client, "the cancel to land", |s| {
        s.running == 0 && s.queued == 0
    });
    server.shutdown();
}

#[test]
fn shutdown_from_idle_reports_zero_bytes_and_zero_pins() {
    // Shared-prefix traffic with the prefix cache on: pins must be
    // released once streams finish, even though cache entries may stay
    // resident.
    let settings = tiny_settings().with_prefix_cache(PrefixCacheConfig::default());
    let (server, client) = start_server(settings, GatewayConfig::default());
    let trace = TrafficGenerator::new(
        TrafficConfig::small(4)
            .with_max_new_tokens(8)
            .with_shared_prefix(2, 24),
        0x9155,
    )
    .generate();
    let mut workers = Vec::new();
    for request in &trace {
        let client = client.clone();
        let generate = GenerateRequest::new(
            request.task.context.clone(),
            request.task.query.clone(),
            request.max_new_tokens,
        );
        workers.push(std::thread::spawn(move || {
            client
                .open_stream(&generate)
                .expect("stream opens")
                .finish()
                .expect("stream finishes")
        }));
    }
    for worker in workers {
        let outcome = worker.join().expect("client thread");
        assert_eq!(outcome.finish, "length");
        assert_eq!(outcome.answer.as_deref(), Some(outcome.streamed.as_str()));
    }
    let stats = server.shutdown();
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.running, 0);
    assert_eq!(stats.completed, trace.len());
    assert_eq!(
        stats.pinned_prefix_entries, 0,
        "prefix pins must be released at idle"
    );
}

#[test]
fn sampled_sse_streams_replay_identically_on_resubmission() {
    let settings = tiny_settings().with_prefix_cache(PrefixCacheConfig::default());
    let (server, client) = start_server(settings, GatewayConfig::default());
    let request = &traffic(1, 0x5A3D)[0];
    let generate = GenerateRequest::new(
        request.task.context.clone(),
        request.task.query.clone(),
        request.max_new_tokens,
    )
    .with_sampling(
        &SamplingParams::for_request(0x5A3D, request.index as u64)
            .with_temperature(0.85)
            .with_top_k(10)
            .with_top_p(0.95),
    );
    let first = client
        .open_stream(&generate)
        .expect("sampled stream opens")
        .finish()
        .expect("sampled stream finishes");
    assert_eq!(first.finish, "length");
    assert_eq!(
        first.answer.as_deref(),
        Some(first.streamed.as_str()),
        "the final event repeats exactly what was streamed"
    );
    // Resubmitting the identical body — same prompt, same seed — must
    // stream the identical bytes: the sampler chain is keyed on the
    // request's own seed, never on engine state or wall clock.
    for round in 0..2 {
        let replay = client
            .open_stream(&generate)
            .expect("replay stream opens")
            .finish()
            .expect("replay stream finishes");
        assert_eq!(
            replay.streamed, first.streamed,
            "replay {round} diverged from the first sampled stream"
        );
        assert_eq!(replay.token_events, first.token_events);
        assert_eq!(replay.finish, first.finish);
    }
    // The blocking endpoint replays the stream's answer too: transport
    // must not affect the draw.
    let blocking = client.generate(&generate).expect("blocking replay");
    assert_eq!(blocking.answer, first.streamed);
    server.shutdown();
}

#[test]
fn invalid_sampling_params_get_a_400_typed_error() {
    let (server, client) = start_server(tiny_settings(), GatewayConfig::default());
    let cases: Vec<(&str, &str)> = vec![
        ("negative temperature", r#"{"temperature":-0.5}"#),
        (
            "NaN-free contract: non-numeric temperature",
            r#"{"temperature":"hot"}"#,
        ),
        ("zero top_k", r#"{"top_k":0}"#),
        ("negative top_k", r#"{"top_k":-3}"#),
        ("top_p above one", r#"{"top_p":1.5}"#),
        ("zero top_p", r#"{"top_p":0}"#),
        ("zero repetition_penalty", r#"{"repetition_penalty":0}"#),
        ("negative presence_penalty", r#"{"presence_penalty":-1}"#),
        ("negative seed", r#"{"seed":-1}"#),
    ];
    for (what, extra) in cases {
        let body = format!(
            "{{\"context\":\"some words here\",\"query\":\"q\",\"max_new_tokens\":4,{}}}",
            extra.trim_start_matches('{').trim_end_matches('}')
        );
        let raw = format!(
            "POST /api/v1/generate HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let response = client.send_raw(raw.as_bytes()).expect("server answers");
        assert_eq!(response.status, 400, "{what}: {}", response.body_str());
        let error = ErrorResponse::from_json(&response.body_str());
        assert!(!error.error.is_empty(), "{what}: the 400 carries a reason");
    }
    // Valid sampling fields on the same connection still serve.
    let request = &traffic(1, 0x0C)[0];
    let response = client
        .generate(
            &GenerateRequest::new(request.task.context.clone(), request.task.query.clone(), 4)
                .with_sampling(&SamplingParams::seeded(11).with_temperature(0.7)),
        )
        .expect("engine still serves after rejected bodies");
    assert!(response.generated_tokens > 0);
    server.shutdown();
}
