//! Snapshot format compatibility guard.
//!
//! `tests/fixtures/trie_format_v1.snap` is a committed snapshot written by
//! an earlier build of this code. Every future build must keep restoring
//! it: the restore test below is what turns the snapshot format into a
//! compatibility promise rather than an implementation detail.
//!
//! Bumping [`SNAPSHOT_FORMAT_VERSION`] is allowed, but it is a deliberate
//! act: the same PR must regenerate the fixture (run the `#[ignore]`d
//! `regenerate_golden_fixture` test below with `-- --ignored`), rename it
//! to match the new version, and update the pinned constant in
//! `snapshot_format_version_is_pinned` — so a reviewer sees the break and
//! operators know their on-disk snapshots will cold-start once.

use cocktail::prelude::*;
use std::path::PathBuf;

/// The committed fixture, resolved relative to the workspace root.
fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("trie_format_v1.snap")
}

/// The engine configuration the fixture was generated under. Everything
/// here feeds the config fingerprint, so changing any of it (profile,
/// chunk size, prefix-cache settings) invalidates the fixture on purpose.
fn fixture_engine() -> ServingEngine {
    let config = CocktailConfig::default()
        .with_chunk_size(16)
        .expect("chunk size is valid");
    ServingEngine::new(ModelProfile::tiny(), config)
        .expect("serving config is valid")
        .with_prefix_cache(PrefixCacheConfig::default())
}

/// The fixed request whose served context populates the fixture's trie.
fn fixture_request() -> ServeRequest {
    let context = "the archive hall keeps ledgers of the northern harvest \
                   seasons with columns for grain weight barge counts and \
                   the names of the families working each terrace plot \
                   recorded twice yearly by the standing clerk of weights";
    ServeRequest::builder()
        .context(context.to_string())
        .query("who records the ledgers ?".to_string())
        .max_new_tokens(6)
        .build()
}

#[test]
fn snapshot_format_version_is_pinned() {
    // If this assertion fails you bumped the snapshot format: regenerate
    // the committed fixture in the same PR (see the module docs) and then
    // update the pinned value here.
    assert_eq!(
        SNAPSHOT_FORMAT_VERSION, 1,
        "snapshot format changed — regenerate tests/fixtures/ and re-pin"
    );
}

#[test]
fn committed_fixture_still_restores_and_serves_warm() {
    let bytes = std::fs::read(fixture_path()).expect("the golden fixture is committed");

    let mut restored = fixture_engine();
    let report = restored.restore_from_bytes(&bytes);
    assert!(
        report.restored,
        "the committed fixture no longer restores ({:?}) — the snapshot \
         format changed without a version bump + fixture regeneration",
        report.reason
    );
    assert!(report.nodes > 0);
    assert!(report.resident_bytes > 0);

    // The restored trie must actually serve: the fixture's request reuses
    // its cached context and answers exactly what a cold engine answers.
    let mut cold = fixture_engine();
    cold.submit(fixture_request());
    let cold_outcome = &cold.run_until_idle().expect("cold serve succeeds")[0];

    restored.submit(fixture_request());
    let warm_outcome = &restored.run_until_idle().expect("warm serve succeeds")[0];
    assert!(
        warm_outcome.stats.prefix_reused_tokens > 0,
        "the restored trie was not reused"
    );
    assert_eq!(warm_outcome.outcome.answer, cold_outcome.outcome.answer);
    assert_eq!(
        warm_outcome.outcome.generated_tokens,
        cold_outcome.outcome.generated_tokens
    );
}

#[test]
fn fixture_matches_a_fresh_snapshot_of_the_same_serve() {
    // The generation procedure is deterministic, so a snapshot taken today
    // must be byte-identical to the committed one. If this fails while the
    // restore test passes, snapshot *writing* changed compatibly — decide
    // whether that was intended, then regenerate the fixture.
    let committed = std::fs::read(fixture_path()).expect("the golden fixture is committed");
    let mut engine = fixture_engine();
    engine.submit(fixture_request());
    engine.run_until_idle().expect("fixture serve succeeds");
    assert_eq!(
        engine.snapshot_bytes(),
        committed,
        "snapshot bytes drifted from the committed fixture"
    );
}

/// Regenerates the committed fixture. Run deliberately, never in CI:
///
/// ```bash
/// cargo test --test snapshot_format -- --ignored
/// ```
#[test]
#[ignore = "regenerates the committed golden fixture; run explicitly after a format change"]
fn regenerate_golden_fixture() {
    let mut engine = fixture_engine();
    engine.submit(fixture_request());
    engine.run_until_idle().expect("fixture serve succeeds");
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().expect("fixture dir has a parent"))
        .expect("create tests/fixtures");
    std::fs::write(&path, engine.snapshot_bytes()).expect("write the golden fixture");
    println!("wrote {}", path.display());
}
