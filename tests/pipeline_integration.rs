//! Cross-crate integration tests: the full pipeline on the simulated model,
//! all policies on the same request, and the equivalence guarantees the
//! paper relies on.

use cocktail::prelude::*;
use proptest::prelude::*;

fn sample_task() -> TaskInstance {
    TaskGenerator::qasper(WorkloadConfig::small()).generate(314)
}

fn small_pipeline() -> CocktailPipeline {
    CocktailPipeline::new(
        ModelProfile::llama2_7b_sim(),
        CocktailConfig::default().with_chunk_size(32).unwrap(),
    )
    .unwrap()
}

#[test]
fn cocktail_pipeline_runs_end_to_end_on_every_model_profile() {
    let task = sample_task();
    for profile in ModelProfile::paper_suite() {
        let pipeline = CocktailPipeline::new(profile, CocktailConfig::default()).unwrap();
        let outcome = pipeline.run(&task.context, &task.query, 4).unwrap();
        assert_eq!(outcome.generated_tokens.len(), 4);
        assert!(outcome.compression_ratio() > 1.0);
        assert!(outcome.report.total_chunks() > 0);
    }
}

#[test]
fn all_policies_run_on_the_same_request_and_compress_as_expected() {
    let task = sample_task();
    let pipeline = small_pipeline();
    let policies: Vec<(&str, Box<dyn CachePolicy>)> = vec![
        ("FP16", Box::new(Fp16Policy::new())),
        ("Atom", Box::new(AtomPolicy::default())),
        ("KIVI", Box::new(KiviPolicy::default())),
        ("KVQuant", Box::new(KvQuantPolicy::default())),
        (
            "Cocktail",
            Box::new(CocktailPolicy::new(CocktailConfig::default()).unwrap()),
        ),
    ];
    let mut cache_bytes = std::collections::HashMap::new();
    for (name, policy) in &policies {
        let outcome = pipeline
            .run_with_policy(&task.context, &task.query, policy.as_ref(), 3)
            .unwrap();
        assert_eq!(outcome.generated_tokens.len(), 3, "{name}");
        cache_bytes.insert(*name, outcome.cache_bytes);
    }
    // Every quantization method shrinks the cache; Atom (pure INT4) is the
    // smallest, KVQuant adds outlier overhead on top of Atom, Cocktail sits
    // between Atom and FP16 because it keeps relevant chunks at FP16.
    assert!(cache_bytes["Atom"] < cache_bytes["FP16"]);
    assert!(cache_bytes["KIVI"] < cache_bytes["FP16"]);
    assert!(cache_bytes["KVQuant"] >= cache_bytes["Atom"]);
    assert!(cache_bytes["KVQuant"] < cache_bytes["FP16"]);
    // Cocktail's footprint depends on how many chunks the search keeps at
    // FP16: INT2-heavy mixes land below Atom, FP16-heavy mixes above it,
    // but it always compresses relative to FP16.
    assert!(cache_bytes["Cocktail"] < cache_bytes["FP16"]);
}

#[test]
fn reordering_does_not_change_generated_tokens() {
    // The paper's Module II equivalence (Eq. 4/5), checked through the full
    // decode loop: with identical per-chunk precisions, generation over the
    // reordered cache matches generation over the logically ordered cache.
    let task = sample_task();
    let with_reorder = CocktailPipeline::new(
        ModelProfile::llama2_7b_sim(),
        CocktailConfig::default().with_reorder(true),
    )
    .unwrap();
    let without_reorder = CocktailPipeline::new(
        ModelProfile::llama2_7b_sim(),
        CocktailConfig::default().with_reorder(false),
    )
    .unwrap();
    let a = with_reorder.run(&task.context, &task.query, 6).unwrap();
    let b = without_reorder.run(&task.context, &task.query, 6).unwrap();
    assert_eq!(a.generated_tokens, b.generated_tokens);
    assert_eq!(a.cache_bytes, b.cache_bytes);
}

#[test]
fn cocktail_keeps_the_ground_truth_relevant_chunks_at_high_precision() {
    let task = sample_task();
    let pipeline = small_pipeline();
    let outcome = pipeline.run(&task.context, &task.query, 2).unwrap();
    let plan = outcome.plan.expect("cocktail produces a plan");
    // The chunk containing each needle's anchor (where the retrieval signal
    // lives) must never be crushed to INT2; a needle whose answer span
    // spills into the following chunk may leave that continuation chunk at
    // low precision, which the search cannot know about.
    for needle in &task.needles {
        let chunk = needle.word_offset / pipeline.config().chunk_size;
        if chunk < plan.assignments().len() {
            assert_ne!(
                plan.assignments()[chunk],
                Bitwidth::Int2,
                "the anchor-bearing chunk must not be crushed to INT2"
            );
        }
    }
    // And most chunks are still aggressively compressed.
    assert!(plan.count(Bitwidth::Int2) * 2 > plan.assignments().len());
}

#[test]
fn batched_serving_is_byte_identical_to_sequential_pipeline_runs() {
    // The tentpole guarantee of the serving redesign: N requests served
    // concurrently by the ServingEngine produce byte-identical answers to
    // the same N requests run one at a time through CocktailPipeline::run.
    let config = CocktailConfig::default().with_chunk_size(32).unwrap();
    let traffic = TrafficGenerator::new(TrafficConfig::small(5), 2718).generate();

    let pipeline = CocktailPipeline::new(ModelProfile::llama2_7b_sim(), config.clone()).unwrap();
    let sequential: Vec<CocktailOutcome> = traffic
        .iter()
        .map(|r| {
            pipeline
                .run(&r.task.context, &r.task.query, r.max_new_tokens)
                .unwrap()
        })
        .collect();

    let mut serving = ServingEngine::new(ModelProfile::llama2_7b_sim(), config).unwrap();
    for request in &traffic {
        serving.submit(ServeRequest::new(
            request.task.context.clone(),
            request.task.query.clone(),
            request.max_new_tokens,
        ));
    }
    let outcomes = serving.run_until_idle().unwrap();

    assert_eq!(outcomes.len(), sequential.len());
    for (batched, seq) in outcomes.iter().zip(&sequential) {
        assert_eq!(batched.outcome.answer, seq.answer);
        assert_eq!(batched.outcome.generated_tokens, seq.generated_tokens);
        assert_eq!(batched.outcome.cache_bytes, seq.cache_bytes);
        assert_eq!(batched.outcome.fp16_cache_bytes, seq.fp16_cache_bytes);
        assert_eq!(batched.outcome.report, seq.report);
        assert_eq!(
            batched
                .outcome
                .plan
                .as_ref()
                .map(|p| p.assignments().to_vec()),
            seq.plan.as_ref().map(|p| p.assignments().to_vec()),
        );
    }
}

#[test]
fn serving_budget_is_enforced_against_measured_compressed_bytes() {
    // Size the budget from a probe request's measured footprint, then
    // check that concurrent serving under that budget (a) never exceeds
    // it, (b) still completes everything, and (c) produces the same
    // answers as unconstrained serving.
    let config = CocktailConfig::default().with_chunk_size(32).unwrap();
    let traffic = TrafficGenerator::new(TrafficConfig::small(4), 99).generate();

    let submit_all = |engine: &mut ServingEngine| {
        for request in &traffic {
            engine.submit(ServeRequest::new(
                request.task.context.clone(),
                request.task.query.clone(),
                request.max_new_tokens,
            ));
        }
    };

    let mut unconstrained =
        ServingEngine::new(ModelProfile::llama2_7b_sim(), config.clone()).unwrap();
    submit_all(&mut unconstrained);
    let reference = unconstrained.run_until_idle().unwrap();
    let per_request: Vec<usize> = reference
        .iter()
        .map(|o| o.stats.cache_bytes + o.stats.reserved_tail_bytes)
        .collect();
    // Room for two average requests at a time.
    let budget = (per_request.iter().sum::<usize>() / per_request.len()) * 2;

    let mut constrained = ServingEngine::new(ModelProfile::llama2_7b_sim(), config)
        .unwrap()
        .with_scheduler_config(SchedulerConfig::default().with_budget(budget));
    submit_all(&mut constrained);
    let mut max_in_use = 0;
    while !constrained.is_idle() {
        constrained.step().unwrap();
        assert!(constrained.kv_bytes_in_use() <= budget);
        max_in_use = max_in_use.max(constrained.kv_bytes_in_use());
    }
    assert!(max_in_use > 0);
    let completed: Vec<RequestOutcome> = (0..traffic.len() as u64)
        .filter_map(|raw| constrained.take_outcome(RequestId::new(raw)))
        .collect();
    assert_eq!(completed.len(), reference.len());
    for (constrained, unconstrained) in completed.iter().zip(&reference) {
        assert_eq!(constrained.outcome.answer, unconstrained.outcome.answer);
    }
}

#[test]
fn prefix_reuse_and_batched_prefill_are_byte_identical_under_shared_traffic() {
    // Shared-prefix traffic served three ways — sequentially through the
    // pipeline, batched without the prefix cache, batched with it — must
    // produce byte-identical outcomes, while the cache measurably reuses
    // the shared preambles.
    let config = CocktailConfig::default().with_chunk_size(32).unwrap();
    let traffic =
        TrafficGenerator::new(TrafficConfig::small(6).with_shared_prefix(2, 96), 0x5a5a).generate();

    let pipeline = CocktailPipeline::new(ModelProfile::llama2_7b_sim(), config.clone()).unwrap();
    let sequential: Vec<CocktailOutcome> = traffic
        .iter()
        .map(|r| {
            pipeline
                .run(&r.task.context, &r.task.query, r.max_new_tokens)
                .unwrap()
        })
        .collect();

    let serve = |prefix: bool| {
        let mut engine = ServingEngine::new(ModelProfile::llama2_7b_sim(), config.clone()).unwrap();
        if prefix {
            engine = engine.with_prefix_cache(PrefixCacheConfig::default());
        }
        for request in &traffic {
            engine.submit(ServeRequest::new(
                request.task.context.clone(),
                request.task.query.clone(),
                request.max_new_tokens,
            ));
        }
        engine.run_until_idle().unwrap()
    };
    let plain = serve(false);
    let cached = serve(true);
    for ((seq, a), b) in sequential.iter().zip(&plain).zip(&cached) {
        assert_eq!(seq.answer, a.outcome.answer);
        assert_eq!(seq.answer, b.outcome.answer);
        assert_eq!(seq.generated_tokens, b.outcome.generated_tokens);
        assert_eq!(seq.cache_bytes, b.outcome.cache_bytes);
        assert_eq!(seq.report, b.outcome.report);
    }
    // Beyond the two cold group leaders, every request reused its group's
    // preamble from the cache.
    let reused: Vec<usize> = cached
        .iter()
        .map(|o| o.stats.prefix_reused_tokens)
        .collect();
    assert!(
        reused.iter().filter(|&&r| r > 0).count() >= traffic.len() - 2,
        "expected at least {} prefix hits, got {reused:?}",
        traffic.len() - 2
    );
}

#[test]
fn branching_traffic_dedups_in_the_trie_and_stays_byte_identical() {
    // Branching traffic — groups share a preamble, every request forks off
    // its own branch segment right after it — served three ways: solo
    // sequential pipeline runs, batched trie-off, batched trie-on. All
    // three must be byte-identical, while the trie stores each shared
    // preamble once (strictly fewer resident bytes than summing whole
    // contexts) and records the node splits at the divergence points.
    let config = CocktailConfig::default().with_chunk_size(32).unwrap();
    let traffic = TrafficGenerator::new(
        TrafficConfig::small(6).with_branching_prefix(2, 64, 8),
        0xB4A_7C11,
    )
    .generate();

    let pipeline = CocktailPipeline::new(ModelProfile::llama2_7b_sim(), config.clone()).unwrap();
    let solo: Vec<CocktailOutcome> = traffic
        .iter()
        .map(|r| {
            pipeline
                .run(&r.task.context, &r.task.query, r.max_new_tokens)
                .unwrap()
        })
        .collect();

    let serve = |prefix: bool| {
        let mut engine = ServingEngine::new(ModelProfile::llama2_7b_sim(), config.clone()).unwrap();
        if prefix {
            engine = engine.with_prefix_cache(PrefixCacheConfig::default());
        }
        for request in &traffic {
            engine.submit(ServeRequest::new(
                request.task.context.clone(),
                request.task.query.clone(),
                request.max_new_tokens,
            ));
        }
        let outcomes = engine.run_until_idle().unwrap();
        let stats = engine.prefix_cache_stats();
        (outcomes, stats)
    };
    let (off, _) = serve(false);
    let (on, stats) = serve(true);
    for ((solo, off), on) in solo.iter().zip(&off).zip(&on) {
        assert_eq!(
            solo.answer, off.outcome.answer,
            "trie-off diverged from solo"
        );
        assert_eq!(solo.answer, on.outcome.answer, "trie-on diverged from solo");
        assert_eq!(solo.generated_tokens, on.outcome.generated_tokens);
        assert_eq!(solo.cache_bytes, on.outcome.cache_bytes);
    }

    let stats = stats.expect("trie enabled");
    // Nothing was evicted (unlimited budget), so resident bytes are the
    // full dedup footprint: strictly below the whole-sequence sum.
    assert_eq!(stats.evictions, 0);
    let fp32_per_token = 2 * pipeline.engine().config().kv_bytes_per_token_fp16();
    let whole_sequence_bytes: usize = on
        .iter()
        .map(|o| o.stats.context_tokens * fp32_per_token)
        .sum();
    assert!(
        stats.resident_bytes < whole_sequence_bytes,
        "trie must store shared preambles once: {} >= {whole_sequence_bytes}",
        stats.resident_bytes
    );
    // One split per group where its branches diverge, and each group's
    // followers reused the preamble.
    assert!(stats.node_splits >= 2, "got {} splits", stats.node_splits);
    let reused = on
        .iter()
        .filter(|o| o.stats.prefix_reused_tokens > 0)
        .count();
    assert!(reused >= traffic.len() - 2, "only {reused} requests reused");
}

#[test]
fn streamed_serving_with_cancellation_is_byte_identical_to_sequential_runs() {
    // The tentpole guarantee of the streaming redesign, end to end on the
    // llama2 sim profile: per-token events concatenate to the collected
    // outcomes, which equal solo sequential pipeline runs; a client
    // cancellation mid-decode frees budget without perturbing survivors,
    // and a cancelled stream is a byte prefix of its solo run.
    let config = CocktailConfig::default().with_chunk_size(32).unwrap();
    let traffic =
        TrafficGenerator::new(TrafficConfig::small(5).with_max_new_tokens(10), 0x0051_3EA7)
            .generate();

    let pipeline = CocktailPipeline::new(ModelProfile::llama2_7b_sim(), config.clone()).unwrap();
    let solo: Vec<CocktailOutcome> = traffic
        .iter()
        .map(|r| {
            pipeline
                .run(&r.task.context, &r.task.query, r.max_new_tokens)
                .unwrap()
        })
        .collect();

    let mut engine = ServingEngine::new(ModelProfile::llama2_7b_sim(), config).unwrap();
    let ids: Vec<RequestId> = traffic
        .iter()
        .map(|r| {
            engine.submit(ServeRequest::new(
                r.task.context.clone(),
                r.task.query.clone(),
                r.max_new_tokens,
            ))
        })
        .collect();
    let cancel_victim = ids[2];
    let cancel_after = 3usize;

    let mut streamed: Vec<String> = vec![String::new(); ids.len()];
    let mut cancelled = false;
    while !engine.is_idle() {
        for event in engine.step_events().unwrap() {
            let i = ids.iter().position(|&id| id == event.id).unwrap();
            streamed[i].push_str(&event.piece);
        }
        if !cancelled
            && engine
                .stats(cancel_victim)
                .is_some_and(|s| s.generated_tokens >= cancel_after)
        {
            let before = engine.kv_bytes_in_use();
            assert!(engine.cancel(cancel_victim));
            assert!(engine.kv_bytes_in_use() < before, "cancel must free budget");
            cancelled = true;
        }
    }
    assert!(cancelled, "the victim must have been cancelled mid-decode");

    for (i, id) in ids.iter().enumerate() {
        if *id == cancel_victim {
            let stats = engine.take_cancelled(*id).unwrap();
            assert!(stats.cancelled);
            assert!(stats.generated_tokens < traffic[i].max_new_tokens);
            assert!(
                solo[i].answer.starts_with(&streamed[i]),
                "cancelled stream must be a byte prefix of the solo run"
            );
        } else {
            let outcome = engine.take_outcome(*id).unwrap();
            assert_eq!(streamed[i], outcome.outcome.answer);
            assert_eq!(outcome.outcome.answer, solo[i].answer);
            assert_eq!(outcome.outcome.generated_tokens, solo[i].generated_tokens);
            assert!(outcome.stats.first_token_step.is_some());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Random request sets with random shared prefixes: serving with the
    /// prefix cache enabled is byte-identical to serving with it disabled,
    /// and the scheduler's KV budget is never exceeded while blocks are
    /// shared.
    #[test]
    fn prefix_cached_serving_is_byte_identical_and_never_exceeds_the_budget(
        groups in 1usize..3,
        per_group in 2usize..4,
        prefix_sentences in 2usize..5,
        tail_words in 3usize..9,
        seed in 0u64..1000,
    ) {
        let requests: Vec<(String, String)> = (0..groups * per_group)
            .map(|i| {
                let g = i % groups;
                let preamble: Vec<String> = (0..prefix_sentences)
                    .map(|s| {
                        format!("notice {s} for channel {g} of stream {seed} reports routine operations")
                    })
                    .collect();
                let tail: Vec<String> = (0..tail_words).map(|w| format!("extra{w} detail{i}")).collect();
                (
                    format!(
                        "{} . the secret marker for request {i} is beacon{i} . {}",
                        preamble.join(" . "),
                        tail.join(" ")
                    ),
                    format!("what is the secret marker for request {i}?"),
                )
            })
            .collect();
        let config = CocktailConfig::default().with_chunk_size(8).unwrap();
        let run = |prefix: bool, budget: Option<usize>| -> (Vec<RequestOutcome>, usize) {
            let mut engine = ServingEngine::new(ModelProfile::tiny(), config.clone()).unwrap();
            if let Some(bytes) = budget {
                engine = engine.with_scheduler_config(SchedulerConfig::default().with_budget(bytes));
            }
            if prefix {
                engine = engine.with_prefix_cache(
                    PrefixCacheConfig::default().with_min_prefix_tokens(4),
                );
            }
            for (ctx, q) in &requests {
                engine.submit(ServeRequest::new(ctx.clone(), q.clone(), 3));
            }
            let cap = budget.unwrap_or(usize::MAX);
            let mut max_used = 0;
            let mut guard = 0;
            while !engine.is_idle() {
                guard += 1;
                assert!(guard < 10_000, "serving failed to quiesce");
                engine.step().unwrap();
                assert!(engine.kv_bytes_in_use() <= cap, "budget exceeded");
                max_used = max_used.max(engine.kv_bytes_in_use());
            }
            let outcomes = (0..requests.len() as u64)
                .filter_map(|raw| engine.take_outcome(RequestId::new(raw)))
                .collect();
            (outcomes, max_used)
        };

        let (plain, _) = run(false, None);
        let (cached, _) = run(true, None);
        prop_assert_eq!(plain.len(), requests.len());
        prop_assert_eq!(cached.len(), requests.len());
        for (a, b) in plain.iter().zip(&cached) {
            prop_assert_eq!(&a.outcome.answer, &b.outcome.answer);
            prop_assert_eq!(&a.outcome.generated_tokens, &b.outcome.generated_tokens);
            prop_assert_eq!(a.outcome.cache_bytes, b.outcome.cache_bytes);
        }

        // A budget fitting ~two requests: shared blocks must never push
        // usage past it, everything must still complete, byte-identically.
        let per_request = plain
            .iter()
            .map(|o| o.stats.cache_bytes + o.stats.reserved_tail_bytes)
            .max()
            .expect("at least one outcome");
        let budget = per_request * 2;
        let (constrained, used) = run(true, Some(budget));
        prop_assert_eq!(constrained.len(), requests.len());
        prop_assert!(used <= budget);
        for (a, b) in plain.iter().zip(&constrained) {
            prop_assert_eq!(&a.outcome.answer, &b.outcome.answer);
        }
    }
}

#[test]
fn int8_uniform_cache_preserves_greedy_generation_of_the_sim_model() {
    // A fidelity check through the real transformer: INT8-quantizing the
    // whole cache should rarely change the greedy continuation.
    let engine = InferenceEngine::new(ModelProfile::tiny()).unwrap();
    let prompt = engine
        .tokenizer()
        .encode("the quick brown fox jumps over the lazy dog while the calm river flows north");
    let prefill = engine.prefill(&prompt).unwrap();

    let mut fp16_cache = engine.build_cache(&prefill, 4).unwrap();
    let fp16_tokens = engine
        .generate_with_cache(&prefill, &mut fp16_cache, 5)
        .unwrap();

    let mut int8_cache = engine.build_cache(&prefill, 4).unwrap();
    int8_cache
        .try_for_each_mut(|_, _, layer| {
            layer.quantize_all(Bitwidth::Int8, QuantAxis::PerToken, QuantAxis::PerToken, 16)
        })
        .unwrap();
    let int8_tokens = engine
        .generate_with_cache(&prefill, &mut int8_cache, 5)
        .unwrap();

    let matching = fp16_tokens
        .iter()
        .zip(int8_tokens.iter())
        .filter(|(a, b)| a == b)
        .count();
    assert!(
        matching >= 4,
        "INT8 cache diverged too much: {fp16_tokens:?} vs {int8_tokens:?}"
    );
}

#[test]
fn accuracy_harness_ranks_cocktail_with_fp16_and_above_uniform_int2() {
    let evaluator = Evaluator::new(EvalConfig::new(32));
    let tasks = TaskGenerator::qasper(WorkloadConfig::paper_scale()).generate_batch(99, 4);
    let fp16 = evaluator.mean_score(&tasks, &Fp16Policy::new()).unwrap();
    let cocktail = evaluator
        .mean_score(
            &tasks,
            &CocktailPolicy::new(CocktailConfig::default()).unwrap(),
        )
        .unwrap();
    let int2 = evaluator
        .mean_score(&tasks, &AtomPolicy::new(Bitwidth::Int2, 32).unwrap())
        .unwrap();
    assert!(
        cocktail >= fp16 - 10.0,
        "cocktail ({cocktail:.1}) should track FP16 ({fp16:.1})"
    );
    assert!(
        cocktail > int2 + 10.0,
        "cocktail ({cocktail:.1}) should clearly beat uniform INT2 ({int2:.1})"
    );
}
