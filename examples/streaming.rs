//! Streaming token delivery with early stopping, client cancellation and
//! seeded sampling: requests flow through [`ServingEngine::step_events`],
//! every committed token arrives as a [`TokenEvent`] the step it is
//! generated, one request stops early on a stop sequence, one client
//! disconnects mid-decode — upon which [`ServingEngine::cancel`] frees its
//! KV budget immediately — and one request decodes through a seeded
//! [`SamplingParams`] chain, then replays bit-identically on resubmission.
//!
//! ```bash
//! cargo run --release --example streaming
//! ```

use cocktail::prelude::*;
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Cycled stop strings: trace request 0 asks the server to end
    // generation as soon as "what" appears in its streamed answer (empty
    // entries leave the other requests unstopped).
    let stops = vec![
        "what".to_string(),
        String::new(),
        String::new(),
        String::new(),
    ];
    let traffic = TrafficGenerator::new(
        TrafficConfig::small(4)
            .with_max_new_tokens(12)
            .with_shared_prefix(2, 32)
            .with_stop_strings(stops),
        0x0057_AEA3,
    )
    .generate();

    let config = CocktailConfig::default().with_chunk_size(16)?;
    let mut engine = ServingEngine::new(ModelProfile::tiny(), config)?
        .with_prefix_cache(PrefixCacheConfig::default());

    // Request 1 decodes through a seeded sampler chain instead of greedy
    // argmax; the seed is derived from the trace seed and the request
    // index, so any replica (or a later replay) rebuilds the same stream.
    let sampling = SamplingParams::for_request(0x0057_AEA3, 1)
        .with_temperature(0.8)
        .with_top_k(8);

    // Submit everything up front, wiring each trace request's stop string
    // straight into its serve request; request 2 additionally plays a
    // client that disconnects after 4 streamed tokens.
    let mut ids = Vec::new();
    for request in &traffic {
        let mut serve = ServeRequest::builder()
            .context(request.task.context.clone())
            .query(request.task.query.clone())
            .max_new_tokens(request.max_new_tokens);
        if let Some(stop) = &request.stop_string {
            serve = serve.stop_sequence(stop.clone());
        }
        if request.index == 1 {
            serve = serve.sampling(sampling.clone());
        }
        ids.push(engine.submit(serve.build()));
    }
    // The trace is sorted by arrival step, so find the stopping request
    // (trace index 0 carries the non-empty stop string) and pick a
    // different one to play the disconnecting client.
    let stop_pos = traffic
        .iter()
        .position(|r| r.stop_string.as_deref().is_some_and(|s| !s.is_empty()))
        .expect("one request carries a stop string");
    let cancel_pos = traffic
        .iter()
        .position(|r| r.index == 2)
        .expect("request 2 is in the trace");
    let cancel_target = ids[cancel_pos];
    let cancel_after = 4usize;
    println!(
        "Streaming {} requests on the tiny sim model ({} will stop on \"what\", {} disconnects \
         after {cancel_after} tokens)\n",
        ids.len(),
        ids[stop_pos],
        cancel_target
    );

    let mut answers: BTreeMap<RequestId, String> = BTreeMap::new();
    while !engine.is_idle() {
        for event in engine.step_events()? {
            let text = answers.entry(event.id).or_default();
            text.push_str(&event.piece);
            let marker = match event.finish {
                Some(FinishReason::Length) => "  <budget exhausted>",
                Some(FinishReason::Stop) => "  <stop sequence hit>",
                Some(FinishReason::Cancelled) => "  <cancelled>",
                Some(FinishReason::Failed) => "  <failed>",
                None => "",
            };
            println!(
                "step {:>3}  {} token {:>2} {:?}{marker}",
                event.step,
                event.id,
                event.index,
                event.piece.trim_start()
            );
        }
        // The "client" for request 2 hangs up after a few tokens; the
        // engine frees its KV budget and shared-prefix pins on the spot.
        if engine
            .stats(cancel_target)
            .is_some_and(|stats| stats.generated_tokens >= cancel_after)
            && engine.cancel(cancel_target)
        {
            println!(
                "step {:>3}  {cancel_target} cancelled by the client ({} KV bytes back in the \
                 budget)",
                engine.clock(),
                engine.kv_bytes_in_use()
            );
        }
    }

    println!("\nPer-request results:");
    for id in &ids {
        if let Some(outcome) = engine.take_outcome(*id) {
            println!(
                "{id}: {:?} [{} tokens, first at step {:?}]",
                outcome.outcome.answer,
                outcome.stats.generated_tokens,
                outcome.stats.first_token_step.expect("streamed a token"),
            );
            let streamed = &answers[id];
            assert_eq!(
                streamed, &outcome.outcome.answer,
                "streamed pieces must equal the collected answer"
            );
        } else if let Some(stats) = engine.take_cancelled(*id) {
            println!(
                "{id}: cancelled after {} of {} tokens — partial answer {:?}",
                stats.generated_tokens,
                stats.max_new_tokens,
                answers.get(id).map(String::as_str).unwrap_or("")
            );
        }
    }

    // Same seed, same prompt => same sampled tokens: resubmitting the
    // sampled request replays its answer bit for bit.
    let sampled = traffic
        .iter()
        .find(|r| r.index == 1)
        .expect("request 1 is in the trace");
    let replay_id = engine.submit(
        ServeRequest::builder()
            .context(sampled.task.context.clone())
            .query(sampled.task.query.clone())
            .max_new_tokens(sampled.max_new_tokens)
            .sampling(sampling)
            .build(),
    );
    let replay = engine
        .run_until_idle()?
        .into_iter()
        .find(|outcome| outcome.id == replay_id)
        .expect("the replay completed");
    let first_pos = traffic.iter().position(|r| r.index == 1).unwrap();
    assert_eq!(
        replay.outcome.answer, answers[&ids[first_pos]],
        "a seeded replay must reproduce the sampled answer exactly"
    );
    println!(
        "\nSeeded replay of {} reproduced the sampled answer bit for bit.",
        ids[first_pos]
    );
    Ok(())
}
