//! Batched multi-request serving with continuous scheduling and shared-
//! prefix reuse: mixed-arrival traffic in which groups of requests share a
//! context preamble and then *branch* flows through a [`ServingEngine`]
//! under a KV-memory budget — requests join the running batch as earlier
//! ones finish, Cocktail's compression directly buys batch capacity, and
//! the token-trie prefix cache serves each shared preamble's prefill once,
//! splitting nodes where the branches diverge.
//!
//! ```bash
//! cargo run --release --example serving
//! ```

use cocktail::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Mixed-family traffic: QA, summarization and trivia requests arriving
    // over the first few engine steps, each drawn from its own seed, in two
    // shared-prefix groups (think: two system prompts in rotation) with a
    // per-request branch segment after the preamble — the divergent traffic
    // shape the token-trie prefix cache deduplicates.
    let traffic = TrafficGenerator::new(
        TrafficConfig::small(6)
            .with_max_new_tokens(10)
            .with_branching_prefix(2, 48, 6),
        0x5e12_41e5,
    )
    .generate();

    let config = CocktailConfig::default().with_chunk_size(16)?;
    let mut engine = ServingEngine::new(ModelProfile::tiny(), config)?;

    // Budget the KV memory to roughly two concurrent compressed requests so
    // the scheduler visibly takes turns; raise it and watch the batch grow.
    // The prefix cache's resident blocks are charged against the same
    // budget and evicted LRU when admissions need the room.
    let model = engine.engine().config();
    let budget = model.kv_bytes_fp16(1280);
    engine = engine
        .with_scheduler_config(SchedulerConfig::default().with_budget(budget))
        .with_prefix_cache(PrefixCacheConfig::default());

    println!(
        "Serving {} requests (2 shared-prefix groups) on the tiny sim model under a {:.0} KiB \
         KV budget\n",
        traffic.len(),
        budget as f64 / 1024.0
    );

    // The serving loop: submit each request at its arrival step, run one
    // engine step per iteration, report completions as they happen.
    let mut pending = traffic.iter().peekable();
    let mut submitted: Vec<(RequestId, usize)> = Vec::new();
    while pending.peek().is_some() || !engine.is_idle() {
        let step = engine.clock() + 1;
        while let Some(request) = pending.peek() {
            if request.arrival_step > step {
                break;
            }
            let id = engine.submit(ServeRequest::new(
                request.task.context.clone(),
                request.task.query.clone(),
                request.max_new_tokens,
            ));
            println!(
                "step {step:>3}  + {id} arrives ({}, group {}, {} context words)",
                request.task.kind.name(),
                request.prefix_group.unwrap_or(0),
                request.task.context_words()
            );
            submitted.push((id, request.index));
            pending.next();
        }
        for id in engine.step()? {
            println!(
                "step {step:>3}  - {id} completed ({} running, {:.0} KiB in use)",
                engine.scheduler().running_len(),
                engine.kv_bytes_in_use() as f64 / 1024.0
            );
        }
    }

    println!("\nPer-request results:");
    println!(
        "{:<8} {:>6} {:>9} {:>9} {:>8} {:>8} {:>8} {:>10}",
        "request", "queued", "admitted", "finished", "tokens", "reused", "ratio", "decode us"
    );
    for (id, _) in &submitted {
        let outcome = engine.take_outcome(*id).expect("request completed");
        let stats = &outcome.stats;
        println!(
            "{:<8} {:>6} {:>9} {:>9} {:>8} {:>8} {:>7.2}x {:>10}",
            outcome.id.to_string(),
            stats.submitted_step,
            stats.admitted_step.unwrap_or(0),
            stats.finished_step.unwrap_or(0),
            stats.generated_tokens,
            stats.prefix_reused_tokens,
            outcome.outcome.compression_ratio(),
            stats.timings.decode_us,
        );
    }
    if let Some(stats) = engine.prefix_cache_stats() {
        println!(
            "\nPrefix trie: {} nodes / {} branches ({:.0} KiB resident, charged per node), \
             {} hits / {} misses, {} tokens served from cache, {} node splits, {} evictions \
             ({} partial)",
            stats.nodes,
            stats.entries,
            stats.resident_bytes as f64 / 1024.0,
            stats.hits,
            stats.misses,
            stats.reused_tokens,
            stats.node_splits,
            stats.evictions,
            stats.partial_evictions
        );
    }
    Ok(())
}
