//! Batched multi-request serving with continuous scheduling: mixed-arrival
//! traffic flows through a [`ServingEngine`] under a KV-memory budget, so
//! requests join the running batch as earlier ones finish and Cocktail's
//! compression directly buys batch capacity.
//!
//! ```bash
//! cargo run --release --example serving
//! ```

use cocktail::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Mixed-family traffic: QA, summarization and trivia requests arriving
    // over the first few engine steps, each drawn from its own seed.
    let traffic =
        TrafficGenerator::new(TrafficConfig::small(6).with_max_new_tokens(10), 0x5e12_41e5)
            .generate();

    let config = CocktailConfig::default().with_chunk_size(16)?;
    let mut engine = ServingEngine::new(ModelProfile::tiny(), config)?;

    // Budget the KV memory to roughly two concurrent compressed requests so
    // the scheduler visibly takes turns; raise it and watch the batch grow.
    let model = engine.engine().config();
    let budget = model.kv_bytes_fp16(420);
    engine = engine.with_scheduler_config(SchedulerConfig::default().with_budget(budget));

    println!(
        "Serving {} requests on the tiny sim model under a {:.0} KiB KV budget\n",
        traffic.len(),
        budget as f64 / 1024.0
    );

    // The serving loop: submit each request at its arrival step, run one
    // engine step per iteration, report completions as they happen.
    let mut pending = traffic.iter().peekable();
    let mut submitted: Vec<(RequestId, usize)> = Vec::new();
    while pending.peek().is_some() || !engine.is_idle() {
        let step = engine.clock() + 1;
        while let Some(request) = pending.peek() {
            if request.arrival_step > step {
                break;
            }
            let id = engine.submit(ServeRequest::new(
                request.task.context.clone(),
                request.task.query.clone(),
                request.max_new_tokens,
            ));
            println!(
                "step {step:>3}  + {id} arrives ({}, {} context words)",
                request.task.kind.name(),
                request.task.context_words()
            );
            submitted.push((id, request.index));
            pending.next();
        }
        for id in engine.step()? {
            println!(
                "step {step:>3}  - {id} completed ({} running, {:.0} KiB in use)",
                engine.scheduler().running_len(),
                engine.kv_bytes_in_use() as f64 / 1024.0
            );
        }
    }

    println!("\nPer-request results:");
    println!(
        "{:<8} {:>6} {:>9} {:>9} {:>8} {:>8} {:>10}",
        "request", "queued", "admitted", "finished", "tokens", "ratio", "decode us"
    );
    for (id, _) in &submitted {
        let outcome = engine.take_outcome(*id).expect("request completed");
        let stats = &outcome.stats;
        println!(
            "{:<8} {:>6} {:>9} {:>9} {:>8} {:>7.2}x {:>10}",
            outcome.id.to_string(),
            stats.submitted_step,
            stats.admitted_step.unwrap_or(0),
            stats.finished_step.unwrap_or(0),
            stats.generated_tokens,
            outcome.outcome.compression_ratio(),
            stats.timings.decode_us,
        );
    }
    Ok(())
}
