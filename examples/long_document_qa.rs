//! Long-document QA: compare how much answer quality each KV-cache
//! quantization method preserves when only a few chunks of a long context
//! are relevant to the question.
//!
//! This drives the same extraction-based accuracy harness the Table II
//! experiment uses, over a handful of Qasper-style tasks.
//!
//! ```bash
//! cargo run --release --example long_document_qa
//! ```

use cocktail::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tasks = TaskGenerator::qasper(WorkloadConfig::paper_scale()).generate_batch(7, 6);
    let evaluator = Evaluator::new(EvalConfig::new(32));

    let methods: Vec<(&str, Box<dyn CachePolicy>)> = vec![
        ("FP16", Box::new(Fp16Policy::new())),
        ("Atom (INT4)", Box::new(AtomPolicy::default())),
        ("KIVI (INT4)", Box::new(KiviPolicy::default())),
        (
            "KVQuant (INT4 + outliers)",
            Box::new(KvQuantPolicy::default()),
        ),
        (
            "Cocktail (chunk-adaptive)",
            Box::new(CocktailPolicy::new(CocktailConfig::default())?),
        ),
    ];

    println!(
        "Qasper-style single-document QA, {} instances of ~{} words each\n",
        tasks.len(),
        tasks[0].context.split_whitespace().count()
    );
    println!(
        "{:<28} {:>10} {:>16}",
        "method", "F1 score", "cache vs FP16"
    );
    for (name, policy) in &methods {
        let mut total_score = 0.0;
        let mut total_ratio = 0.0;
        for task in &tasks {
            let outcome = evaluator.evaluate(task, policy.as_ref())?;
            total_score += outcome.score;
            total_ratio += outcome.fp16_cache_bytes as f64 / outcome.cache_bytes.max(1) as f64;
        }
        println!(
            "{:<28} {:>10.2} {:>15.2}x",
            name,
            total_score / tasks.len() as f64,
            total_ratio / tasks.len() as f64
        );
    }
    println!(
        "\nCocktail keeps the few query-relevant chunks in FP16 and compresses the rest to\n\
         INT4/INT2, so it tracks the FP16 score while still shrinking the cache."
    );
    Ok(())
}
