//! Capacity planning with the analytic hardware model: how much GPU memory
//! a 32K-context serving deployment needs under each KV-cache quantization
//! method, how the decode latency compares, and where each method runs out
//! of memory as the batch grows (the Figure 4/5/6 machinery as a library).
//!
//! ```bash
//! cargo run --release --example capacity_planning
//! ```

use cocktail::prelude::*;

fn main() {
    let model = ModelProfile::longchat_7b_sim();
    let deployment = DeploymentModel::new(
        AcceleratorSpec::a800(),
        model.full().clone(),
        RequestShape::with_context(32 * 1024 - 128),
    );

    let methods = [
        ("FP16", KvCacheProfile::fp16()),
        ("Atom", KvCacheProfile::atom_int4()),
        ("KVQuant", KvCacheProfile::kvquant_default()),
        ("Cocktail", KvCacheProfile::cocktail_default()),
    ];

    println!(
        "Serving {} with a 32K context on an {}\n",
        model.name(),
        deployment.spec().name
    );
    println!(
        "{:<10} {:>14} {:>14} {:>12}",
        "method", "memory @ b=1", "TPOT @ b=8", "max batch"
    );
    for (name, profile) in &methods {
        let memory = deployment.gpu_memory_gib(profile, 1);
        let tpot_ms = deployment.tpot(profile, 8).total_s() * 1e3;
        let max_batch = deployment.max_batch(profile, 512);
        println!(
            "{:<10} {:>11.1} GiB {:>11.1} ms {:>12}",
            name, memory, tpot_ms, max_batch
        );
    }

    println!("\nThroughput sweep (tokens/s, OOM marked with '-'):");
    print!("{:<10}", "batch");
    let batches = [1usize, 2, 4, 8, 16, 32];
    for b in batches {
        print!("{b:>10}");
    }
    println!();
    for (name, profile) in &methods {
        print!("{name:<10}");
        for b in batches {
            match deployment.throughput(profile, b).tokens_per_s {
                Some(v) => print!("{v:>10.0}"),
                None => print!("{:>10}", "-"),
            }
        }
        println!();
    }
}
