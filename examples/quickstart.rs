//! Quickstart: run the Cocktail pipeline end to end on a small synthetic
//! long-context question-answering request.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use cocktail::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A simulated model profile (a CPU-sized stand-in for Llama2-7B) and
    //    a synthetic single-document QA task with a ~600-word context.
    let profile = ModelProfile::llama2_7b_sim();
    let task = TaskGenerator::qasper(WorkloadConfig::small()).generate(2024);
    println!("context: {} words", task.context.split_whitespace().count());
    println!("query:   {}", task.query);

    // 2. The paper's headline configuration: alpha = 0.6, beta = 0.1,
    //    chunk size 32, Facebook-Contriever-style chunk scoring.
    let config = CocktailConfig::default();
    let pipeline = CocktailPipeline::new(profile, config)?;

    // 3. Prefill, chunk-level quantization search, chunk reordering and
    //    quantization, then greedy decoding over the compressed cache.
    let outcome = pipeline.run(&task.context, &task.query, 16)?;

    println!("\n--- Cocktail outcome ---");
    // The simulated model has deterministic random weights, so the decoded
    // text itself is not meaningful; the accuracy experiments use the
    // extraction harness instead (see the long_document_qa example).
    println!("generated tokens:  {:?}", outcome.generated_tokens);
    println!(
        "kv cache:          {} bytes ({:.2}x smaller than FP16)",
        outcome.cache_bytes,
        outcome.compression_ratio()
    );
    if let Some(plan) = &outcome.plan {
        println!(
            "chunk assignment:  {} fp16 / {} int4 / {} int2 (of {} chunks)",
            plan.count(Bitwidth::Fp16),
            plan.count(Bitwidth::Int4),
            plan.count(Bitwidth::Int2),
            plan.assignments().len()
        );
    }
    println!(
        "timings:           prefill {} us, compress {} us, decode {} us",
        outcome.timings.prefill_us, outcome.timings.compress_us, outcome.timings.decode_us
    );
    Ok(())
}
