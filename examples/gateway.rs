//! The HTTP/1.1 serving gateway end to end: start a server on a random
//! localhost port, drive it with the bundled client — a blocking JSON
//! generate, an SSE token stream, a 429 under deliberate overload, a
//! mid-stream client disconnect — and read the engine's live stats. Every
//! request here crosses a real TCP socket; the same endpoints answer
//! `curl` (the server prints the commands to try while it runs).
//!
//! ```bash
//! cargo run --release --example gateway
//! # multi-replica: N engines behind the prefix-affinity router
//! cargo run --release --example gateway -- --replicas 2
//! ```

use cocktail::prelude::*;
use cocktail::server::EngineSettings;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `--replicas N` serves the same endpoints from N independent
    // engines behind the prefix-affinity router (default: 1).
    let mut replicas = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--replicas" => {
                let value = args.next().ok_or("--replicas needs a value")?;
                replicas = value.parse().map_err(|_| "replicas must be a number")?;
            }
            other => return Err(format!("unknown argument {other:?}").into()),
        }
    }

    let config = CocktailConfig::default().with_chunk_size(16)?;
    let settings = EngineSettings::new(ModelProfile::tiny(), config)
        .with_prefix_cache(PrefixCacheConfig::default());
    let server = GatewayServer::start(settings, GatewayConfig::default().with_replicas(replicas))?;
    let addr = server.addr();
    println!("gateway listening on http://{addr} ({replicas} replica(s))");
    println!("  curl http://{addr}/healthz");
    println!("  curl http://{addr}/api/v1/stats");
    println!("  curl http://{addr}/api/v1/version");
    println!(
        "  curl -d '{{\"context\":\"...\",\"query\":\"...\",\"max_new_tokens\":8}}' \
         http://{addr}/api/v1/generate"
    );
    println!(
        "  curl -d '{{\"context\":\"...\",\"query\":\"...\",\"max_new_tokens\":8,\
         \"temperature\":0.8,\"top_k\":8,\"seed\":7}}' http://{addr}/api/v1/generate"
    );
    println!(
        "  curl -d '{{\"path\":\"/tmp/cocktail.snap\"}}' \
         http://{addr}/api/v1/admin/snapshot\n"
    );
    let client = GatewayClient::new(addr);

    let traffic = TrafficGenerator::new(
        TrafficConfig::small(3)
            .with_max_new_tokens(10)
            .with_shared_prefix(1, 24),
        0x6A7E,
    )
    .generate();

    // 1. A blocking generate: one JSON request, one JSON answer.
    let request = &traffic[0];
    let response = client.generate(&GenerateRequest::new(
        request.task.context.clone(),
        request.task.query.clone(),
        request.max_new_tokens,
    ))?;
    println!(
        "[generate]  {} -> {:?} ({} tokens, finish={})",
        response.id, response.answer, response.generated_tokens, response.finish
    );

    // 2. An SSE stream: tokens arrive one chunked event at a time.
    let request = &traffic[1];
    let mut stream = client.open_stream(&GenerateRequest::new(
        request.task.context.clone(),
        request.task.query.clone(),
        request.max_new_tokens,
    ))?;
    let mut pieces = Vec::new();
    while let Some(event) = stream.next_event()? {
        if !event.done {
            pieces.push(format!("{:?}", event.piece.trim_start()));
        }
    }
    let id = stream.id().unwrap_or("?").to_string();
    let outcome = stream.finish()?;
    println!(
        "[stream]    {id}: {}  <{}>",
        pieces.join(" "),
        outcome.finish
    );
    assert_eq!(
        outcome.answer.as_deref(),
        Some(outcome.streamed.as_str()),
        "the final event repeats exactly what was streamed"
    );

    // 3. A sampled generate over the wire: the optional sampling fields
    // ride in the same JSON body, and resubmitting the identical request
    // (same seed) replays the identical answer.
    let request = &traffic[0];
    let sampled = GenerateRequest::new(
        request.task.context.clone(),
        request.task.query.clone(),
        request.max_new_tokens,
    )
    .with_sampling(
        &SamplingParams::for_request(0x6A7E, 0)
            .with_temperature(0.8)
            .with_top_k(8),
    );
    let first = client.generate(&sampled)?;
    let replay = client.generate(&sampled)?;
    println!(
        "[sampled]   {} -> {:?} (seeded; replay {} returned the same bytes: {})",
        first.id,
        first.answer,
        replay.id,
        first.answer == replay.answer
    );
    assert_eq!(
        first.answer, replay.answer,
        "the same seed over the same prompt must replay the same answer"
    );

    // 4. A client that hangs up mid-stream: the engine cancels the
    // request and the budget comes back (watch the stats).
    let request = &traffic[2];
    let mut stream = client.open_stream(&GenerateRequest::new(
        request.task.context.clone(),
        request.task.query.clone(),
        200,
    ))?;
    stream.read_tokens(2)?;
    let id = stream.id().unwrap_or("?").to_string();
    stream.abort();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let stats = loop {
        let stats = client.stats()?;
        if stats.cancelled >= 1 && stats.running == 0 {
            break stats;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "disconnect was not reaped: {stats:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    println!(
        "[disconnect] {id} cancelled after 2 streamed tokens; {} request-held KV bytes left",
        stats.kv_bytes_in_use - stats.prefix_resident_bytes
    );

    let final_stats = server.shutdown();
    println!(
        "[shutdown]  completed={} cancelled={} failed={} pinned_prefix_entries={}",
        final_stats.completed,
        final_stats.cancelled,
        final_stats.failed,
        final_stats.pinned_prefix_entries
    );
    assert_eq!(final_stats.completed, 4);
    assert_eq!(final_stats.cancelled, 1);
    assert_eq!(final_stats.pinned_prefix_entries, 0);
    Ok(())
}
