//! Repository-level code completion: a RepoBench-P-style workload where the
//! definition to complete sits in one file of a large multi-file context.
//!
//! Shows the full pipeline on the simulated model (not just the accuracy
//! harness): prefill the repository context, let Cocktail pick per-chunk
//! precisions, and inspect which chunks survived at full precision.
//!
//! ```bash
//! cargo run --release --example repository_completion
//! ```

use cocktail::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let task = TaskGenerator::new(TaskKind::RepoBenchP, WorkloadConfig::small()).generate(11);
    println!(
        "repository context ({} words):",
        task.context.split_whitespace().count()
    );
    let preview: String = task
        .context
        .split_whitespace()
        .take(24)
        .collect::<Vec<_>>()
        .join(" ");
    println!("  {preview} ...");
    println!("completion query: {}\n", task.query);

    let config = CocktailConfig::default();
    let pipeline = CocktailPipeline::new(ModelProfile::mistral_7b_sim(), config.clone())?;

    // Run Cocktail and the uniform INT4 baseline on the same request.
    let cocktail = pipeline.run(&task.context, &task.query, 12)?;
    let atom = pipeline.run_with_policy(&task.context, &task.query, &AtomPolicy::default(), 12)?;

    println!("{:<22} {:>14} {:>14}", "", "Cocktail", "Atom (INT4)");
    println!(
        "{:<22} {:>14} {:>14}",
        "cache bytes", cocktail.cache_bytes, atom.cache_bytes
    );
    println!(
        "{:<22} {:>13.2}x {:>13.2}x",
        "compression",
        cocktail.compression_ratio(),
        atom.compression_ratio()
    );
    println!(
        "{:<22} {:>14} {:>14}",
        "fp16 chunks kept",
        cocktail.report.chunks_at(Bitwidth::Fp16),
        atom.report.chunks_at(Bitwidth::Fp16)
    );

    if let Some(plan) = &cocktail.plan {
        let relevant = task.relevant_chunks(config.chunk_size);
        println!("\nground-truth relevant chunks: {relevant:?}");
        let kept: Vec<usize> = plan
            .assignments()
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == Bitwidth::Fp16)
            .map(|(i, _)| i)
            .collect();
        println!("chunks Cocktail kept at FP16: {kept:?}");
    }
    Ok(())
}
