//! A minimal stand-in for the `criterion` benchmark harness, used because
//! this workspace builds without network access to crates.io.
//!
//! It implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — and really measures:
//! each benchmark is warmed up (warm-up iterations are discarded), then
//! timed over several samples, and mean / median / p95 ns-per-iteration
//! are printed. The total iteration budget adapts to the benchmark's cost,
//! or can be pinned with the `COCKTAIL_BENCH_ITERS` environment variable
//! (total iterations across all samples, minimum one per sample) for
//! reproducible CI runs. There is no HTML report or saved baseline; swap
//! in the real criterion via the root `Cargo.toml` when network access is
//! available.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimizer barrier.
pub use std::hint::black_box;

/// Target wall-clock time spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Target wall-clock time spent warming up each benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);
/// Number of timed samples the iteration budget is split into; the
/// median/p95 statistics are computed over the per-sample means.
const SAMPLES: usize = 10;
/// Environment variable overriding the total iteration budget.
const ITERS_ENV: &str = "COCKTAIL_BENCH_ITERS";

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, &mut f);
        self
    }

    /// Runs a single benchmark with a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.render(), &mut |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks, mirroring criterion's `BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.render()), &mut f);
        self
    }

    /// Runs a benchmark with a borrowed input inside this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.render()), &mut |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group. (The shim keeps no per-group state.)
    pub fn finish(self) {}
}

/// Identifier of one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            function_name: Some(function_name.to_string()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id made of a parameter value only (the group supplies the name).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            function_name: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function_name, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => "benchmark".to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            function_name: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            function_name: Some(name),
            parameter: None,
        }
    }
}

/// How `iter_batched` amortizes setup cost; the shim runs one setup per
/// iteration regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state (e.g. a cloned KV cache).
    LargeInput,
    /// Exactly one setup per iteration.
    PerIteration,
}

/// Times closures; handed to every benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows the input.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Summary statistics of one benchmark's timed samples (per-iteration
/// nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchStats {
    /// Mean over all timed iterations.
    pub mean_ns: f64,
    /// Median of the per-sample means.
    pub median_ns: f64,
    /// 95th percentile of the per-sample means.
    pub p95_ns: f64,
    /// Total timed iterations (warm-up iterations excluded).
    pub total_iters: u64,
    /// Number of timed samples.
    pub samples: usize,
}

/// Computes mean/median/p95 from per-sample `(iters, elapsed)` pairs.
fn summarize(samples: &[(u64, Duration)]) -> BenchStats {
    let total_iters: u64 = samples.iter().map(|(iters, _)| iters).sum();
    let total_ns: u128 = samples.iter().map(|(_, d)| d.as_nanos()).sum();
    let mut per_iter: Vec<f64> = samples
        .iter()
        .map(|(iters, d)| d.as_nanos() as f64 / (*iters).max(1) as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let percentile = |q: f64| -> f64 {
        if per_iter.is_empty() {
            return 0.0;
        }
        let rank = (q * (per_iter.len() - 1) as f64).round() as usize;
        per_iter[rank.min(per_iter.len() - 1)]
    };
    BenchStats {
        mean_ns: total_ns as f64 / total_iters.max(1) as f64,
        median_ns: percentile(0.5),
        p95_ns: percentile(0.95),
        total_iters,
        samples: samples.len(),
    }
}

/// Total iteration budget: the `COCKTAIL_BENCH_ITERS` override, or an
/// adaptive budget derived from the warm-up's observed per-iteration cost.
fn iteration_budget(warmup_per_iter_ns: u128) -> u64 {
    if let Ok(raw) = std::env::var(ITERS_ENV) {
        if let Ok(iters) = raw.trim().parse::<u64>() {
            return iters.max(1);
        }
        eprintln!("warning: ignoring unparsable {ITERS_ENV}={raw:?}");
    }
    (MEASURE_BUDGET.as_nanos() / warmup_per_iter_ns.max(1)).clamp(1, 100_000) as u64
}

fn run_one(id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm up with single iterations until the warmup budget is spent;
    // these iterations are discarded (they absorb cold caches, lazy
    // allocations and frequency ramp-up) and only size the timed run.
    let warmup_start = Instant::now();
    let mut warmup_iters: u64 = 0;
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warmup_start.elapsed() < WARMUP_BUDGET && warmup_iters < 1_000 {
        f(&mut bencher);
        warmup_iters += 1;
    }
    let per_iter = warmup_start.elapsed().as_nanos().max(1) / u128::from(warmup_iters.max(1));
    let total_iters = iteration_budget(per_iter);

    // Split the budget into samples so median/p95 are meaningful; cheap
    // benchmarks get all `SAMPLES`, expensive ones fewer but never zero.
    let samples = (total_iters as usize).clamp(1, SAMPLES);
    let base = total_iters / samples as u64;
    let remainder = total_iters % samples as u64;
    let mut timed: Vec<(u64, Duration)> = Vec::with_capacity(samples);
    for s in 0..samples {
        let iters = base + u64::from((s as u64) < remainder);
        if iters == 0 {
            continue;
        }
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        timed.push((iters, bencher.elapsed));
    }
    let stats = summarize(&timed);
    println!(
        "{id:<60} mean {:>12.1} ns/iter  median {:>12.1}  p95 {:>12.1}  ({} iters, {} samples)",
        stats.mean_ns, stats.median_ns, stats.p95_ns, stats.total_iters, stats.samples
    );
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes the tests that mutate the process-global `ITERS_ENV`
    /// variable (the test harness runs tests on parallel threads).
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_sets_up_per_iteration() {
        let mut c = Criterion::default();
        c.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, n| {
            b.iter_batched(
                || (0..*n).collect::<Vec<u64>>(),
                |v| v.into_iter().sum::<u64>(),
                BatchSize::LargeInput,
            );
        });
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 4).render(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("int4").render(), "int4");
        assert_eq!(BenchmarkId::from("name").render(), "name");
    }

    #[test]
    fn summarize_computes_mean_median_p95() {
        // Ten samples of one iteration each: 10, 20, ..., 100 ns.
        let samples: Vec<(u64, Duration)> = (1..=10)
            .map(|i| (1u64, Duration::from_nanos(i * 10)))
            .collect();
        let stats = summarize(&samples);
        assert_eq!(stats.total_iters, 10);
        assert_eq!(stats.samples, 10);
        assert!((stats.mean_ns - 55.0).abs() < 1e-9);
        // Median rank rounds to the 5th of 10 sorted samples (0-indexed 5).
        assert!((stats.median_ns - 60.0).abs() < 1e-9);
        assert!((stats.p95_ns - 100.0).abs() < 1e-9);
        assert!(stats.median_ns <= stats.p95_ns);
    }

    #[test]
    fn iteration_budget_respects_env_override() {
        let _guard = ENV_LOCK.lock().unwrap();
        // The env var is process-global; restore it afterwards.
        let saved = std::env::var(ITERS_ENV).ok();
        std::env::set_var(ITERS_ENV, "37");
        assert_eq!(iteration_budget(1), 37);
        std::env::set_var(ITERS_ENV, "not-a-number");
        assert!(iteration_budget(1_000_000) >= 1);
        match saved {
            Some(v) => std::env::set_var(ITERS_ENV, v),
            None => std::env::remove_var(ITERS_ENV),
        }
    }

    #[test]
    fn warmup_iterations_are_excluded_from_the_timed_count() {
        let _guard = ENV_LOCK.lock().unwrap();
        // With a pinned budget of 5 iterations, the timed run must execute
        // at most 5 + warm-up calls; warm-up stops after the budget or
        // 1000 calls, so the total call count stays well under the
        // unpinned 100k ceiling.
        let saved = std::env::var(ITERS_ENV).ok();
        std::env::set_var(ITERS_ENV, "5");
        let mut calls = 0u64;
        run_one("warmup-discard", &mut |b| b.iter(|| calls += 1));
        match saved {
            Some(v) => std::env::set_var(ITERS_ENV, v),
            None => std::env::remove_var(ITERS_ENV),
        }
        assert!(calls >= 5);
        // Warm-up is capped at 1000 calls.
        assert!(
            calls <= 1_005,
            "timed run leaked warm-up iterations: {calls}"
        );
    }
}
