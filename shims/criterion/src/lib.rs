//! A minimal stand-in for the `criterion` benchmark harness, used because
//! this workspace builds without network access to crates.io.
//!
//! It implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — and really measures:
//! each benchmark is warmed up, then timed over an adaptive number of
//! iterations, and a mean ns/iter is printed. There is no statistical
//! analysis, HTML report, or saved baseline; swap in the real criterion via
//! the root `Cargo.toml` when network access is available.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimizer barrier.
pub use std::hint::black_box;

/// Target wall-clock time spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Target wall-clock time spent warming up each benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, &mut f);
        self
    }

    /// Runs a single benchmark with a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.render(), &mut |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks, mirroring criterion's `BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.render()), &mut f);
        self
    }

    /// Runs a benchmark with a borrowed input inside this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.render()), &mut |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group. (The shim keeps no per-group state.)
    pub fn finish(self) {}
}

/// Identifier of one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            function_name: Some(function_name.to_string()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id made of a parameter value only (the group supplies the name).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            function_name: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function_name, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => "benchmark".to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            function_name: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            function_name: Some(name),
            parameter: None,
        }
    }
}

/// How `iter_batched` amortizes setup cost; the shim runs one setup per
/// iteration regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state (e.g. a cloned KV cache).
    LargeInput,
    /// Exactly one setup per iteration.
    PerIteration,
}

/// Times closures; handed to every benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows the input.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_one(id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm up with single iterations until the warmup budget is spent, and
    // use the observed cost to size the measurement run.
    let warmup_start = Instant::now();
    let mut warmup_iters: u64 = 0;
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warmup_start.elapsed() < WARMUP_BUDGET && warmup_iters < 1_000 {
        f(&mut bencher);
        warmup_iters += 1;
    }
    let per_iter = warmup_start.elapsed().as_nanos().max(1) / u128::from(warmup_iters.max(1));
    let iters = (MEASURE_BUDGET.as_nanos() / per_iter).clamp(1, 100_000) as u64;

    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let total = bencher.elapsed.as_nanos().max(1);
    let mean_ns = total as f64 / iters as f64;
    println!("{id:<60} {mean_ns:>14.1} ns/iter  ({iters} iters)");
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_sets_up_per_iteration() {
        let mut c = Criterion::default();
        c.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, n| {
            b.iter_batched(
                || (0..*n).collect::<Vec<u64>>(),
                |v| v.into_iter().sum::<u64>(),
                BatchSize::LargeInput,
            );
        });
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 4).render(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("int4").render(), "int4");
        assert_eq!(BenchmarkId::from("name").render(), "name");
    }
}
