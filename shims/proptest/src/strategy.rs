//! The [`Strategy`] trait and its implementations for numeric ranges and
//! regex-holding string literals.

use crate::string::generate_from_pattern;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type, mirroring
/// `proptest::strategy::Strategy` (without shrinking).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_strategy_float_range!(f32, f64);

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}
