//! A minimal, dependency-free stand-in for the `proptest` crate, used
//! because this workspace builds without network access to crates.io.
//!
//! The [`proptest!`] macro really runs each property as a loop of randomly
//! generated cases (64 by default, or whatever
//! `ProptestConfig::with_cases(n)` requests) with inputs drawn from the
//! strategy expressions. Supported strategies — the ones this workspace's
//! tests use:
//!
//! * numeric ranges (`0u64..200`, `-60000.0f32..60000.0`, `1usize..=30`),
//! * `proptest::collection::vec(strategy, size_range)`,
//! * string literals holding a simple regex (character classes, groups and
//!   `{m,n}` repetition, e.g. `"[a-d ]{0,40}"`).
//!
//! Differences from real proptest: no shrinking (failures report the
//! generated inputs via the assertion message instead), no persistence of
//! failing cases, and the case RNG is seeded from the property's name, so
//! runs are fully deterministic.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a `use proptest::prelude::*;` in a test module needs.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs property-style tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` looping over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: a recursive muncher over the
/// property functions.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::for_property(stringify!($name));
            // `prop_assume!` rejections `continue` past the completed-case
            // increment, so rejected draws are replaced (up to a 10x
            // attempt budget) rather than silently consuming cases.
            let mut __completed: u32 = 0;
            let mut __attempts: u32 = 0;
            while __completed < config.cases && __attempts < config.cases.saturating_mul(10) {
                __attempts += 1;
                $( let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng); )*
                $body
                __completed += 1;
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Rejects the current draw when its precondition does not hold: the case
/// loop re-draws a replacement (bounded by a 10x attempt budget). Must
/// appear directly inside the property body (it `continue`s the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts a condition inside a property (no shrinking; panics like
/// `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, x in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn vec_strategy_respects_len(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn string_strategy_matches_class(s in "[a-c ]{0,20}") {
            prop_assert!(s.len() <= 20);
            prop_assert!(s.chars().all(|c| matches!(c, 'a'..='c' | ' ')));
        }
    }

    #[test]
    fn cases_are_deterministic_per_property() {
        let mut a = crate::test_runner::TestRng::for_property("p");
        let mut b = crate::test_runner::TestRng::for_property("p");
        let strat = 0u64..1_000_000;
        for _ in 0..10 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
