//! Collection strategies: the `vec` combinator.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Ranges of collection sizes accepted by [`vec()`].
pub trait SizeRange {
    /// Draws a size from the range.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

/// A strategy producing `Vec`s whose elements come from `element` and whose
/// length comes from `size`.
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

/// Creates a `Vec` strategy, mirroring `proptest::collection::vec`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
