//! Test-runner configuration and the deterministic case RNG.

/// How many cases to run per property, mirroring
/// `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the workspace's test
        // suite fast while still exercising each property broadly.
        Self { cases: 64 }
    }
}

/// A deterministic SplitMix64 generator seeded from the property's name, so
/// every `cargo test` run generates identical cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for a named property.
    pub fn for_property(name: &str) -> Self {
        // FNV-1a over the property name.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: hash }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns an integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below(0)");
        self.next_u64() % bound
    }
}
