//! Generation of strings from the simple regex subset the workspace's
//! property tests use: literal characters, character classes with ranges
//! (`[a-d ]`), groups (`(...)`), and bounded repetition (`{m,n}`).

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<char>),
    Group(Vec<(Atom, Repeat)>),
}

#[derive(Debug, Clone, Copy)]
struct Repeat {
    min: usize,
    max: usize,
}

const ONCE: Repeat = Repeat { min: 1, max: 1 };

/// Generates one random string matching `pattern`.
///
/// # Panics
///
/// Panics if the pattern uses regex features outside the supported subset.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse_sequence(&mut pattern.chars().collect::<Vec<_>>().as_slice());
    let mut out = String::new();
    emit_sequence(&atoms, rng, &mut out);
    out
}

fn emit_sequence(atoms: &[(Atom, Repeat)], rng: &mut TestRng, out: &mut String) {
    for (atom, repeat) in atoms {
        let span = repeat.max - repeat.min + 1;
        let times = repeat.min + rng.below(span as u64) as usize;
        for _ in 0..times {
            match atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(choices) => {
                    let idx = rng.below(choices.len() as u64) as usize;
                    out.push(choices[idx]);
                }
                Atom::Group(inner) => emit_sequence(inner, rng, out),
            }
        }
    }
}

/// Parses a sequence of atoms, consuming `chars` until it is empty or a
/// closing `)` is reached (which is left for the caller).
fn parse_sequence(chars: &mut &[char]) -> Vec<(Atom, Repeat)> {
    let mut atoms = Vec::new();
    while let Some(&c) = chars.first() {
        let atom = match c {
            ')' => break,
            '[' => {
                *chars = &chars[1..];
                Atom::Class(parse_class(chars))
            }
            '(' => {
                *chars = &chars[1..];
                let inner = parse_sequence(chars);
                assert_eq!(chars.first(), Some(&')'), "unclosed group in pattern");
                *chars = &chars[1..];
                Atom::Group(inner)
            }
            '\\' => {
                *chars = &chars[1..];
                let escaped = *chars.first().expect("dangling escape in pattern");
                *chars = &chars[1..];
                Atom::Literal(escaped)
            }
            c => {
                assert!(
                    !"{}*+?|.^$".contains(c),
                    "unsupported regex feature `{c}` in shim proptest pattern"
                );
                *chars = &chars[1..];
                Atom::Literal(c)
            }
        };
        let repeat = parse_repeat(chars);
        atoms.push((atom, repeat));
    }
    atoms
}

fn parse_class(chars: &mut &[char]) -> Vec<char> {
    let mut choices = Vec::new();
    loop {
        match chars.first() {
            None => panic!("unclosed character class in pattern"),
            Some(']') => {
                *chars = &chars[1..];
                break;
            }
            Some(&lo) => {
                *chars = &chars[1..];
                if chars.first() == Some(&'-') && chars.get(1).is_some_and(|&c| c != ']') {
                    let hi = chars[1];
                    *chars = &chars[2..];
                    assert!(lo <= hi, "inverted range in character class");
                    choices.extend(lo..=hi);
                } else {
                    choices.push(lo);
                }
            }
        }
    }
    assert!(!choices.is_empty(), "empty character class in pattern");
    choices
}

fn parse_repeat(chars: &mut &[char]) -> Repeat {
    if chars.first() != Some(&'{') {
        return ONCE;
    }
    *chars = &chars[1..];
    let mut min_digits = String::new();
    while chars.first().is_some_and(|c| c.is_ascii_digit()) {
        min_digits.push(chars[0]);
        *chars = &chars[1..];
    }
    let min: usize = min_digits.parse().expect("malformed {m,n} repetition");
    let max = match chars.first() {
        Some(',') => {
            *chars = &chars[1..];
            let mut max_digits = String::new();
            while chars.first().is_some_and(|c| c.is_ascii_digit()) {
                max_digits.push(chars[0]);
                *chars = &chars[1..];
            }
            max_digits.parse().expect("malformed {m,n} repetition")
        }
        _ => min,
    };
    assert_eq!(chars.first(), Some(&'}'), "unclosed {{m,n}} repetition");
    *chars = &chars[1..];
    assert!(min <= max, "inverted {{m,n}} repetition");
    Repeat { min, max }
}
