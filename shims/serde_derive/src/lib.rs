//! A minimal, dependency-free stand-in for the `serde_derive` proc-macro
//! crate, used because this workspace builds without network access to
//! crates.io.
//!
//! `#[derive(Serialize)]` generates an implementation of the shim
//! `serde::Serialize` trait (a single `to_value(&self) -> serde::json::Value`
//! method). Supported shapes — the ones that occur in this workspace:
//!
//! * structs with named fields (serialized as a JSON object),
//! * newtype structs (serialized as the inner value),
//! * tuple structs with 2+ fields (serialized as a JSON array),
//! * enums with unit variants (serialized as the variant name),
//! * enums with struct/tuple variants (externally tagged, like serde),
//! * generic types — the item's own generic parameter list and `where`
//!   clause are copied onto the impl verbatim,
//! * the `#[serde(skip)]` field attribute.
//!
//! `#[derive(Deserialize)]` expands to nothing: the shim `serde` crate
//! provides a blanket implementation of its marker `Deserialize` trait, and
//! nothing in this workspace actually deserializes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate_serialize_impl(&item)
            .parse()
            .expect("serde_derive shim generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error! literal"),
    }
}

/// Accepts (and ignores) the derive so that `#[derive(Deserialize)]` and
/// `#[serde(...)]` attributes compile; the shim `serde` crate provides a
/// blanket `Deserialize` implementation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

enum ItemKind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    skip: bool,
}

enum VariantShape {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

struct Item {
    name: String,
    /// Generic parameter list with bounds, e.g. `<T: Serialize>`; empty if none.
    impl_generics: String,
    /// Generic arguments for the type position, e.g. `<T>`; empty if none.
    ty_generics: String,
    /// `where` clause (including the keyword) or empty.
    where_clause: String,
    kind: ItemKind,
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (including doc comments) and visibility.
    let kind_kw = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) / pub(super)
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                return Err(format!("serde shim derive: unsupported item keyword `{s}`"));
            }
            Some(_) => {}
            None => return Err("serde shim derive: ran out of tokens".to_string()),
        }
    };

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected item name, got {other:?}"
            ))
        }
    };

    // Optional generic parameter list.
    let mut impl_generics = String::new();
    let mut ty_generics = String::new();
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        tokens.next();
        let mut depth = 1usize;
        let mut params: Vec<TokenTree> = Vec::new();
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            params.push(tt);
        }
        let rendered = params.iter().cloned().collect::<TokenStream>().to_string();
        impl_generics = format!("<{rendered}>");
        ty_generics = format!("<{}>", generic_argument_names(&params).join(", "));
    }

    // Optional where clause and the body. A brace body ends the item; a
    // tuple struct's paren body may be followed by a where clause and `;`
    // (`struct W<T>(T) where T: Bound;`), so scanning continues after it.
    let mut in_where = false;
    let mut where_tokens: Vec<TokenTree> = Vec::new();
    let mut body: Option<TokenTree> = None;
    for tt in tokens.by_ref() {
        match &tt {
            TokenTree::Ident(id) if id.to_string() == "where" => {
                in_where = true;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                body = Some(tt);
                break;
            }
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Parenthesis && body.is_none() && !in_where =>
            {
                body = Some(tt);
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => {
                if in_where {
                    where_tokens.push(tt);
                }
            }
        }
    }
    let where_clause = if where_tokens.is_empty() {
        String::new()
    } else {
        let rendered = where_tokens
            .into_iter()
            .collect::<TokenStream>()
            .to_string();
        format!("where {rendered}")
    };

    let kind = match (&kind_kw[..], body) {
        ("struct", None) => ItemKind::UnitStruct,
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            ItemKind::TupleStruct(count_tuple_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) => ItemKind::NamedStruct(parse_fields(g.stream())?),
        ("enum", Some(TokenTree::Group(g))) => ItemKind::Enum(parse_variants(g.stream())?),
        ("enum", None) => return Err("serde shim derive: enum without a body".to_string()),
        _ => unreachable!("kind_kw is struct or enum"),
    };

    Ok(Item {
        name,
        impl_generics,
        ty_generics,
        where_clause,
        kind,
    })
}

/// Extracts the bare argument names (`T`, `'a`, const `N`) from a generic
/// parameter list for use in the type position of the impl.
fn generic_argument_names(params: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    let mut depth = 0usize;
    let mut at_param_start = true;
    let mut prev_was_lifetime_tick = false;
    for tt in params {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    at_param_start = true;
                    prev_was_lifetime_tick = false;
                }
                '\'' if at_param_start => prev_was_lifetime_tick = true,
                _ => {}
            },
            TokenTree::Ident(id) if at_param_start => {
                let s = id.to_string();
                if s == "const" {
                    // `const N: usize` — stay at the parameter start so the
                    // following ident is taken as the name.
                } else if prev_was_lifetime_tick {
                    names.push(format!("'{s}"));
                    at_param_start = false;
                } else {
                    names.push(s);
                    at_param_start = false;
                }
            }
            _ => {}
        }
    }
    names
}

/// Counts the fields of a tuple struct by splitting on top-level commas
/// (tolerating a trailing comma).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut segment_has_tokens = false;
    let mut angle_depth = 0usize;
    let mut prev_dash = false;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                match c {
                    '<' => angle_depth += 1,
                    '>' if !prev_dash => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => {
                        if segment_has_tokens {
                            count += 1;
                        }
                        segment_has_tokens = false;
                        prev_dash = false;
                        continue;
                    }
                    _ => {}
                }
                prev_dash = c == '-';
                segment_has_tokens = true;
            }
            _ => {
                prev_dash = false;
                segment_has_tokens = true;
            }
        }
    }
    if segment_has_tokens {
        count += 1;
    }
    count
}

/// Parses the named fields of a struct body, honouring `#[serde(skip)]`.
fn parse_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    'fields: loop {
        let mut skip = false;
        // Leading attributes.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.next() {
                        if attr_is_serde_skip(g.stream()) {
                            skip = true;
                        }
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(_) => break,
                None => break 'fields,
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => {
                return Err(format!(
                    "serde shim derive: expected field name, got {other:?}"
                ))
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde shim derive: expected `:`, got {other:?}")),
        }
        // Skip the type, up to a top-level comma. `<`/`>` depth must be
        // tracked by hand; `->` inside fn-pointer types must not close an
        // angle bracket.
        let mut angle_depth = 0usize;
        let mut prev_dash = false;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                let c = p.as_char();
                match c {
                    '<' => angle_depth += 1,
                    '>' if !prev_dash => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
                prev_dash = c == '-';
            } else {
                prev_dash = false;
            }
        }
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

/// Recognises `#[serde(skip)]` (and `serde(skip, ...)`) attribute bodies.
fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let mut tokens = stream.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(g)) => g
            .stream()
            .into_iter()
            .any(|tt| matches!(&tt, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

/// Parses enum variants: unit, tuple, or struct-shaped.
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    'variants: loop {
        // Leading attributes.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(_) => break,
                None => break 'variants,
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => {
                return Err(format!(
                    "serde shim derive: expected variant name, got {other:?}"
                ))
            }
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream())?;
                tokens.next();
                VariantShape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                VariantShape::Tuple(n)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant and the trailing comma.
        for tt in tokens.by_ref() {
            if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn generate_serialize_impl(item: &Item) -> String {
    let body = match &item.kind {
        ItemKind::UnitStruct => "::serde::json::Value::Null".to_string(),
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::json::Value::Array(vec![{}])", elems.join(", "))
        }
        ItemKind::NamedStruct(fields) => named_fields_object(fields, "self."),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "Self::{vname} => ::serde::json::Value::String(\"{vname}\".to_string()),"
                        ),
                        VariantShape::Named(fields) => {
                            let binders: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let object = named_fields_object(fields, "");
                            format!(
                                "Self::{vname} {{ {} }} => ::serde::json::Value::Object(vec![(\"{vname}\".to_string(), {object})]),",
                                binders.join(", ")
                            )
                        }
                        VariantShape::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            let inner = if *n == 1 {
                                elems[0].clone()
                            } else {
                                format!("::serde::json::Value::Array(vec![{}])", elems.join(", "))
                            };
                            format!(
                                "Self::{vname}({}) => ::serde::json::Value::Object(vec![(\"{vname}\".to_string(), {inner})]),",
                                binders.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl {impl_generics} ::serde::Serialize for {name} {ty_generics} {where_clause} {{\n\
             fn to_value(&self) -> ::serde::json::Value {{ {body} }}\n\
         }}",
        impl_generics = item.impl_generics,
        name = item.name,
        ty_generics = item.ty_generics,
        where_clause = item.where_clause,
    )
}

/// Renders the `Value::Object(...)` expression for a set of named fields.
/// `access` prefixes each field name (`"self."` for structs, `""` for
/// destructured enum variants).
fn named_fields_object(fields: &[Field], access: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| {
            format!(
                "(\"{name}\".to_string(), ::serde::Serialize::to_value(&{access}{name}))",
                name = f.name
            )
        })
        .collect();
    format!("::serde::json::Value::Object(vec![{}])", entries.join(", "))
}
