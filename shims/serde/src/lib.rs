//! A minimal, dependency-free stand-in for the `serde` crate, used because
//! this workspace builds without network access to crates.io.
//!
//! The real serde's visitor architecture is replaced by a single-method
//! [`Serialize`] trait producing a [`json::Value`]; the derive macros in the
//! sibling `serde_derive` shim generate implementations of it. This covers
//! everything the workspace needs — `#[derive(Serialize, Deserialize)]`,
//! `#[serde(skip)]`, trait bounds like `T: Serialize`, and real JSON output
//! through the `serde_json` shim. Deserialization is never exercised in this
//! workspace, so [`Deserialize`] is a marker trait with a blanket
//! implementation.
//!
//! Swapping this shim for the real serde is a one-line change in the root
//! `Cargo.toml` `[workspace.dependencies]` table.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// Types that can be serialized to a [`json::Value`].
///
/// This is the shim's replacement for serde's `Serialize`; it is object-safe
/// and implemented for the common standard-library types plus everything
/// that derives `Serialize`.
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_value(&self) -> json::Value;
}

/// Marker trait standing in for serde's `Deserialize`.
///
/// Nothing in this workspace deserializes, so a blanket implementation keeps
/// `#[derive(Deserialize)]` and `T: Deserialize` bounds compiling without
/// generating any code.
pub trait Deserialize<'de> {}

impl<'de, T> Deserialize<'de> for T {}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> json::Value {
                json::Value::Int(*self as i128)
            }
        }
    )*};
}

// u128 is deliberately absent: `Value::Int` holds an i128, so u128 values
// above `i128::MAX` would silently wrap; a compile error is better.
impl_serialize_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_value(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> json::Value {
        json::Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> json::Value {
        json::Value::Float(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> json::Value {
        json::Value::String(self.clone())
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> json::Value {
        json::Value::String(self.display().to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> json::Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> json::Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> json::Value {
        match self {
            Some(v) => v.to_value(),
            None => json::Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> json::Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> json::Value {
        self.as_slice().to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> json::Value {
        json::Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> json::Value {
        json::Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> json::Value {
        json::Value::Object(
            self.iter()
                .map(|(k, v)| (json::key_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> json::Value {
        let mut entries: Vec<(String, json::Value)> = self
            .iter()
            .map(|(k, v)| (json::key_string(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        json::Value::Object(entries)
    }
}
