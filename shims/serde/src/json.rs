//! The JSON value tree produced by the shim [`Serialize`](crate::Serialize)
//! trait, together with compact and pretty writers.

use std::fmt;

/// A JSON value.
///
/// `Object` preserves insertion order (derive output lists fields in
/// declaration order, matching serde_json's default behaviour for structs).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any integer (stored widened; JSON has a single number type).
    Int(i128),
    /// A floating-point number. Non-finite values print as `null`, matching
    /// serde_json's lossy behaviour.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as an ordered list of key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Renders the value as pretty-printed JSON with two-space indentation,
    /// matching `serde_json::to_string_pretty`.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    /// Renders the value as compact single-line JSON.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // Keep integral floats distinguishable from integers,
                    // like serde_json (`1.0` rather than `1`).
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        out.push_str(&format!("{f:.1}"));
                    } else {
                        out.push_str(&f.to_string());
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    next_line(out, indent);
                    item.write(out, indent.map(|n| n + 1));
                }
                close_line(out, indent);
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    next_line(out, indent);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent.map(|n| n + 1));
                }
                close_line(out, indent);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

/// Renders a value destined for an object key position. JSON keys must be
/// strings, so string values are used verbatim and anything else falls back
/// to its compact rendering (e.g. `Bitwidth::Int4` maps serialize with
/// `"Int4"` keys).
pub fn key_string(value: &Value) -> String {
    match value {
        Value::String(s) => s.clone(),
        other => other.to_string_compact(),
    }
}

fn next_line(out: &mut String, indent: Option<usize>) {
    if let Some(level) = indent {
        out.push('\n');
        for _ in 0..=level {
            out.push_str("  ");
        }
    }
}

fn close_line(out: &mut String, indent: Option<usize>) {
    if let Some(level) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str("  ");
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_printing_matches_serde_json_shape() {
        let v = Value::Object(vec![
            ("id".to_string(), Value::String("table2".to_string())),
            ("n".to_string(), Value::Int(3)),
            (
                "rows".to_string(),
                Value::Array(vec![Value::Float(1.5), Value::Float(2.0)]),
            ),
        ]);
        assert_eq!(
            v.to_string_pretty(),
            "{\n  \"id\": \"table2\",\n  \"n\": 3,\n  \"rows\": [\n    1.5,\n    2.0\n  ]\n}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let v = Value::String("a\"b\\c\nd".to_string());
        assert_eq!(v.to_string_compact(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::Float(f64::NAN).to_string_compact(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn empty_containers_stay_compact() {
        assert_eq!(Value::Array(vec![]).to_string_pretty(), "[]");
        assert_eq!(Value::Object(vec![]).to_string_pretty(), "{}");
    }
}
