//! A minimal stand-in for the `rand_chacha` crate, used because this
//! workspace builds without network access to crates.io.
//!
//! [`ChaCha8Rng`] is a genuine ChaCha stream cipher with 8 rounds (RFC 8439
//! block function, zero nonce, 64-bit block counter), so it has the same
//! statistical quality and determinism guarantees as the real crate. Its
//! output stream is **not** bit-identical to `rand_chacha::ChaCha8Rng`
//! (which also differs across its own versions); the workspace only relies
//! on determinism per seed, never on specific values.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;
const WORDS_PER_BLOCK: usize = 16;

/// A deterministic ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the ChaCha state).
    counter: u64,
    /// The current keystream block.
    buffer: [u32; WORDS_PER_BLOCK],
    /// Next unread word within `buffer`; `WORDS_PER_BLOCK` means empty.
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; WORDS_PER_BLOCK];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let mut working = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, init) in working.iter_mut().zip(state.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buffer = working;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= WORDS_PER_BLOCK {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

#[inline]
fn quarter_round(state: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, bytes) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        }
        Self {
            key,
            counter: 0,
            buffer: [0; WORDS_PER_BLOCK],
            index: WORDS_PER_BLOCK,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word();
        let hi = self.next_word();
        (u64::from(hi) << 32) | u64::from(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn output_is_roughly_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let ones: u32 = (0..1000).map(|_| rng.next_u32().count_ones()).sum();
        // 32,000 bits total; expect ~16,000 ones.
        assert!((14_500..17_500).contains(&ones), "ones={ones}");
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let f: f32 = rng.gen();
        assert!((0.0..1.0).contains(&f));
        let n: usize = rng.gen_range(0..10);
        assert!(n < 10);
    }
}
