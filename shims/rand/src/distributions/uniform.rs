//! Uniform-sampling support traits mirroring `rand::distributions::uniform`.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from an interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws one sample from `[low, high)` (or `[low, high]` when
    /// `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let low_wide = low as i128;
                let high_wide = high as i128;
                let span = (high_wide - low_wide + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "cannot sample from an empty integer range");
                // Modulo reduction over 64 random bits; the bias is at most
                // span / 2^64, which is negligible for the span sizes this
                // workspace uses (all far below 2^32).
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (low_wide + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        // For floats the closed/half-open distinction is immaterial at
        // uniform density; rand's implementation is also lossy here.
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        low + (high - low) * unit
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + (high - low) * unit
    }
}

/// Ranges that can be sampled from directly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample from empty range");
        T::sample_uniform(start, end, true, rng)
    }
}
