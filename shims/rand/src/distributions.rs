//! Distributions: the `Standard` and `Uniform` subset of
//! `rand::distributions`.

use crate::RngCore;

pub mod uniform;

pub use uniform::{SampleRange, SampleUniform};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: full integer range for integers,
/// the half-open unit interval `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<i128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        Distribution::<u128>::sample(self, rng) as i128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 high bits -> [0, 1) with full f32 mantissa precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits -> [0, 1) with full f64 mantissa precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A uniform distribution over a fixed interval, mirroring
/// `rand::distributions::Uniform`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<X: SampleUniform> {
    low: X,
    high: X,
    inclusive: bool,
}

impl<X: SampleUniform> Uniform<X> {
    /// Uniform distribution over the half-open interval `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn new(low: X, high: X) -> Self {
        assert!(low < high, "Uniform::new called with empty range");
        Self {
            low,
            high,
            inclusive: false,
        }
    }

    /// Uniform distribution over the closed interval `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn new_inclusive(low: X, high: X) -> Self {
        assert!(
            low <= high,
            "Uniform::new_inclusive called with empty range"
        );
        Self {
            low,
            high,
            inclusive: true,
        }
    }
}

impl<X: SampleUniform> Distribution<X> for Uniform<X> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> X {
        X::sample_uniform(self.low, self.high, self.inclusive, rng)
    }
}
