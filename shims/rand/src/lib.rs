//! A minimal, dependency-free stand-in for the `rand` crate (0.8 API
//! surface), used because this workspace builds without network access to
//! crates.io.
//!
//! The subset implemented is exactly what the workspace exercises:
//! [`RngCore`], [`SeedableRng`] (with the SplitMix64-based `seed_from_u64`),
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), and
//! `distributions::{Distribution, Standard, Uniform}`. Streams are **not**
//! bit-compatible with the real rand crate, but they are fully deterministic
//! for a given seed, which is the property the reproduction relies on.

pub mod distributions;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed array type, e.g. `[u8; 32]` for ChaCha.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through SplitMix64.
    /// Deterministic per seed, but **not** bit-identical to rand 0.8's
    /// expansion (rand_core uses a PCG32-based scheme), matching the
    /// crate-level disclaimer.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Steele, Lea & Flood), as used by rand_core.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience methods layered on top of [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from the given range
    /// (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        let unit: f64 = Standard.sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 itself, used as a plain test generator.
    struct TestRng(u64);

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = TestRng(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            assert!(v < 10);
            let w: u32 = rng.gen_range(10..100);
            assert!((10..100).contains(&w));
        }
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = TestRng(3);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn uniform_distribution_respects_inclusive_bounds() {
        use crate::distributions::{Distribution, Uniform};
        let mut rng = TestRng(11);
        let dist = Uniform::new_inclusive(-0.5f32, 0.5f32);
        for _ in 0..1000 {
            let v = dist.sample(&mut rng);
            assert!((-0.5..=0.5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = TestRng(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
