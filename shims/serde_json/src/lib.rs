//! A minimal, dependency-free stand-in for the `serde_json` crate, used
//! because this workspace builds without network access to crates.io.
//!
//! The serialization half — [`to_string`], [`to_string_pretty`], and the
//! [`Value`] re-export — covers the experiment harness writing JSON records
//! under `results/`. A small recursive-descent parser ([`from_str`])
//! covers reading those records back (used by the `bench-diff` comparison
//! tool). The parser handles the full JSON grammar the writer emits:
//! objects, arrays, strings with escapes, integers, floats, booleans and
//! null.

pub use serde::json::Value;

/// Serialization or parse error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn parse(message: impl Into<String>, offset: usize) -> Self {
        Self(format!("{} at byte {offset}", message.into()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document into a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing non-whitespace.
pub fn from_str(input: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::parse("trailing characters", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(
                format!("expected '{}'", byte as char),
                self.pos,
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::parse(format!("expected '{word}'"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(Error::parse("expected a JSON value", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            entries.push((key, self.value()?));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::parse("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::parse("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::parse("bad \\u escape", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::parse("bad \\u escape", self.pos))?;
                            self.pos = end;
                            // Surrogate pairs are not produced by the shim's
                            // writer; map lone surrogates to the replacement
                            // character like serde_json's lossy readers.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::parse(
                                format!("unknown escape '\\{}'", other as char),
                                self.pos,
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume the whole run of ordinary characters up to
                    // the next quote or escape in one step. UTF-8
                    // continuation bytes are >= 0x80, so scanning for the
                    // ASCII delimiters can never split a multi-byte
                    // character, and the input came in as a &str so the
                    // run is valid UTF-8.
                    let rest = &self.bytes[self.pos..];
                    let run = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .unwrap_or(rest.len());
                    let chunk = std::str::from_utf8(&rest[..run])
                        .map_err(|_| Error::parse("invalid UTF-8", self.pos))?;
                    out.push_str(chunk);
                    self.pos += run;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::parse("invalid number", start))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::parse("invalid number", start))
        }
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value as compact single-line JSON.
pub fn to_string<T>(value: &T) -> Result<String>
where
    T: ?Sized + serde::Serialize,
{
    Ok(value.to_value().to_string_compact())
}

/// Serializes a value as pretty-printed JSON with two-space indentation.
pub fn to_string_pretty<T>(value: &T) -> Result<String>
where
    T: ?Sized + serde::Serialize,
{
    Ok(value.to_value().to_string_pretty())
}

/// Converts a value to a [`Value`] tree.
pub fn to_value<T>(value: &T) -> Result<Value>
where
    T: ?Sized + serde::Serialize,
{
    Ok(value.to_value())
}

#[cfg(test)]
mod tests {
    use serde::Serialize;

    #[derive(Serialize)]
    struct Record {
        id: String,
        score: f64,
        tags: Vec<&'static str>,
    }

    #[test]
    fn derived_struct_serializes_to_json() {
        let r = Record {
            id: "fig5".to_string(),
            score: 0.25,
            tags: vec!["tpot", "latency"],
        };
        let json = super::to_string(&r).unwrap();
        assert_eq!(
            json,
            "{\"id\":\"fig5\",\"score\":0.25,\"tags\":[\"tpot\",\"latency\"]}"
        );
    }

    #[derive(Serialize)]
    enum Kind {
        Unit,
        Payload { n: usize },
    }

    #[test]
    fn derived_enum_uses_external_tagging() {
        assert_eq!(super::to_string(&Kind::Unit).unwrap(), "\"Unit\"");
        assert_eq!(
            super::to_string(&Kind::Payload { n: 4 }).unwrap(),
            "{\"Payload\":{\"n\":4}}"
        );
    }

    #[derive(Serialize)]
    struct Newtype(u16);

    #[test]
    fn newtype_structs_serialize_transparently() {
        assert_eq!(super::to_string(&Newtype(7)).unwrap(), "7");
    }

    #[derive(Serialize)]
    struct Generic<T: serde::Serialize> {
        rows: T,
    }

    #[test]
    fn generic_structs_serialize() {
        let g = Generic {
            rows: vec![1u32, 2, 3],
        };
        assert_eq!(super::to_string(&g).unwrap(), "{\"rows\":[1,2,3]}");
    }

    #[rustfmt::skip]
    #[derive(Serialize)]
    struct TrailingComma(u32, u32,);

    #[test]
    fn tuple_struct_with_trailing_comma_counts_fields_correctly() {
        assert_eq!(super::to_string(&TrailingComma(1, 2)).unwrap(), "[1,2]");
    }

    #[test]
    fn parser_roundtrips_writer_output() {
        let r = Record {
            id: "fig5 \"quoted\"\nline".to_string(),
            score: -0.25,
            tags: vec!["tpot", "latency"],
        };
        for json in [
            super::to_string(&r).unwrap(),
            super::to_string_pretty(&r).unwrap(),
        ] {
            let value = super::from_str(&json).unwrap();
            assert_eq!(value, r.to_value());
        }
    }

    #[test]
    fn parser_handles_scalars_and_nesting() {
        use super::Value;
        assert_eq!(super::from_str("null").unwrap(), Value::Null);
        assert_eq!(super::from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(super::from_str("-17").unwrap(), Value::Int(-17));
        assert_eq!(super::from_str("2.5e3").unwrap(), Value::Float(2500.0));
        assert_eq!(
            super::from_str(" [1, {\"a\": []}] ").unwrap(),
            Value::Array(vec![
                Value::Int(1),
                Value::Object(vec![("a".to_string(), Value::Array(vec![]))]),
            ])
        );
        assert_eq!(
            super::from_str("\"\\u0041\"").unwrap(),
            Value::String("A".into())
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(super::from_str(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[derive(Serialize)]
    struct WhereBound<T>(T)
    where
        T: serde::Serialize;

    #[test]
    fn tuple_struct_where_clause_is_kept_on_the_impl() {
        assert_eq!(super::to_string(&WhereBound(9u8)).unwrap(), "9");
    }

    #[derive(Serialize)]
    struct Skipped {
        kept: bool,
        #[serde(skip)]
        gone: Vec<u8>,
    }

    #[test]
    fn serde_skip_omits_the_field() {
        let s = Skipped {
            kept: true,
            gone: vec![1],
        };
        assert_eq!(s.gone.len(), 1);
        assert_eq!(super::to_string(&s).unwrap(), "{\"kept\":true}");
    }
}
