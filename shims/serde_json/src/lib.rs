//! A minimal, dependency-free stand-in for the `serde_json` crate, used
//! because this workspace builds without network access to crates.io.
//!
//! Only the serialization half is provided — [`to_string`],
//! [`to_string_pretty`], and the [`Value`] re-export — which is all the
//! workspace uses (the experiment harness writes JSON records under
//! `results/`).

pub use serde::json::Value;

/// Serialization error. The shim's writer is infallible, so this is only
/// here to keep `serde_json`-shaped signatures; it is never constructed.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json shim serialization error")
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value as compact single-line JSON.
pub fn to_string<T>(value: &T) -> Result<String>
where
    T: ?Sized + serde::Serialize,
{
    Ok(value.to_value().to_string_compact())
}

/// Serializes a value as pretty-printed JSON with two-space indentation.
pub fn to_string_pretty<T>(value: &T) -> Result<String>
where
    T: ?Sized + serde::Serialize,
{
    Ok(value.to_value().to_string_pretty())
}

/// Converts a value to a [`Value`] tree.
pub fn to_value<T>(value: &T) -> Result<Value>
where
    T: ?Sized + serde::Serialize,
{
    Ok(value.to_value())
}

#[cfg(test)]
mod tests {
    use serde::Serialize;

    #[derive(Serialize)]
    struct Record {
        id: String,
        score: f64,
        tags: Vec<&'static str>,
    }

    #[test]
    fn derived_struct_serializes_to_json() {
        let r = Record {
            id: "fig5".to_string(),
            score: 0.25,
            tags: vec!["tpot", "latency"],
        };
        let json = super::to_string(&r).unwrap();
        assert_eq!(
            json,
            "{\"id\":\"fig5\",\"score\":0.25,\"tags\":[\"tpot\",\"latency\"]}"
        );
    }

    #[derive(Serialize)]
    enum Kind {
        Unit,
        Payload { n: usize },
    }

    #[test]
    fn derived_enum_uses_external_tagging() {
        assert_eq!(super::to_string(&Kind::Unit).unwrap(), "\"Unit\"");
        assert_eq!(
            super::to_string(&Kind::Payload { n: 4 }).unwrap(),
            "{\"Payload\":{\"n\":4}}"
        );
    }

    #[derive(Serialize)]
    struct Newtype(u16);

    #[test]
    fn newtype_structs_serialize_transparently() {
        assert_eq!(super::to_string(&Newtype(7)).unwrap(), "7");
    }

    #[derive(Serialize)]
    struct Generic<T: serde::Serialize> {
        rows: T,
    }

    #[test]
    fn generic_structs_serialize() {
        let g = Generic {
            rows: vec![1u32, 2, 3],
        };
        assert_eq!(super::to_string(&g).unwrap(), "{\"rows\":[1,2,3]}");
    }

    #[rustfmt::skip]
    #[derive(Serialize)]
    struct TrailingComma(u32, u32,);

    #[test]
    fn tuple_struct_with_trailing_comma_counts_fields_correctly() {
        assert_eq!(super::to_string(&TrailingComma(1, 2)).unwrap(), "[1,2]");
    }

    #[derive(Serialize)]
    struct WhereBound<T>(T)
    where
        T: serde::Serialize;

    #[test]
    fn tuple_struct_where_clause_is_kept_on_the_impl() {
        assert_eq!(super::to_string(&WhereBound(9u8)).unwrap(), "9");
    }

    #[derive(Serialize)]
    struct Skipped {
        kept: bool,
        #[serde(skip)]
        gone: Vec<u8>,
    }

    #[test]
    fn serde_skip_omits_the_field() {
        let s = Skipped {
            kept: true,
            gone: vec![1],
        };
        assert_eq!(s.gone.len(), 1);
        assert_eq!(super::to_string(&s).unwrap(), "{\"kept\":true}");
    }
}
