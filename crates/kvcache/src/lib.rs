//! Chunked key-value cache substrate for long-context LLM inference.
//!
//! The KV cache is the object every method in the Cocktail paper operates
//! on. This crate provides:
//!
//! * [`KvChunk`] — the KV tensors of one contiguous run of context tokens,
//!   stored either in FP16 or integer-quantized form.
//! * [`ChunkSegmentation`] — how a context of `n` tokens is split into
//!   equal-size chunks plus an FP16 remainder (the paper truncates the tail
//!   that does not divide evenly and keeps it at full precision).
//! * [`ChunkPermutation`] — a validated permutation of chunk indices with
//!   its inverse and its expansion to token level; this is the object the
//!   chunk-reordering module manipulates.
//! * [`ChunkedLayerCache`] / [`ChunkedKvCache`] — the per-(layer, head) and
//!   whole-model cache containers, including the FP16 decode tail for
//!   output tokens and a generic decode-attention kernel over mixed-
//!   precision chunks.
//! * [`MemoryLayout`] — the physical byte layout of the chunks in a flat
//!   arena, with the statistics (bitwidth transitions, cache-line waste)
//!   that the hardware model in `cocktail-hwsim` consumes.
//! * [`SharedPrefixKv`] — refcounted raw KV blocks of a prompt prefix, the
//!   unit a serving-side prefix cache shares across requests so a common
//!   context is prefilled once instead of per request.
//! * [`TrieSnapshot`] / [`write_snapshot`] / [`read_snapshot`] — a flat,
//!   versioned, checksummed binary format that persists a prefix trie (and
//!   its shared KV blocks) across restarts and ships it to fresh replicas.
//!
//! # Example
//!
//! ```
//! use cocktail_kvcache::{ChunkSegmentation, ChunkedLayerCache};
//! use cocktail_quant::Bitwidth;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 100 context tokens, chunk size 32 -> 3 full chunks + 4 FP16 remainder.
//! let seg = ChunkSegmentation::new(100, 32)?;
//! assert_eq!(seg.chunk_count(), 3);
//! assert_eq!(seg.remainder_len(), 4);
//!
//! // Build a cache for one layer/head and quantize chunk 1 to INT2.
//! let k = cocktail_tensor::rng::gaussian_matrix(100, 16, 1.0, 1);
//! let v = cocktail_tensor::rng::gaussian_matrix(100, 16, 1.0, 2);
//! let mut cache = ChunkedLayerCache::from_prefill(&k, &v, &seg)?;
//! cache.quantize_chunk(1, Bitwidth::Int2, 32)?;
//! assert!(cache.storage_bytes() < 2 * 100 * 16 * 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod cache;
mod chunk;
mod error;
mod permutation;
mod segmentation;
mod shared;
mod snapshot;

pub use arena::{LayoutRegion, LayoutStats, MemoryLayout};
pub use cache::{ChunkedKvCache, ChunkedLayerCache, DecodeAttention};
pub use chunk::{ChunkStorage, KvChunk, OutlierPatch};
pub use error::KvCacheError;
pub use permutation::ChunkPermutation;
pub use segmentation::ChunkSegmentation;
pub use shared::{PrefixKvBlock, SharedPrefixKv};
pub use snapshot::{
    read_snapshot, write_snapshot, SnapshotError, SnapshotNode, TrieSnapshot, SNAPSHOT_BLOCK_ALIGN,
    SNAPSHOT_FORMAT_VERSION, SNAPSHOT_HEADER_LEN, SNAPSHOT_MAGIC,
};
