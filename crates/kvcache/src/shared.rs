//! Refcounted key/value blocks for sharing a prompt prefix across
//! serving requests.
//!
//! When many requests share a long context prefix (a system prompt, a
//! document served to several users), the prefill work for that prefix is
//! identical across them. A [`SharedPrefixKv`] holds the raw per-(layer,
//! KV-head) key/value rows of one token prefix behind [`Arc`]s, so a prefix
//! cache and any number of in-flight prefills can reference the same bytes:
//! cloning the handle bumps refcounts instead of copying tensors, and the
//! refcount tells an evictor whether the entry is still pinned by a request
//! being prefilled.
//!
//! The blocks are stored at *prefill precision* (FP32), not in the
//! compressed chunk format: continuing a prefill from a cached prefix must
//! be bit-identical to a cold full prefill, and the chunk formats round
//! through FP16 (and are rewritten per request by query-dependent
//! quantization policies). The bytes reported by
//! [`SharedPrefixKv::storage_bytes`] are therefore honest FP32 bytes, which
//! is what a serving budget should be charged.

use crate::error::KvCacheError;
use cocktail_tensor::Matrix;
use std::sync::Arc;

/// The raw key/value rows of one (layer, KV-head) pair for a token prefix,
/// shape `(prefix_tokens, head_dim)` each, keys already rotary-embedded at
/// their absolute positions (exactly what the prefill phase produces).
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixKvBlock {
    k: Matrix,
    v: Matrix,
}

impl PrefixKvBlock {
    /// Wraps the key/value rows of one (layer, head) pair.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::ShapeMismatch`] if `k` and `v` differ in
    /// shape.
    pub fn new(k: Matrix, v: Matrix) -> Result<Self, KvCacheError> {
        if k.shape() != v.shape() {
            return Err(KvCacheError::ShapeMismatch(format!(
                "prefix block k {:?} vs v {:?}",
                k.shape(),
                v.shape()
            )));
        }
        Ok(Self { k, v })
    }

    /// The key rows (post-RoPE), shape `(prefix_tokens, head_dim)`.
    pub fn k(&self) -> &Matrix {
        &self.k
    }

    /// The value rows, shape `(prefix_tokens, head_dim)`.
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// Number of prefix tokens covered by this block.
    pub fn tokens(&self) -> usize {
        self.k.rows()
    }

    /// FP32 storage footprint of this block in bytes.
    pub fn storage_bytes(&self) -> usize {
        (self.k.len() + self.v.len()) * std::mem::size_of::<f32>()
    }
}

/// The refcounted KV blocks of one token prefix across every (layer,
/// KV-head) pair of a model: the unit a serving-side prefix cache stores,
/// hands to prefills, and evicts.
///
/// Cloning is cheap (one [`Arc`] bump per block) and is how the cache pins
/// an entry while a prefill uses it; [`SharedPrefixKv::ref_count`] exposes
/// the number of outstanding handles so LRU eviction can skip pinned
/// entries.
///
/// # Example
///
/// ```
/// use cocktail_kvcache::{PrefixKvBlock, SharedPrefixKv};
/// use cocktail_tensor::rng::gaussian_matrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let block = |seed| {
///     PrefixKvBlock::new(
///         gaussian_matrix(6, 4, 1.0, seed),
///         gaussian_matrix(6, 4, 1.0, seed + 100),
///     )
/// };
/// let shared = SharedPrefixKv::from_blocks(2, 1, vec![block(1)?, block(2)?])?;
/// assert_eq!(shared.tokens(), 6);
/// assert_eq!(shared.ref_count(), 1);
/// let pinned = shared.clone(); // refcount bump, no tensor copy
/// assert_eq!(shared.ref_count(), 2);
/// drop(pinned);
/// assert_eq!(shared.ref_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SharedPrefixKv {
    tokens: usize,
    layers: usize,
    kv_heads: usize,
    blocks: Vec<Arc<PrefixKvBlock>>,
}

impl SharedPrefixKv {
    /// Builds a shared prefix from one block per (layer, KV-head) pair, in
    /// layer-major order (`layer * kv_heads + head`).
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::ShapeMismatch`] if the block count is not
    /// `layers * kv_heads`, the blocks disagree on token count, or there
    /// are no blocks.
    pub fn from_blocks(
        layers: usize,
        kv_heads: usize,
        blocks: Vec<PrefixKvBlock>,
    ) -> Result<Self, KvCacheError> {
        if blocks.is_empty() || blocks.len() != layers * kv_heads {
            return Err(KvCacheError::ShapeMismatch(format!(
                "{} prefix blocks for {layers} layers x {kv_heads} kv heads",
                blocks.len()
            )));
        }
        let tokens = blocks[0].tokens();
        if blocks.iter().any(|b| b.tokens() != tokens) {
            return Err(KvCacheError::ShapeMismatch(
                "prefix blocks disagree on token count".into(),
            ));
        }
        Ok(Self {
            tokens,
            layers,
            kv_heads,
            blocks: blocks.into_iter().map(Arc::new).collect(),
        })
    }

    /// Number of prefix tokens covered.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Number of KV heads per layer.
    pub fn kv_heads(&self) -> usize {
        self.kv_heads
    }

    /// The block of one (layer, KV-head) pair.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn block(&self, layer: usize, head: usize) -> &PrefixKvBlock {
        assert!(
            layer < self.layers && head < self.kv_heads,
            "prefix block out of range"
        );
        &self.blocks[layer * self.kv_heads + head]
    }

    /// Total FP32 storage footprint of all blocks in bytes. Shared handles
    /// reference the same allocation, so a budget should charge this once
    /// per entry, not once per handle.
    pub fn storage_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.storage_bytes()).sum::<usize>()
    }

    /// Number of live handles to these blocks (including this one). A
    /// cache-resident entry with `ref_count() == 1` is unpinned and safe to
    /// evict; a higher count means prefills are still reading it.
    pub fn ref_count(&self) -> usize {
        self.blocks.first().map(Arc::strong_count).unwrap_or(0)
    }

    /// Whether any handle beyond this one is alive.
    pub fn is_pinned(&self) -> bool {
        self.ref_count() > 1
    }

    /// Copies the token rows `start..end` of every block into a new,
    /// independently refcounted prefix — the primitive a token-trie prefix
    /// cache uses to split one cached run at a divergence point (each trie
    /// node owns exactly its own segment's rows, so evicting a node frees
    /// real bytes).
    ///
    /// The rows keep their absolute positions (keys stay rotary-embedded
    /// where the original prefill put them), so a slice taken at token
    /// offset `start` is only meaningful as the continuation of a prefix
    /// covering `start` tokens.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::ShapeMismatch`] if `start >= end` or
    /// `end > self.tokens()`.
    pub fn slice_tokens(&self, start: usize, end: usize) -> Result<Self, KvCacheError> {
        if start >= end || end > self.tokens {
            return Err(KvCacheError::ShapeMismatch(format!(
                "token slice {start}..{end} of a {}-token prefix",
                self.tokens
            )));
        }
        let blocks = self
            .blocks
            .iter()
            .map(|b| {
                PrefixKvBlock::new(b.k.slice_rows(start, end), b.v.slice_rows(start, end))
                    .map(Arc::new)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            tokens: end - start,
            layers: self.layers,
            kv_heads: self.kv_heads,
            blocks,
        })
    }

    /// Concatenates consecutive prefix segments row-wise into one
    /// contiguous prefix — the inverse of [`SharedPrefixKv::slice_tokens`],
    /// used to assemble the KV of a trie path (root-ward segment first)
    /// into the single contiguous block a resuming prefill reads.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::ShapeMismatch`] if `parts` is empty or the
    /// segments disagree on layer/head layout.
    pub fn concat(parts: &[&Self]) -> Result<Self, KvCacheError> {
        let first = parts
            .first()
            .ok_or_else(|| KvCacheError::ShapeMismatch("concat of zero prefix segments".into()))?;
        if parts
            .iter()
            .any(|p| p.layers != first.layers || p.kv_heads != first.kv_heads)
        {
            return Err(KvCacheError::ShapeMismatch(
                "prefix segments disagree on layer/head layout".into(),
            ));
        }
        if parts.len() == 1 {
            return Ok((*first).clone());
        }
        let mut blocks = Vec::with_capacity(first.blocks.len());
        for i in 0..first.blocks.len() {
            let ks: Vec<&Matrix> = parts.iter().map(|p| &p.blocks[i].k).collect();
            let vs: Vec<&Matrix> = parts.iter().map(|p| &p.blocks[i].v).collect();
            let k =
                Matrix::concat_rows(&ks).map_err(|e| KvCacheError::ShapeMismatch(e.to_string()))?;
            let v =
                Matrix::concat_rows(&vs).map_err(|e| KvCacheError::ShapeMismatch(e.to_string()))?;
            blocks.push(Arc::new(PrefixKvBlock::new(k, v)?));
        }
        Ok(Self {
            tokens: parts.iter().map(|p| p.tokens).sum(),
            layers: first.layers,
            kv_heads: first.kv_heads,
            blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_tensor::rng::gaussian_matrix;

    fn blocks(layers: usize, heads: usize, tokens: usize) -> Vec<PrefixKvBlock> {
        (0..layers * heads)
            .map(|i| {
                PrefixKvBlock::new(
                    gaussian_matrix(tokens, 4, 1.0, i as u64),
                    gaussian_matrix(tokens, 4, 1.0, 1000 + i as u64),
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn from_blocks_validates_layout() {
        assert!(SharedPrefixKv::from_blocks(2, 2, blocks(2, 2, 5)).is_ok());
        assert!(SharedPrefixKv::from_blocks(2, 2, blocks(2, 1, 5)).is_err());
        assert!(SharedPrefixKv::from_blocks(1, 1, vec![]).is_err());
        let mut uneven = blocks(2, 1, 5);
        uneven[1] =
            PrefixKvBlock::new(gaussian_matrix(3, 4, 1.0, 7), gaussian_matrix(3, 4, 1.0, 8))
                .unwrap();
        assert!(SharedPrefixKv::from_blocks(2, 1, uneven).is_err());
    }

    #[test]
    fn block_shape_mismatch_is_rejected() {
        let k = gaussian_matrix(4, 4, 1.0, 1);
        let v = gaussian_matrix(5, 4, 1.0, 2);
        assert!(PrefixKvBlock::new(k, v).is_err());
    }

    #[test]
    fn clone_shares_blocks_and_tracks_refcount() {
        let shared = SharedPrefixKv::from_blocks(2, 2, blocks(2, 2, 6)).unwrap();
        assert_eq!(shared.ref_count(), 1);
        assert!(!shared.is_pinned());
        let a = shared.clone();
        let b = shared.clone();
        assert_eq!(shared.ref_count(), 3);
        assert!(shared.is_pinned());
        // Cloned handles see the same data.
        assert_eq!(a.block(1, 1).k(), shared.block(1, 1).k());
        drop(a);
        drop(b);
        assert_eq!(shared.ref_count(), 1);
    }

    #[test]
    fn storage_bytes_counts_fp32_k_and_v_once() {
        let shared = SharedPrefixKv::from_blocks(2, 1, blocks(2, 1, 8)).unwrap();
        // 2 blocks x (k + v) x 8 tokens x 4 dims x 4 bytes.
        assert_eq!(shared.storage_bytes(), 2 * 2 * 8 * 4 * 4);
        let clone = shared.clone();
        assert_eq!(clone.storage_bytes(), shared.storage_bytes());
    }

    #[test]
    fn slice_tokens_copies_the_requested_rows_into_fresh_arcs() {
        let shared = SharedPrefixKv::from_blocks(2, 1, blocks(2, 1, 8)).unwrap();
        let head = shared.slice_tokens(0, 3).unwrap();
        let tail = shared.slice_tokens(3, 8).unwrap();
        assert_eq!(head.tokens(), 3);
        assert_eq!(tail.tokens(), 5);
        // Fresh allocations: slicing does not pin the original.
        assert_eq!(shared.ref_count(), 1);
        assert_eq!(head.ref_count(), 1);
        // Row content is preserved exactly.
        for layer in 0..2 {
            let full = shared.block(layer, 0);
            assert_eq!(head.block(layer, 0).k(), &full.k().slice_rows(0, 3));
            assert_eq!(tail.block(layer, 0).v(), &full.v().slice_rows(3, 8));
        }
        // Byte accounting splits proportionally.
        assert_eq!(
            head.storage_bytes() + tail.storage_bytes(),
            shared.storage_bytes()
        );
        // Invalid ranges are rejected.
        assert!(shared.slice_tokens(3, 3).is_err());
        assert!(shared.slice_tokens(0, 9).is_err());
    }

    #[test]
    fn concat_reassembles_slices_bit_identically() {
        let shared = SharedPrefixKv::from_blocks(2, 2, blocks(2, 2, 7)).unwrap();
        let a = shared.slice_tokens(0, 2).unwrap();
        let b = shared.slice_tokens(2, 5).unwrap();
        let c = shared.slice_tokens(5, 7).unwrap();
        let whole = SharedPrefixKv::concat(&[&a, &b, &c]).unwrap();
        assert_eq!(whole.tokens(), 7);
        for layer in 0..2 {
            for h in 0..2 {
                assert_eq!(whole.block(layer, h).k(), shared.block(layer, h).k());
                assert_eq!(whole.block(layer, h).v(), shared.block(layer, h).v());
            }
        }
        // A single segment concatenates to a cheap clone (refcount bump).
        let alias = SharedPrefixKv::concat(&[&a]).unwrap();
        assert_eq!(a.ref_count(), 2);
        drop(alias);
        // Layout mismatches and empty input are rejected.
        let other = SharedPrefixKv::from_blocks(1, 1, blocks(1, 1, 4)).unwrap();
        assert!(SharedPrefixKv::concat(&[&a, &other]).is_err());
        assert!(SharedPrefixKv::concat(&[]).is_err());
    }

    #[test]
    fn tokens_and_indexing() {
        let shared = SharedPrefixKv::from_blocks(3, 2, blocks(3, 2, 7)).unwrap();
        assert_eq!(shared.tokens(), 7);
        assert_eq!(shared.layers(), 3);
        assert_eq!(shared.kv_heads(), 2);
        assert_eq!(shared.block(2, 1).tokens(), 7);
    }
}
