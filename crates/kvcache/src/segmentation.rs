//! Splitting a long context into equal-size chunks.

use crate::error::KvCacheError;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Describes how a context of `context_len` tokens is divided into
/// equal-size chunks of `chunk_size` tokens.
///
/// Following Section III-A of the paper, the trailing tokens that do not
/// fill a whole chunk are *not* quantized — their KV cache stays in FP16 —
/// so the segmentation exposes them separately as the *remainder*.
///
/// # Example
///
/// ```
/// use cocktail_kvcache::ChunkSegmentation;
///
/// # fn main() -> Result<(), cocktail_kvcache::KvCacheError> {
/// let seg = ChunkSegmentation::new(89 * 32, 32)?;
/// assert_eq!(seg.chunk_count(), 89);
/// assert_eq!(seg.remainder_len(), 0);
/// assert_eq!(seg.chunk_range(1), 32..64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChunkSegmentation {
    context_len: usize,
    chunk_size: usize,
}

impl ChunkSegmentation {
    /// Creates a segmentation of `context_len` tokens into chunks of
    /// `chunk_size`.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::ZeroChunkSize`] if `chunk_size == 0`.
    pub fn new(context_len: usize, chunk_size: usize) -> Result<Self, KvCacheError> {
        if chunk_size == 0 {
            return Err(KvCacheError::ZeroChunkSize);
        }
        Ok(Self {
            context_len,
            chunk_size,
        })
    }

    /// Total number of context tokens covered.
    pub fn context_len(&self) -> usize {
        self.context_len
    }

    /// Tokens per chunk.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Number of *full* chunks (the remainder is excluded).
    pub fn chunk_count(&self) -> usize {
        self.context_len / self.chunk_size
    }

    /// Number of trailing tokens that do not fill a whole chunk and stay in
    /// FP16.
    pub fn remainder_len(&self) -> usize {
        self.context_len % self.chunk_size
    }

    /// Token range `[start, end)` of chunk `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= chunk_count()`.
    pub fn chunk_range(&self, index: usize) -> Range<usize> {
        assert!(index < self.chunk_count(), "chunk index out of range");
        index * self.chunk_size..(index + 1) * self.chunk_size
    }

    /// Token range of the FP16 remainder (possibly empty).
    pub fn remainder_range(&self) -> Range<usize> {
        self.chunk_count() * self.chunk_size..self.context_len
    }

    /// Iterator over all chunk token ranges.
    pub fn iter_ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.chunk_count()).map(move |i| self.chunk_range(i))
    }

    /// The chunk containing token `pos`, or `None` if the token falls in
    /// the remainder or beyond the context.
    pub fn chunk_of_token(&self, pos: usize) -> Option<usize> {
        if pos >= self.chunk_count() * self.chunk_size {
            None
        } else {
            Some(pos / self.chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_chunk_size_is_rejected() {
        assert_eq!(
            ChunkSegmentation::new(10, 0).unwrap_err(),
            KvCacheError::ZeroChunkSize
        );
    }

    #[test]
    fn exact_division_has_no_remainder() {
        let seg = ChunkSegmentation::new(128, 32).unwrap();
        assert_eq!(seg.chunk_count(), 4);
        assert_eq!(seg.remainder_len(), 0);
        assert!(seg.remainder_range().is_empty());
    }

    #[test]
    fn remainder_is_trailing_tokens() {
        let seg = ChunkSegmentation::new(100, 32).unwrap();
        assert_eq!(seg.chunk_count(), 3);
        assert_eq!(seg.remainder_len(), 4);
        assert_eq!(seg.remainder_range(), 96..100);
    }

    #[test]
    fn context_shorter_than_chunk_is_all_remainder() {
        let seg = ChunkSegmentation::new(10, 32).unwrap();
        assert_eq!(seg.chunk_count(), 0);
        assert_eq!(seg.remainder_len(), 10);
        assert_eq!(seg.remainder_range(), 0..10);
    }

    #[test]
    fn chunk_ranges_tile_the_prefix() {
        let seg = ChunkSegmentation::new(70, 16).unwrap();
        let mut covered = 0;
        for (i, range) in seg.iter_ranges().enumerate() {
            assert_eq!(range, seg.chunk_range(i));
            assert_eq!(range.start, covered);
            covered = range.end;
        }
        assert_eq!(covered, seg.chunk_count() * 16);
    }

    #[test]
    fn chunk_of_token_maps_correctly() {
        let seg = ChunkSegmentation::new(100, 32).unwrap();
        assert_eq!(seg.chunk_of_token(0), Some(0));
        assert_eq!(seg.chunk_of_token(31), Some(0));
        assert_eq!(seg.chunk_of_token(32), Some(1));
        assert_eq!(seg.chunk_of_token(95), Some(2));
        assert_eq!(seg.chunk_of_token(96), None); // remainder
        assert_eq!(seg.chunk_of_token(1000), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chunk_range_panics_out_of_range() {
        let seg = ChunkSegmentation::new(64, 32).unwrap();
        seg.chunk_range(2);
    }

    proptest! {
        #[test]
        fn chunks_plus_remainder_cover_context(
            context_len in 0usize..10_000,
            chunk_size in 1usize..512,
        ) {
            let seg = ChunkSegmentation::new(context_len, chunk_size).unwrap();
            let chunk_tokens: usize = seg.iter_ranges().map(|r| r.len()).sum();
            prop_assert_eq!(chunk_tokens + seg.remainder_len(), context_len);
            prop_assert!(seg.remainder_len() < chunk_size);
            for range in seg.iter_ranges() {
                prop_assert_eq!(range.len(), chunk_size);
            }
        }
    }
}
