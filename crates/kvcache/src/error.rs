//! Error type for KV-cache operations.

use std::error::Error;
use std::fmt;

/// Error raised by KV-cache construction, segmentation, permutation or
/// attention operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvCacheError {
    /// The chunk size was zero.
    ZeroChunkSize,
    /// A chunk index was out of range.
    ChunkIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of chunks available.
        len: usize,
    },
    /// The supplied order is not a valid permutation of `0..len`.
    InvalidPermutation(String),
    /// Tensor shapes are inconsistent with the cache configuration.
    ShapeMismatch(String),
    /// A quantization kernel reported an error.
    Quant(String),
}

impl fmt::Display for KvCacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvCacheError::ZeroChunkSize => write!(f, "chunk size must be nonzero"),
            KvCacheError::ChunkIndexOutOfRange { index, len } => {
                write!(f, "chunk index {index} out of range for {len} chunks")
            }
            KvCacheError::InvalidPermutation(detail) => {
                write!(f, "invalid chunk permutation: {detail}")
            }
            KvCacheError::ShapeMismatch(detail) => write!(f, "kv cache shape mismatch: {detail}"),
            KvCacheError::Quant(detail) => write!(f, "kv cache quantization failed: {detail}"),
        }
    }
}

impl Error for KvCacheError {}

impl From<cocktail_quant::QuantError> for KvCacheError {
    fn from(err: cocktail_quant::QuantError) -> Self {
        KvCacheError::Quant(err.to_string())
    }
}

impl From<cocktail_tensor::ShapeError> for KvCacheError {
    fn from(err: cocktail_tensor::ShapeError) -> Self {
        KvCacheError::ShapeMismatch(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(KvCacheError::ZeroChunkSize
            .to_string()
            .contains("chunk size"));
        assert!(KvCacheError::ChunkIndexOutOfRange { index: 5, len: 3 }
            .to_string()
            .contains('5'));
        assert!(KvCacheError::InvalidPermutation("dup".into())
            .to_string()
            .contains("dup"));
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let qe = cocktail_quant::QuantError::ZeroGroupSize;
        let err: KvCacheError = qe.into();
        assert!(matches!(err, KvCacheError::Quant(_)));
        let se = cocktail_tensor::ShapeError::new("matmul", "bad");
        let err: KvCacheError = se.into();
        assert!(matches!(err, KvCacheError::ShapeMismatch(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KvCacheError>();
    }
}
