//! Validated permutations of chunk indices.
//!
//! Module II of the paper reorders KV-cache chunks so that chunks sharing a
//! bitwidth are contiguous in physical memory. A [`ChunkPermutation`] is the
//! validated carrier of such a reordering: it knows the mapping in both
//! directions and can be expanded from chunk level to token level.

use crate::error::KvCacheError;
use crate::segmentation::ChunkSegmentation;
use serde::{Deserialize, Serialize};

/// A permutation of `n` chunk indices.
///
/// `order[new_position] = old_position`: element `i` of the reordered
/// sequence is the chunk that was originally at `order[i]`.
///
/// # Example
///
/// ```
/// use cocktail_kvcache::ChunkPermutation;
///
/// # fn main() -> Result<(), cocktail_kvcache::KvCacheError> {
/// let perm = ChunkPermutation::new(vec![2, 0, 1])?;
/// assert_eq!(perm.apply(&["a", "b", "c"]), vec!["c", "a", "b"]);
/// assert_eq!(perm.inverse().apply(&["c", "a", "b"]), vec!["a", "b", "c"]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkPermutation {
    order: Vec<usize>,
}

impl ChunkPermutation {
    /// Creates a permutation from a `new → old` index mapping.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::InvalidPermutation`] if `order` is not a
    /// permutation of `0..order.len()`.
    pub fn new(order: Vec<usize>) -> Result<Self, KvCacheError> {
        let n = order.len();
        let mut seen = vec![false; n];
        for &idx in &order {
            if idx >= n {
                return Err(KvCacheError::InvalidPermutation(format!(
                    "index {idx} out of range for length {n}"
                )));
            }
            if seen[idx] {
                return Err(KvCacheError::InvalidPermutation(format!(
                    "index {idx} appears more than once"
                )));
            }
            seen[idx] = true;
        }
        Ok(Self { order })
    }

    /// The identity permutation of length `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            order: (0..n).collect(),
        }
    }

    /// Number of chunks the permutation covers.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Returns `true` if this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.order.iter().enumerate().all(|(i, &o)| i == o)
    }

    /// The underlying `new → old` mapping.
    pub fn as_slice(&self) -> &[usize] {
        &self.order
    }

    /// The original index of the chunk now at `new_position`.
    ///
    /// # Panics
    ///
    /// Panics if `new_position >= len()`.
    pub fn old_index(&self, new_position: usize) -> usize {
        self.order[new_position]
    }

    /// The new position of the chunk originally at `old_index`.
    ///
    /// # Panics
    ///
    /// Panics if `old_index >= len()`.
    pub fn new_position(&self, old_index: usize) -> usize {
        self.inverse().order[old_index]
    }

    /// The inverse permutation (`old → new` becomes `new → old`).
    pub fn inverse(&self) -> ChunkPermutation {
        let mut inv = vec![0usize; self.order.len()];
        for (new_pos, &old_pos) in self.order.iter().enumerate() {
            inv[old_pos] = new_pos;
        }
        ChunkPermutation { order: inv }
    }

    /// Applies the permutation to a slice, cloning elements into the new
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `items.len() != len()`.
    pub fn apply<T: Clone>(&self, items: &[T]) -> Vec<T> {
        assert_eq!(items.len(), self.order.len(), "permutation length mismatch");
        self.order.iter().map(|&old| items[old].clone()).collect()
    }

    /// Expands the chunk-level permutation to a token-level index list for
    /// a context described by `segmentation`, appending the (unpermuted)
    /// remainder tokens at the end.
    ///
    /// The result maps *new* token position → *old* token position and can
    /// be fed to `Matrix::gather_rows` or
    /// `cocktail_tensor::ops::permute_mask_columns`.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::InvalidPermutation`] if the permutation
    /// length does not match the segmentation's chunk count.
    pub fn token_order(
        &self,
        segmentation: &ChunkSegmentation,
    ) -> Result<Vec<usize>, KvCacheError> {
        if self.order.len() != segmentation.chunk_count() {
            return Err(KvCacheError::InvalidPermutation(format!(
                "permutation of {} chunks does not match segmentation with {} chunks",
                self.order.len(),
                segmentation.chunk_count()
            )));
        }
        let mut tokens = Vec::with_capacity(segmentation.context_len());
        for &old_chunk in &self.order {
            tokens.extend(segmentation.chunk_range(old_chunk));
        }
        tokens.extend(segmentation.remainder_range());
        Ok(tokens)
    }

    /// Builds the permutation that sorts chunks by the given key while
    /// preserving the original order within equal keys (stable grouping).
    ///
    /// This is exactly the reordering of Figure 3 in the paper when the key
    /// is the chunk's assigned bitwidth.
    pub fn stable_sort_by_key<K: Ord>(keys: &[K]) -> ChunkPermutation {
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by_key(|&i| (&keys[i], i));
        ChunkPermutation { order }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_duplicate_and_out_of_range() {
        assert!(ChunkPermutation::new(vec![0, 0]).is_err());
        assert!(ChunkPermutation::new(vec![0, 2]).is_err());
        assert!(ChunkPermutation::new(vec![1, 0]).is_ok());
    }

    #[test]
    fn identity_is_identity() {
        let p = ChunkPermutation::identity(4);
        assert!(p.is_identity());
        assert_eq!(p.apply(&[10, 20, 30, 40]), vec![10, 20, 30, 40]);
    }

    #[test]
    fn inverse_round_trips() {
        let p = ChunkPermutation::new(vec![3, 1, 0, 2]).unwrap();
        let items = ["a", "b", "c", "d"];
        let reordered = p.apply(&items);
        let restored = p.inverse().apply(&reordered);
        assert_eq!(restored, items.to_vec());
    }

    #[test]
    fn old_and_new_positions_agree() {
        let p = ChunkPermutation::new(vec![2, 0, 1]).unwrap();
        for new_pos in 0..3 {
            let old = p.old_index(new_pos);
            assert_eq!(p.new_position(old), new_pos);
        }
    }

    #[test]
    fn token_order_expands_chunks_and_appends_remainder() {
        let seg = ChunkSegmentation::new(10, 4).unwrap(); // chunks [0..4),[4..8), rem [8..10)
        let p = ChunkPermutation::new(vec![1, 0]).unwrap();
        let tokens = p.token_order(&seg).unwrap();
        assert_eq!(tokens, vec![4, 5, 6, 7, 0, 1, 2, 3, 8, 9]);
    }

    #[test]
    fn token_order_length_mismatch_is_error() {
        let seg = ChunkSegmentation::new(12, 4).unwrap(); // 3 chunks
        let p = ChunkPermutation::new(vec![1, 0]).unwrap();
        assert!(p.token_order(&seg).is_err());
    }

    #[test]
    fn stable_sort_groups_by_key_and_preserves_order() {
        // Keys: bitwidth ranks; equal keys keep original relative order.
        let keys = vec![2, 0, 1, 0, 2, 1];
        let p = ChunkPermutation::stable_sort_by_key(&keys);
        assert_eq!(p.as_slice(), &[1, 3, 2, 5, 0, 4]);
    }

    #[test]
    fn empty_permutation_is_valid() {
        let p = ChunkPermutation::identity(0);
        assert!(p.is_empty());
        assert!(p.is_identity());
        let seg = ChunkSegmentation::new(3, 8).unwrap();
        assert_eq!(p.token_order(&seg).unwrap(), vec![0, 1, 2]);
    }

    proptest! {
        #[test]
        fn inverse_of_inverse_is_original(n in 0usize..40, seed in 0u64..1000) {
            let mut order: Vec<usize> = (0..n).collect();
            // Deterministic shuffle.
            for i in (1..n).rev() {
                let j = ((seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64)) as usize) % (i + 1);
                order.swap(i, j);
            }
            let p = ChunkPermutation::new(order).unwrap();
            prop_assert_eq!(p.inverse().inverse(), p);
        }

        #[test]
        fn apply_then_inverse_apply_is_identity(n in 1usize..30, seed in 0u64..1000) {
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = ((seed.wrapping_mul(2862933555777941757).wrapping_add(i as u64)) as usize) % (i + 1);
                order.swap(i, j);
            }
            let p = ChunkPermutation::new(order).unwrap();
            let items: Vec<usize> = (100..100 + n).collect();
            let restored = p.inverse().apply(&p.apply(&items));
            prop_assert_eq!(restored, items);
        }

        #[test]
        fn stable_sort_output_is_sorted(keys in proptest::collection::vec(0u8..4, 0..50)) {
            let p = ChunkPermutation::stable_sort_by_key(&keys);
            let sorted = p.apply(&keys);
            prop_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
