//! Flat, versioned binary snapshots of shared-prefix KV tries.
//!
//! A snapshot serializes a prefix trie — its node topology, per-node token
//! runs, and the FP32 [`SharedPrefixKv`] blocks each node owns — into one
//! contiguous byte buffer that can be written to disk and restored after a
//! process restart, or shipped to a fresh replica to pre-warm it. The design
//! follows the in-place (de)serialization style of flattened device trees:
//! a fixed little-endian header, one aligned region holding every raw block
//! payload back to back, and a compact node table that references payloads
//! by offset. Reading validates the whole buffer once (magic, version,
//! checksum, bounds, alignment, topological order) and then materializes
//! blocks straight from the region with a single bulk `f32` decode per
//! block — there is no per-row or per-token parsing step.
//!
//! ## Layout
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------------
//!      0     8  magic  b"CKTLSNAP"
//!      8     4  format version (u32, currently 1)
//!     12     4  layers (u32)
//!     16     4  kv_heads (u32)
//!     20     4  reserved (zero)
//!     24     8  config fingerprint (u64, opaque to this crate)
//!     32     8  node count (u64)
//!     40     8  vocab count (u64)
//!     48     8  block region length (u64)
//!     56     8  checksum: FNV-1a over the whole buffer with this field zero
//!     64     …  block region (each f32-LE payload starts 64-byte aligned)
//!      …     …  node table (parent, token run, shape, per-block offsets)
//!      …     …  vocab table (length-prefixed UTF-8 words)
//! ```
//!
//! Nodes are stored parents-first (a node's parent index is always smaller
//! than its own), so a restorer can rebuild the trie in one forward pass.
//! The checksum covers every byte of the file, so any single-byte
//! truncation or corruption — header, payload, node table or vocab — is
//! rejected with a typed error instead of producing a silently wrong trie.
//!
//! The config fingerprint is opaque here: the serving layer derives it from
//! the model/quantization configuration and weight seed, and uses
//! [`TrieSnapshot::fingerprint`] to decide whether a snapshot's KV rows are
//! meaningful for the current engine (mismatch ⇒ clean cold start).

use crate::error::KvCacheError;
use crate::shared::{PrefixKvBlock, SharedPrefixKv};
use cocktail_tensor::Matrix;
use std::fmt;

/// Magic bytes identifying a Cocktail trie snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"CKTLSNAP";

/// Current snapshot format version. Bump this (and regenerate the committed
/// golden fixture in `tests/fixtures/`) whenever the byte layout changes.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// Byte length of the fixed snapshot header.
pub const SNAPSHOT_HEADER_LEN: usize = 64;

/// Alignment (in bytes) of every block payload inside the block region.
pub const SNAPSHOT_BLOCK_ALIGN: usize = 64;

const CHECKSUM_OFFSET: usize = 56;

/// Error raised while decoding a snapshot buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before a complete record could be read.
    Truncated,
    /// The buffer does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The format version is not [`SNAPSHOT_FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The whole-buffer checksum does not match (bit rot, torn write, or a
    /// corrupted download).
    ChecksumMismatch,
    /// The snapshot was written under a different model/quant configuration
    /// than the one now running.
    FingerprintMismatch {
        /// Fingerprint the reader expected.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
    /// The buffer is structurally invalid (bad offsets, misaligned payload,
    /// non-topological parent order, trailing bytes, …).
    Malformed(String),
    /// An I/O error while reading or writing a snapshot file.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a trie snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot format version {v} (reader supports \
                     {SNAPSHOT_FORMAT_VERSION})"
                )
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::FingerprintMismatch { expected, found } => write!(
                f,
                "snapshot config fingerprint {found:#018x} does not match engine {expected:#018x}"
            ),
            SnapshotError::Malformed(detail) => write!(f, "malformed snapshot: {detail}"),
            SnapshotError::Io(detail) => write!(f, "snapshot io error: {detail}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<KvCacheError> for SnapshotError {
    fn from(err: KvCacheError) -> Self {
        SnapshotError::Malformed(err.to_string())
    }
}

/// One trie node as it appears in a snapshot: its parent (by index into the
/// snapshot's parents-first node list), the token run it owns, and the KV
/// rows for exactly that run.
#[derive(Debug, Clone)]
pub struct SnapshotNode {
    /// Index of the parent node in the snapshot's node list, or `None` for
    /// a child of the trie root. Always smaller than this node's own index.
    pub parent: Option<usize>,
    /// The token run this node owns (non-empty).
    pub run: Vec<u32>,
    /// KV rows for exactly `run.len()` tokens.
    pub kv: SharedPrefixKv,
}

/// A decoded (or to-be-encoded) trie snapshot: the KV layout, the opaque
/// config fingerprint, the tokenizer vocabulary in interning order, and the
/// nodes in parents-first order.
#[derive(Debug, Clone)]
pub struct TrieSnapshot {
    /// Opaque model/quant-config fingerprint chosen by the writer.
    pub fingerprint: u64,
    /// Number of model layers each node's KV covers.
    pub layers: usize,
    /// Number of KV heads per layer.
    pub kv_heads: usize,
    /// Tokenizer vocabulary in interning order at snapshot time. Token ids
    /// in node runs are only meaningful under this interning order.
    pub vocab: Vec<String>,
    /// Trie nodes, parents before children.
    pub nodes: Vec<SnapshotNode>,
}

impl TrieSnapshot {
    /// Returns an error unless the snapshot's fingerprint equals
    /// `expected`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::FingerprintMismatch`] on any difference.
    pub fn expect_fingerprint(&self, expected: u64) -> Result<(), SnapshotError> {
        if self.fingerprint != expected {
            return Err(SnapshotError::FingerprintMismatch {
                expected,
                found: self.fingerprint,
            });
        }
        Ok(())
    }

    /// Total FP32 bytes of all node KV blocks.
    pub fn kv_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.kv.storage_bytes()).sum()
    }
}

/// FNV-1a over a byte slice — the checksum primitive. A single flipped byte
/// anywhere in the input always changes the digest (the multiply by an odd
/// prime is invertible mod 2^64), which is exactly the guarantee the
/// corruption tests lean on.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn pad_to_align(buf: &mut Vec<u8>, base: usize) {
    while (buf.len() - base) % SNAPSHOT_BLOCK_ALIGN != 0 {
        buf.push(0);
    }
}

fn push_matrix(region: &mut Vec<u8>, m: &Matrix) -> u64 {
    pad_to_align(region, 0);
    let offset = region.len() as u64;
    for value in m.as_slice() {
        region.extend_from_slice(&value.to_le_bytes());
    }
    offset
}

/// Serializes a [`TrieSnapshot`] into one flat buffer.
///
/// The writer walks the node list once, appending each block's raw `f32`
/// rows (little-endian, 64-byte aligned) to the block region and recording
/// the offsets in the node table; the checksum is computed last over the
/// finished buffer.
///
/// # Panics
///
/// Panics if a node's KV layout disagrees with `snapshot.layers` /
/// `snapshot.kv_heads`, its run is empty, or its KV token count differs
/// from its run length — those are construction bugs in the caller, not
/// recoverable data errors.
pub fn write_snapshot(snapshot: &TrieSnapshot) -> Vec<u8> {
    // Per-node: parent sentinel, run, rows, cols, then layer-major
    // (k_offset, v_offset) pairs into the block region.
    type NodeRecord = (u64, Vec<u32>, u64, u64, Vec<(u64, u64)>);
    let mut region: Vec<u8> = Vec::new();
    let mut node_records: Vec<NodeRecord> = Vec::new();

    for (i, node) in snapshot.nodes.iter().enumerate() {
        assert!(!node.run.is_empty(), "snapshot node {i} has an empty run");
        assert_eq!(
            node.kv.tokens(),
            node.run.len(),
            "snapshot node {i}: kv covers {} tokens but run has {}",
            node.kv.tokens(),
            node.run.len()
        );
        assert_eq!(
            (node.kv.layers(), node.kv.kv_heads()),
            (snapshot.layers, snapshot.kv_heads),
            "snapshot node {i} disagrees with the snapshot KV layout"
        );
        if let Some(parent) = node.parent {
            assert!(parent < i, "snapshot node {i} has parent {parent} >= {i}");
        }
        let cols = node.kv.block(0, 0).k().cols();
        let mut offsets = Vec::with_capacity(snapshot.layers * snapshot.kv_heads);
        for layer in 0..snapshot.layers {
            for head in 0..snapshot.kv_heads {
                let block = node.kv.block(layer, head);
                let k_off = push_matrix(&mut region, block.k());
                let v_off = push_matrix(&mut region, block.v());
                offsets.push((k_off, v_off));
            }
        }
        let parent = node.parent.map_or(u64::MAX, |p| p as u64);
        node_records.push((
            parent,
            node.run.clone(),
            node.run.len() as u64,
            cols as u64,
            offsets,
        ));
    }

    let mut buf = Vec::with_capacity(SNAPSHOT_HEADER_LEN + region.len());
    buf.extend_from_slice(&SNAPSHOT_MAGIC);
    buf.extend_from_slice(&SNAPSHOT_FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(snapshot.layers as u32).to_le_bytes());
    buf.extend_from_slice(&(snapshot.kv_heads as u32).to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes());
    buf.extend_from_slice(&snapshot.fingerprint.to_le_bytes());
    buf.extend_from_slice(&(snapshot.nodes.len() as u64).to_le_bytes());
    buf.extend_from_slice(&(snapshot.vocab.len() as u64).to_le_bytes());
    buf.extend_from_slice(&(region.len() as u64).to_le_bytes());
    buf.extend_from_slice(&0u64.to_le_bytes()); // checksum, patched below
    debug_assert_eq!(buf.len(), SNAPSHOT_HEADER_LEN);
    buf.extend_from_slice(&region);

    for (parent, run, rows, cols, offsets) in &node_records {
        buf.extend_from_slice(&parent.to_le_bytes());
        buf.extend_from_slice(&rows.to_le_bytes());
        for token in run {
            buf.extend_from_slice(&token.to_le_bytes());
        }
        buf.extend_from_slice(&cols.to_le_bytes());
        for (k_off, v_off) in offsets {
            buf.extend_from_slice(&k_off.to_le_bytes());
            buf.extend_from_slice(&v_off.to_le_bytes());
        }
    }

    for word in &snapshot.vocab {
        buf.extend_from_slice(&(word.len() as u64).to_le_bytes());
        buf.extend_from_slice(word.as_bytes());
    }

    let checksum = fnv1a(&buf);
    buf[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&checksum.to_le_bytes());
    buf
}

/// Forward-only reader over the node/vocab tables of a snapshot buffer.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

fn matrix_from_region(
    region: &[u8],
    offset: u64,
    rows: usize,
    cols: usize,
) -> Result<Matrix, SnapshotError> {
    let len = rows
        .checked_mul(cols)
        .and_then(|n| n.checked_mul(4))
        .ok_or_else(|| SnapshotError::Malformed("block size overflows".into()))?;
    let offset = usize::try_from(offset)
        .map_err(|_| SnapshotError::Malformed("block offset overflows".into()))?;
    if offset % SNAPSHOT_BLOCK_ALIGN != 0 {
        return Err(SnapshotError::Malformed(format!(
            "block payload at offset {offset} is not {SNAPSHOT_BLOCK_ALIGN}-byte aligned"
        )));
    }
    let end = offset
        .checked_add(len)
        .filter(|&e| e <= region.len())
        .ok_or_else(|| SnapshotError::Malformed("block payload out of region bounds".into()))?;
    let data: Vec<f32> = region[offset..end]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Matrix::from_vec(rows, cols, data)
        .map_err(|e| SnapshotError::Malformed(format!("block decode: {e}")))
}

/// Validates and decodes a snapshot buffer.
///
/// Validation is strict: magic, version, full-buffer checksum, region
/// bounds, payload alignment, parents-first node order, run/shape
/// consistency and exact buffer consumption are all checked before any
/// node is returned, so a truncated or corrupted buffer can never yield a
/// partially-wrong trie. Fingerprint checking is left to the caller (via
/// [`TrieSnapshot::expect_fingerprint`]) so it can distinguish "wrong
/// config" from "corrupt file".
///
/// # Errors
///
/// Any [`SnapshotError`] variant except `FingerprintMismatch` / `Io`.
pub fn read_snapshot(bytes: &[u8]) -> Result<TrieSnapshot, SnapshotError> {
    if bytes.len() < SNAPSHOT_HEADER_LEN {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut header = Cursor { bytes, pos: 8 };
    let version = header.take_u32()?;
    if version != SNAPSHOT_FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let layers = header.take_u32()? as usize;
    let kv_heads = header.take_u32()? as usize;
    let reserved = header.take_u32()?;
    if reserved != 0 {
        return Err(SnapshotError::Malformed("reserved header field set".into()));
    }
    let fingerprint = header.take_u64()?;
    let node_count = header.take_u64()?;
    let vocab_count = header.take_u64()?;
    let region_len = header.take_u64()? as usize;
    let stored_checksum = header.take_u64()?;
    debug_assert_eq!(header.pos, SNAPSHOT_HEADER_LEN);

    let mut zeroed = bytes.to_vec();
    zeroed[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].fill(0);
    if fnv1a(&zeroed) != stored_checksum {
        return Err(SnapshotError::ChecksumMismatch);
    }

    if layers == 0 || kv_heads == 0 {
        return Err(SnapshotError::Malformed("zero layers or kv heads".into()));
    }
    let region_end = SNAPSHOT_HEADER_LEN
        .checked_add(region_len)
        .filter(|&e| e <= bytes.len())
        .ok_or(SnapshotError::Truncated)?;
    let region = &bytes[SNAPSHOT_HEADER_LEN..region_end];

    let mut cursor = Cursor {
        bytes,
        pos: region_end,
    };
    let mut nodes = Vec::new();
    for i in 0..node_count {
        let parent_raw = cursor.take_u64()?;
        let parent = if parent_raw == u64::MAX {
            None
        } else {
            let p = usize::try_from(parent_raw)
                .ok()
                .filter(|&p| (p as u64) < i)
                .ok_or_else(|| {
                    SnapshotError::Malformed(format!(
                        "node {i} parent {parent_raw} is not an earlier node"
                    ))
                })?;
            Some(p)
        };
        let rows = cursor.take_u64()? as usize;
        if rows == 0 {
            return Err(SnapshotError::Malformed(format!("node {i} has empty run")));
        }
        let mut run = Vec::new();
        for _ in 0..rows {
            run.push(cursor.take_u32()?);
        }
        let cols = cursor.take_u64()? as usize;
        if cols == 0 {
            return Err(SnapshotError::Malformed(format!(
                "node {i} has zero-width blocks"
            )));
        }
        let mut blocks = Vec::new();
        for _ in 0..layers * kv_heads {
            let k_off = cursor.take_u64()?;
            let v_off = cursor.take_u64()?;
            let k = matrix_from_region(region, k_off, rows, cols)?;
            let v = matrix_from_region(region, v_off, rows, cols)?;
            blocks.push(PrefixKvBlock::new(k, v)?);
        }
        let kv = SharedPrefixKv::from_blocks(layers, kv_heads, blocks)?;
        nodes.push(SnapshotNode { parent, run, kv });
    }

    let mut vocab = Vec::new();
    for i in 0..vocab_count {
        let len = cursor.take_u64()? as usize;
        let raw = cursor.take(len)?;
        let word = std::str::from_utf8(raw)
            .map_err(|_| SnapshotError::Malformed(format!("vocab word {i} is not UTF-8")))?;
        vocab.push(word.to_string());
    }

    if cursor.pos != bytes.len() {
        return Err(SnapshotError::Malformed(format!(
            "{} trailing bytes after vocab table",
            bytes.len() - cursor.pos
        )));
    }

    Ok(TrieSnapshot {
        fingerprint,
        layers,
        kv_heads,
        vocab,
        nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic per-index f32 that exercises sign, fractions and a few
    /// special encodings (NaN payloads and negative zero survive the
    /// to/from_le_bytes round trip bit-exactly, which is the property the
    /// format promises).
    fn cell(tag: u64, i: usize) -> f32 {
        match (tag as usize + i) % 7 {
            0 => f32::NAN,
            1 => -0.0,
            2 => f32::INFINITY,
            3 => f32::MIN_POSITIVE / 2.0, // subnormal
            _ => ((tag as f32) + 1.25) * (i as f32 - 3.5),
        }
    }

    fn kv(layers: usize, kv_heads: usize, tokens: usize, cols: usize, tag: u64) -> SharedPrefixKv {
        let blocks = (0..layers * kv_heads)
            .map(|b| {
                let data = |salt: u64| {
                    (0..tokens * cols)
                        .map(|i| cell(tag.wrapping_mul(31).wrapping_add(salt + b as u64), i))
                        .collect::<Vec<f32>>()
                };
                PrefixKvBlock::new(
                    Matrix::from_vec(tokens, cols, data(1)).unwrap(),
                    Matrix::from_vec(tokens, cols, data(2)).unwrap(),
                )
                .unwrap()
            })
            .collect();
        SharedPrefixKv::from_blocks(layers, kv_heads, blocks).unwrap()
    }

    /// Builds a deterministic snapshot with `n` nodes in a chain/branch mix.
    fn sample_snapshot(n: usize, layers: usize, kv_heads: usize, cols: usize) -> TrieSnapshot {
        let nodes = (0..n)
            .map(|i| {
                let parent = if i == 0 { None } else { Some((i - 1) / 2) };
                let tokens = 1 + (i % 3);
                SnapshotNode {
                    parent,
                    run: (0..tokens as u32).map(|t| t + 10 * i as u32).collect(),
                    kv: kv(layers, kv_heads, tokens, cols, i as u64),
                }
            })
            .collect();
        TrieSnapshot {
            fingerprint: 0xfeed_beef_dead_cafe,
            layers,
            kv_heads,
            vocab: vec!["<bos>".into(), "hello".into(), "wörld".into()],
            nodes,
        }
    }

    fn bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    fn assert_snapshots_bit_identical(a: &TrieSnapshot, b: &TrieSnapshot) {
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.layers, b.layers);
        assert_eq!(a.kv_heads, b.kv_heads);
        assert_eq!(a.vocab, b.vocab);
        assert_eq!(a.nodes.len(), b.nodes.len());
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(x.parent, y.parent);
            assert_eq!(x.run, y.run);
            for layer in 0..a.layers {
                for head in 0..a.kv_heads {
                    assert_eq!(
                        bits(x.kv.block(layer, head).k()),
                        bits(y.kv.block(layer, head).k())
                    );
                    assert_eq!(
                        bits(x.kv.block(layer, head).v()),
                        bits(y.kv.block(layer, head).v())
                    );
                }
            }
        }
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let snapshot = sample_snapshot(7, 2, 2, 4);
        let bytes = write_snapshot(&snapshot);
        let restored = read_snapshot(&bytes).unwrap();
        assert_snapshots_bit_identical(&snapshot, &restored);
        restored.expect_fingerprint(snapshot.fingerprint).unwrap();
        assert!(matches!(
            restored.expect_fingerprint(1),
            Err(SnapshotError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn empty_trie_round_trips() {
        let snapshot = TrieSnapshot {
            fingerprint: 7,
            layers: 2,
            kv_heads: 1,
            vocab: vec!["a".into()],
            nodes: vec![],
        };
        let bytes = write_snapshot(&snapshot);
        let restored = read_snapshot(&bytes).unwrap();
        assert_eq!(restored.nodes.len(), 0);
        assert_eq!(restored.vocab, snapshot.vocab);
    }

    #[test]
    fn header_fields_are_where_the_doc_says() {
        let snapshot = sample_snapshot(3, 1, 2, 4);
        let bytes = write_snapshot(&snapshot);
        assert_eq!(&bytes[..8], &SNAPSHOT_MAGIC);
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            SNAPSHOT_FORMAT_VERSION
        );
        assert_eq!(u32::from_le_bytes(bytes[12..16].try_into().unwrap()), 1);
        assert_eq!(u32::from_le_bytes(bytes[16..20].try_into().unwrap()), 2);
        assert_eq!(
            u64::from_le_bytes(bytes[32..40].try_into().unwrap()),
            3 // node count
        );
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let snapshot = sample_snapshot(2, 1, 1, 4);
        let bytes = write_snapshot(&snapshot);

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            read_snapshot(&bad_magic),
            Err(SnapshotError::BadMagic)
        ));

        // A future version must be refused even if the checksum is patched
        // to match, so old readers never mis-parse new layouts.
        let mut future = bytes.clone();
        future[8..12].copy_from_slice(&(SNAPSHOT_FORMAT_VERSION + 1).to_le_bytes());
        let mut zeroed = future.clone();
        zeroed[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].fill(0);
        let sum = fnv1a(&zeroed);
        future[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            read_snapshot(&future),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
    }

    proptest! {
        #[test]
        fn arbitrary_tries_round_trip(
            n in 0usize..9,
            layers in 1usize..3,
            kv_heads in 1usize..3,
            cols in 1usize..5,
        ) {
            let snapshot = sample_snapshot(n, layers, kv_heads, cols);
            let restored = read_snapshot(&write_snapshot(&snapshot)).unwrap();
            assert_snapshots_bit_identical(&snapshot, &restored);
        }

        #[test]
        fn truncations_are_rejected_without_panic(cut in 0usize..10_000) {
            let bytes = write_snapshot(&sample_snapshot(4, 2, 1, 4));
            let cut = cut % bytes.len();
            prop_assert!(read_snapshot(&bytes[..cut]).is_err());
        }

        #[test]
        fn single_byte_corruptions_are_rejected_without_panic(
            pos in 0usize..10_000,
            flip in 1u8..=255,
        ) {
            let mut bytes = write_snapshot(&sample_snapshot(4, 2, 1, 4));
            let pos = pos % bytes.len();
            bytes[pos] ^= flip;
            // The checksum covers every byte, so any flip — header, block
            // payload, node table or vocab — must surface as an error.
            prop_assert!(read_snapshot(&bytes).is_err());
        }
    }
}
