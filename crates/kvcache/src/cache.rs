//! Per-layer and whole-model chunked KV caches, with a generic decode-time
//! attention kernel over mixed-precision chunks.

use crate::chunk::{ChunkStorage, KvChunk};
use crate::error::KvCacheError;
use crate::permutation::ChunkPermutation;
use crate::segmentation::ChunkSegmentation;
use cocktail_quant::{parallel, Bitwidth, QuantAxis};
use cocktail_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Result of a decode-phase attention pass over a chunked cache.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeAttention {
    /// Attention output, shape `(queries, head_dim)`.
    pub output: Matrix,
    /// Attention probabilities in the cache's *physical* token order,
    /// shape `(queries, total_tokens)`.
    pub probabilities: Matrix,
    /// Token count of each physical segment, in order: one entry per chunk,
    /// then the FP16 remainder, then the decode tail.
    pub segment_lengths: Vec<usize>,
}

impl DecodeAttention {
    /// Total attention probability mass falling on each physical segment
    /// (averaged over query rows). Useful for diagnosing which chunks a
    /// query actually reads.
    pub fn segment_mass(&self) -> Vec<f32> {
        let mut mass = vec![0.0f32; self.segment_lengths.len()];
        if self.probabilities.rows() == 0 {
            return mass;
        }
        for r in 0..self.probabilities.rows() {
            let mut col = 0;
            for (seg, &len) in self.segment_lengths.iter().enumerate() {
                let sum: f32 = self.probabilities.row(r)[col..col + len].iter().sum();
                mass[seg] += sum;
                col += len;
            }
        }
        for m in &mut mass {
            *m /= self.probabilities.rows() as f32;
        }
        mass
    }
}

/// The KV cache of a single (layer, KV-head) pair, segmented into context
/// chunks plus an FP16 remainder and an FP16 decode tail.
///
/// The cache always remembers the original [`ChunkSegmentation`] and the
/// permutation currently applied to its chunks, so the logical token order
/// can be reconstructed at any time.
///
/// # Example
///
/// ```
/// use cocktail_kvcache::{ChunkSegmentation, ChunkedLayerCache};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let k = cocktail_tensor::rng::gaussian_matrix(64, 8, 1.0, 1);
/// let v = cocktail_tensor::rng::gaussian_matrix(64, 8, 1.0, 2);
/// let seg = ChunkSegmentation::new(64, 16)?;
/// let cache = ChunkedLayerCache::from_prefill(&k, &v, &seg)?;
/// assert_eq!(cache.chunk_count(), 4);
/// assert_eq!(cache.total_tokens(), 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkedLayerCache {
    head_dim: usize,
    segmentation: ChunkSegmentation,
    chunks: Vec<KvChunk>,
    permutation: ChunkPermutation,
    remainder_k: Matrix,
    remainder_v: Matrix,
    tail_k: Matrix,
    tail_v: Matrix,
}

impl ChunkedLayerCache {
    /// Builds the cache from the prefill-phase key/value tensors of the
    /// context (`(context_len, head_dim)` each), splitting them according
    /// to `segmentation`. All chunks start in FP16.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::ShapeMismatch`] if `k` and `v` differ in
    /// shape or do not cover `segmentation.context_len()` tokens.
    pub fn from_prefill(
        k: &Matrix,
        v: &Matrix,
        segmentation: &ChunkSegmentation,
    ) -> Result<Self, KvCacheError> {
        if k.shape() != v.shape() {
            return Err(KvCacheError::ShapeMismatch(format!(
                "k {:?} vs v {:?}",
                k.shape(),
                v.shape()
            )));
        }
        if k.rows() != segmentation.context_len() {
            return Err(KvCacheError::ShapeMismatch(format!(
                "prefill has {} tokens but segmentation covers {}",
                k.rows(),
                segmentation.context_len()
            )));
        }
        let head_dim = k.cols();
        let mut chunks = Vec::with_capacity(segmentation.chunk_count());
        for (i, range) in segmentation.iter_ranges().enumerate() {
            let kc = k.slice_rows(range.start, range.end);
            let vc = v.slice_rows(range.start, range.end);
            chunks.push(KvChunk::new_fp16(i, &kc, &vc)?);
        }
        let rem = segmentation.remainder_range();
        let mut remainder_k = k.slice_rows(rem.start, rem.end);
        let mut remainder_v = v.slice_rows(rem.start, rem.end);
        remainder_k.round_to_f16();
        remainder_v.round_to_f16();
        Ok(Self {
            head_dim,
            segmentation: *segmentation,
            permutation: ChunkPermutation::identity(chunks.len()),
            chunks,
            remainder_k,
            remainder_v,
            tail_k: Matrix::zeros(0, head_dim),
            tail_v: Matrix::zeros(0, head_dim),
        })
    }

    /// Head dimension of the cached tensors.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// The segmentation the cache was built with.
    pub fn segmentation(&self) -> &ChunkSegmentation {
        &self.segmentation
    }

    /// Number of context chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The chunks in their current *physical* order.
    pub fn chunks(&self) -> &[KvChunk] {
        &self.chunks
    }

    /// The permutation currently applied to the chunks
    /// (`physical position → logical index`).
    pub fn permutation(&self) -> &ChunkPermutation {
        &self.permutation
    }

    /// Number of decode-phase tokens appended so far.
    pub fn tail_len(&self) -> usize {
        self.tail_k.rows()
    }

    /// Number of FP16 remainder tokens (context tail that did not fill a
    /// chunk).
    pub fn remainder_len(&self) -> usize {
        self.remainder_k.rows()
    }

    /// Total number of cached tokens (chunks + remainder + decode tail).
    pub fn total_tokens(&self) -> usize {
        self.segmentation.chunk_count() * self.segmentation.chunk_size()
            + self.remainder_len()
            + self.tail_len()
    }

    /// Quantizes chunk `physical_index` (in current physical order) to the
    /// given bitwidth with per-token groups.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::ChunkIndexOutOfRange`] for a bad index or a
    /// quantization error from the kernel.
    pub fn quantize_chunk(
        &mut self,
        physical_index: usize,
        bitwidth: Bitwidth,
        group_size: usize,
    ) -> Result<(), KvCacheError> {
        self.quantize_chunk_with_axis(
            physical_index,
            bitwidth,
            QuantAxis::PerToken,
            QuantAxis::PerToken,
            group_size,
        )
    }

    /// Quantizes chunk `physical_index` with explicit key/value grouping
    /// axes (used by the KIVI baseline).
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::ChunkIndexOutOfRange`] for a bad index or a
    /// quantization error from the kernel.
    pub fn quantize_chunk_with_axis(
        &mut self,
        physical_index: usize,
        bitwidth: Bitwidth,
        key_axis: QuantAxis,
        value_axis: QuantAxis,
        group_size: usize,
    ) -> Result<(), KvCacheError> {
        let len = self.chunks.len();
        if physical_index >= len {
            return Err(KvCacheError::ChunkIndexOutOfRange {
                index: physical_index,
                len,
            });
        }
        let chunk = self.chunks[physical_index].clone();
        self.chunks[physical_index] =
            chunk.quantized_with_axis(bitwidth, key_axis, value_axis, group_size)?;
        Ok(())
    }

    /// Quantizes chunk `physical_index` while keeping the listed token rows
    /// (indices within the chunk) at FP16 in a sparse outlier patch — the
    /// KVQuant-style dense-and-sparse decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::ChunkIndexOutOfRange`] for a bad index or a
    /// quantization error from the kernel.
    pub fn quantize_chunk_with_outliers(
        &mut self,
        physical_index: usize,
        bitwidth: Bitwidth,
        group_size: usize,
        outlier_rows: &[usize],
    ) -> Result<(), KvCacheError> {
        let len = self.chunks.len();
        if physical_index >= len {
            return Err(KvCacheError::ChunkIndexOutOfRange {
                index: physical_index,
                len,
            });
        }
        let chunk = self.chunks[physical_index].clone();
        self.chunks[physical_index] =
            chunk.quantized_with_outliers(bitwidth, group_size, outlier_rows)?;
        Ok(())
    }

    /// Quantizes every chunk to the same bitwidth (uniform baselines).
    ///
    /// # Errors
    ///
    /// Propagates the first quantization error encountered.
    pub fn quantize_all(
        &mut self,
        bitwidth: Bitwidth,
        key_axis: QuantAxis,
        value_axis: QuantAxis,
        group_size: usize,
    ) -> Result<(), KvCacheError> {
        for i in 0..self.chunks.len() {
            self.quantize_chunk_with_axis(i, bitwidth, key_axis, value_axis, group_size)?;
        }
        Ok(())
    }

    /// Reorders the chunks according to `permutation`
    /// (`new physical position → current physical position`).
    ///
    /// The stored permutation is updated so it always maps
    /// *current physical position → logical chunk index*.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::InvalidPermutation`] if the length does not
    /// match the chunk count.
    pub fn reorder(&mut self, permutation: &ChunkPermutation) -> Result<(), KvCacheError> {
        if permutation.len() != self.chunks.len() {
            return Err(KvCacheError::InvalidPermutation(format!(
                "permutation of {} chunks applied to cache with {}",
                permutation.len(),
                self.chunks.len()
            )));
        }
        self.chunks = permutation.apply(&self.chunks);
        let combined: Vec<usize> = (0..self.chunks.len())
            .map(|new_pos| self.chunks[new_pos].logical_index())
            .collect();
        self.permutation =
            ChunkPermutation::new(combined).expect("composition of permutations is a permutation");
        Ok(())
    }

    /// Restores the original (logical) chunk order.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for symmetry with
    /// [`ChunkedLayerCache::reorder`].
    pub fn restore_logical_order(&mut self) -> Result<(), KvCacheError> {
        let inverse = self.permutation.inverse();
        self.reorder(&inverse)
    }

    /// Appends the key/value vectors of one decode-phase output token. The
    /// paper keeps these in FP16.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::ShapeMismatch`] if the vectors do not have
    /// `head_dim` elements.
    pub fn append_decode_token(
        &mut self,
        k_row: &[f32],
        v_row: &[f32],
    ) -> Result<(), KvCacheError> {
        if k_row.len() != self.head_dim || v_row.len() != self.head_dim {
            return Err(KvCacheError::ShapeMismatch(format!(
                "decode token dim {} / {} vs head_dim {}",
                k_row.len(),
                v_row.len(),
                self.head_dim
            )));
        }
        let mut k_round = k_row.to_vec();
        let mut v_round = v_row.to_vec();
        cocktail_tensor::ops::round_to_f16(&mut k_round);
        cocktail_tensor::ops::round_to_f16(&mut v_round);
        let k_new = Matrix::from_vec(1, self.head_dim, k_round).expect("row has head_dim elements");
        let v_new = Matrix::from_vec(1, self.head_dim, v_round).expect("row has head_dim elements");
        self.tail_k = Matrix::concat_rows(&[&self.tail_k, &k_new])?;
        self.tail_v = Matrix::concat_rows(&[&self.tail_v, &v_new])?;
        Ok(())
    }

    /// Exact storage footprint of the cache in bytes.
    pub fn storage_bytes(&self) -> usize {
        let chunk_bytes: usize = self.chunks.iter().map(KvChunk::storage_bytes).sum();
        let fp16_bytes = (self.remainder_k.len()
            + self.remainder_v.len()
            + self.tail_k.len()
            + self.tail_v.len())
            * 2;
        chunk_bytes + fp16_bytes
    }

    /// Storage footprint if every token were kept in FP16.
    pub fn fp16_reference_bytes(&self) -> usize {
        2 * self.total_tokens() * self.head_dim * 2
    }

    /// Concatenated (dequantized) key matrix in the current physical order:
    /// chunks, then remainder, then decode tail.
    pub fn full_key_matrix(&self) -> Matrix {
        let chunk_ks: Vec<Matrix> = self.chunks.iter().map(KvChunk::key_matrix).collect();
        let mut parts: Vec<&Matrix> = chunk_ks.iter().collect();
        parts.push(&self.remainder_k);
        parts.push(&self.tail_k);
        Matrix::concat_rows(&parts).expect("head dims are identical")
    }

    /// Concatenated (dequantized) value matrix in the current physical
    /// order.
    pub fn full_value_matrix(&self) -> Matrix {
        let chunk_vs: Vec<Matrix> = self.chunks.iter().map(KvChunk::value_matrix).collect();
        let mut parts: Vec<&Matrix> = chunk_vs.iter().collect();
        parts.push(&self.remainder_v);
        parts.push(&self.tail_v);
        Matrix::concat_rows(&parts).expect("head dims are identical")
    }

    /// Decode-phase attention of `queries` (shape `(m, head_dim)`) over the
    /// whole cache, chunk by chunk, using the fused quantized GEMM kernels
    /// for quantized chunks.
    ///
    /// Scores are scaled by `scale` (usually `1/sqrt(head_dim)`) before the
    /// softmax. No causal mask is applied: during decode every cached token
    /// is visible to the query, exactly as in Algorithm 1 of the paper.
    ///
    /// # Errors
    ///
    /// Returns an error if the query head dimension does not match.
    pub fn attend(&self, queries: &Matrix, scale: f32) -> Result<DecodeAttention, KvCacheError> {
        if queries.cols() != self.head_dim {
            return Err(KvCacheError::ShapeMismatch(format!(
                "query dim {} vs head_dim {}",
                queries.cols(),
                self.head_dim
            )));
        }
        // 1. Per-segment attention scores, concatenated along the token axis.
        let mut score_blocks: Vec<Matrix> = Vec::with_capacity(self.chunks.len() + 2);
        let mut segment_lengths = Vec::with_capacity(self.chunks.len() + 2);
        for chunk in &self.chunks {
            let scores = if chunk.outlier_count() > 0 {
                // Outlier-patched chunks (KVQuant-style) need the patched
                // dense keys, so take the dense path.
                queries.matmul_transposed(&chunk.key_matrix())?
            } else {
                match chunk.storage() {
                    ChunkStorage::Fp16 { k, .. } => queries.matmul_transposed(k)?,
                    ChunkStorage::Quantized { k, .. } => {
                        // Threshold-gated: single-token decode against a
                        // normal chunk stays on the scalar fused kernel;
                        // only long-context batched products fork tiles.
                        parallel::fp_matmul_quant_transposed(queries, k)?
                    }
                }
            };
            segment_lengths.push(chunk.token_len());
            score_blocks.push(scores);
        }
        score_blocks.push(queries.matmul_transposed(&self.remainder_k)?);
        segment_lengths.push(self.remainder_len());
        score_blocks.push(queries.matmul_transposed(&self.tail_k)?);
        segment_lengths.push(self.tail_len());

        let refs: Vec<&Matrix> = score_blocks.iter().collect();
        let mut scores = Matrix::concat_cols(&refs)?;
        scores.scale_in_place(scale);
        scores.softmax_rows();

        // 2. Split the probabilities back into segments and accumulate the
        //    weighted values.
        let mut output = Matrix::zeros(queries.rows(), self.head_dim);
        let mut col = 0usize;
        for (i, chunk) in self.chunks.iter().enumerate() {
            let len = segment_lengths[i];
            if len == 0 {
                continue;
            }
            let probs = scores.slice_cols(col, col + len);
            let partial = if chunk.outlier_count() > 0 {
                probs.matmul(&chunk.value_matrix())?
            } else {
                match chunk.storage() {
                    ChunkStorage::Fp16 { v, .. } => probs.matmul(v)?,
                    ChunkStorage::Quantized { v, .. } => parallel::fp_matmul_quant(&probs, v)?,
                }
            };
            output.add_assign(&partial)?;
            col += len;
        }
        if self.remainder_len() > 0 {
            let probs = scores.slice_cols(col, col + self.remainder_len());
            output.add_assign(&probs.matmul(&self.remainder_v)?)?;
            col += self.remainder_len();
        }
        if self.tail_len() > 0 {
            let probs = scores.slice_cols(col, col + self.tail_len());
            output.add_assign(&probs.matmul(&self.tail_v)?)?;
        }

        Ok(DecodeAttention {
            output,
            probabilities: scores,
            segment_lengths,
        })
    }
}

/// The chunked KV cache of an entire model: one [`ChunkedLayerCache`] per
/// (layer, KV-head) pair.
///
/// # Example
///
/// ```
/// use cocktail_kvcache::{ChunkSegmentation, ChunkedKvCache, ChunkedLayerCache};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let seg = ChunkSegmentation::new(32, 16)?;
/// let mut cache = ChunkedKvCache::new(2, 1);
/// for layer in 0..2 {
///     let k = cocktail_tensor::rng::gaussian_matrix(32, 8, 1.0, layer as u64);
///     let v = cocktail_tensor::rng::gaussian_matrix(32, 8, 1.0, 100 + layer as u64);
///     cache.set(layer, 0, ChunkedLayerCache::from_prefill(&k, &v, &seg)?);
/// }
/// assert!(cache.total_storage_bytes() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkedKvCache {
    layers: usize,
    kv_heads: usize,
    entries: Vec<Option<ChunkedLayerCache>>,
}

impl ChunkedKvCache {
    /// Creates an empty cache with slots for `layers × kv_heads` entries.
    pub fn new(layers: usize, kv_heads: usize) -> Self {
        Self {
            layers,
            kv_heads,
            entries: vec![None; layers * kv_heads],
        }
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Number of KV heads per layer.
    pub fn kv_heads(&self) -> usize {
        self.kv_heads
    }

    fn index(&self, layer: usize, head: usize) -> usize {
        assert!(
            layer < self.layers && head < self.kv_heads,
            "cache slot out of range"
        );
        layer * self.kv_heads + head
    }

    /// Stores the cache for one (layer, head) slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot indices are out of range.
    pub fn set(&mut self, layer: usize, head: usize, cache: ChunkedLayerCache) {
        let idx = self.index(layer, head);
        self.entries[idx] = Some(cache);
    }

    /// Returns the cache for one (layer, head) slot, if populated.
    ///
    /// # Panics
    ///
    /// Panics if the slot indices are out of range.
    pub fn get(&self, layer: usize, head: usize) -> Option<&ChunkedLayerCache> {
        self.entries[self.index(layer, head)].as_ref()
    }

    /// Mutable access to one (layer, head) slot, if populated.
    ///
    /// # Panics
    ///
    /// Panics if the slot indices are out of range.
    pub fn get_mut(&mut self, layer: usize, head: usize) -> Option<&mut ChunkedLayerCache> {
        let idx = self.index(layer, head);
        self.entries[idx].as_mut()
    }

    /// Iterator over all populated slots as `(layer, head, cache)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &ChunkedLayerCache)> {
        self.entries.iter().enumerate().filter_map(move |(i, e)| {
            e.as_ref()
                .map(|c| (i / self.kv_heads, i % self.kv_heads, c))
        })
    }

    /// Applies a closure to every populated slot.
    ///
    /// # Errors
    ///
    /// Propagates the first error returned by the closure.
    pub fn try_for_each_mut<F>(&mut self, mut f: F) -> Result<(), KvCacheError>
    where
        F: FnMut(usize, usize, &mut ChunkedLayerCache) -> Result<(), KvCacheError>,
    {
        let kv_heads = self.kv_heads;
        for (i, entry) in self.entries.iter_mut().enumerate() {
            if let Some(cache) = entry.as_mut() {
                f(i / kv_heads, i % kv_heads, cache)?;
            }
        }
        Ok(())
    }

    /// Total storage footprint over all populated slots, in bytes.
    pub fn total_storage_bytes(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .map(ChunkedLayerCache::storage_bytes)
            .sum()
    }

    /// Total FP16 reference footprint over all populated slots, in bytes.
    pub fn total_fp16_reference_bytes(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .map(ChunkedLayerCache::fp16_reference_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_tensor::rng;

    fn build_cache(tokens: usize, dim: usize, chunk: usize, seed: u64) -> ChunkedLayerCache {
        let k = rng::gaussian_matrix(tokens, dim, 1.0, seed);
        let v = rng::gaussian_matrix(tokens, dim, 1.0, seed + 1);
        let seg = ChunkSegmentation::new(tokens, chunk).unwrap();
        ChunkedLayerCache::from_prefill(&k, &v, &seg).unwrap()
    }

    #[test]
    fn from_prefill_splits_into_chunks_and_remainder() {
        let cache = build_cache(70, 8, 16, 1);
        assert_eq!(cache.chunk_count(), 4);
        assert_eq!(cache.remainder_len(), 6);
        assert_eq!(cache.total_tokens(), 70);
        assert_eq!(cache.tail_len(), 0);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let k = Matrix::zeros(10, 8);
        let v = Matrix::zeros(10, 9);
        let seg = ChunkSegmentation::new(10, 4).unwrap();
        assert!(ChunkedLayerCache::from_prefill(&k, &v, &seg).is_err());
        let v2 = Matrix::zeros(12, 8);
        assert!(ChunkedLayerCache::from_prefill(&k, &v2, &seg).is_err());
    }

    #[test]
    fn quantize_chunk_reduces_storage() {
        let mut cache = build_cache(64, 16, 16, 2);
        let before = cache.storage_bytes();
        cache.quantize_chunk(0, Bitwidth::Int2, 16).unwrap();
        cache.quantize_chunk(1, Bitwidth::Int4, 16).unwrap();
        assert!(cache.storage_bytes() < before);
        assert_eq!(cache.chunks()[0].bitwidth(), Bitwidth::Int2);
        assert_eq!(cache.chunks()[1].bitwidth(), Bitwidth::Int4);
        assert_eq!(cache.chunks()[2].bitwidth(), Bitwidth::Fp16);
    }

    #[test]
    fn quantize_and_attend_are_bit_identical_across_kernel_thread_counts() {
        // A context large enough that the dispatcher's threshold trips
        // (512-token chunks × 128 dims), quantized and attended under
        // kernel-thread overrides of 1 (scalar) and 4 (tiled): every bit
        // of storage and attention output must match.
        let build = || {
            let mut cache = build_cache(1100, 128, 512, 21);
            cache.quantize_chunk(0, Bitwidth::Int4, 32).unwrap();
            cache.quantize_chunk(1, Bitwidth::Int2, 32).unwrap();
            cache
        };
        let q = rng::gaussian_matrix(4, 128, 1.0, 77);
        let scale = 1.0 / (128f32).sqrt();

        cocktail_quant::parallel::set_kernel_thread_override(Some(1));
        let scalar_cache = build();
        let scalar_out = scalar_cache.attend(&q, scale).unwrap();

        cocktail_quant::parallel::set_kernel_thread_override(Some(4));
        let tiled_cache = build();
        let tiled_out = tiled_cache.attend(&q, scale).unwrap();
        cocktail_quant::parallel::set_kernel_thread_override(None);

        assert_eq!(scalar_cache.storage_bytes(), tiled_cache.storage_bytes());
        assert_eq!(
            scalar_out.output.as_slice(),
            tiled_out.output.as_slice(),
            "attention outputs must be bit-identical across thread counts"
        );
        assert_eq!(
            scalar_out.probabilities.as_slice(),
            tiled_out.probabilities.as_slice()
        );
    }

    #[test]
    fn quantize_chunk_out_of_range_is_error() {
        let mut cache = build_cache(32, 8, 16, 3);
        assert!(matches!(
            cache.quantize_chunk(5, Bitwidth::Int4, 16),
            Err(KvCacheError::ChunkIndexOutOfRange { index: 5, len: 2 })
        ));
    }

    #[test]
    fn reorder_tracks_logical_indices() {
        let mut cache = build_cache(64, 8, 16, 4);
        let perm = ChunkPermutation::new(vec![2, 0, 3, 1]).unwrap();
        cache.reorder(&perm).unwrap();
        let logical: Vec<usize> = cache.chunks().iter().map(|c| c.logical_index()).collect();
        assert_eq!(logical, vec![2, 0, 3, 1]);
        cache.restore_logical_order().unwrap();
        let logical: Vec<usize> = cache.chunks().iter().map(|c| c.logical_index()).collect();
        assert_eq!(logical, vec![0, 1, 2, 3]);
        assert!(cache.permutation().is_identity());
    }

    #[test]
    fn double_reorder_composes() {
        let mut cache = build_cache(48, 8, 16, 5);
        cache
            .reorder(&ChunkPermutation::new(vec![1, 2, 0]).unwrap())
            .unwrap();
        cache
            .reorder(&ChunkPermutation::new(vec![2, 1, 0]).unwrap())
            .unwrap();
        let logical: Vec<usize> = cache.chunks().iter().map(|c| c.logical_index()).collect();
        // First reorder: [1,2,0]; second picks physical [2,1,0] of that = [0,2,1].
        assert_eq!(logical, vec![0, 2, 1]);
        cache.restore_logical_order().unwrap();
        let logical: Vec<usize> = cache.chunks().iter().map(|c| c.logical_index()).collect();
        assert_eq!(logical, vec![0, 1, 2]);
    }

    #[test]
    fn append_decode_token_grows_tail() {
        let mut cache = build_cache(32, 4, 16, 6);
        cache
            .append_decode_token(&[1.0, 2.0, 3.0, 4.0], &[0.5, 0.5, 0.5, 0.5])
            .unwrap();
        cache
            .append_decode_token(&[0.0, 0.0, 1.0, 0.0], &[1.0, 0.0, 0.0, 0.0])
            .unwrap();
        assert_eq!(cache.tail_len(), 2);
        assert_eq!(cache.total_tokens(), 34);
        assert!(cache.append_decode_token(&[1.0, 2.0], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn attend_output_matches_dense_reference() {
        let cache = build_cache(48, 16, 16, 7);
        let q = rng::gaussian_matrix(1, 16, 1.0, 99);
        let scale = 1.0 / (16f32).sqrt();
        let result = cache.attend(&q, scale).unwrap();

        // Dense reference: softmax(Q Kᵀ · scale) V over the full FP16 cache.
        let k = cache.full_key_matrix();
        let v = cache.full_value_matrix();
        let mut scores = q.matmul_transposed(&k).unwrap();
        scores.scale_in_place(scale);
        scores.softmax_rows();
        let reference = scores.matmul(&v).unwrap();
        assert!(result.output.max_abs_diff(&reference).unwrap() < 1e-4);
    }

    #[test]
    fn attend_is_invariant_to_chunk_reordering_when_fp16() {
        let mut cache = build_cache(64, 8, 16, 8);
        let q = rng::gaussian_matrix(1, 8, 1.0, 55);
        let scale = 1.0 / (8f32).sqrt();
        let before = cache.attend(&q, scale).unwrap();
        cache
            .reorder(&ChunkPermutation::new(vec![3, 1, 0, 2]).unwrap())
            .unwrap();
        let after = cache.attend(&q, scale).unwrap();
        assert!(before.output.max_abs_diff(&after.output).unwrap() < 1e-5);
    }

    #[test]
    fn attend_with_quantized_chunks_stays_close_to_fp16() {
        let mut cache = build_cache(64, 16, 16, 9);
        let q = rng::gaussian_matrix(1, 16, 1.0, 77);
        let scale = 1.0 / 4.0;
        let fp16 = cache.attend(&q, scale).unwrap();
        cache
            .quantize_all(Bitwidth::Int8, QuantAxis::PerToken, QuantAxis::PerToken, 16)
            .unwrap();
        let quantized = cache.attend(&q, scale).unwrap();
        let err = fp16.output.max_abs_diff(&quantized.output).unwrap();
        assert!(err < 0.05, "int8 attention error too large: {err}");
    }

    #[test]
    fn attend_rejects_wrong_query_dim() {
        let cache = build_cache(32, 8, 16, 10);
        let q = Matrix::zeros(1, 4);
        assert!(cache.attend(&q, 1.0).is_err());
    }

    #[test]
    fn segment_mass_sums_to_one() {
        let cache = build_cache(50, 8, 16, 11);
        let q = rng::gaussian_matrix(1, 8, 1.0, 5);
        let result = cache.attend(&q, 0.35).unwrap();
        let mass: f32 = result.segment_mass().iter().sum();
        assert!((mass - 1.0).abs() < 1e-4);
        assert_eq!(result.segment_lengths.len(), cache.chunk_count() + 2);
    }

    #[test]
    fn whole_model_cache_slots() {
        let seg = ChunkSegmentation::new(32, 16).unwrap();
        let mut cache = ChunkedKvCache::new(2, 2);
        assert_eq!(cache.layers(), 2);
        assert_eq!(cache.kv_heads(), 2);
        assert!(cache.get(1, 1).is_none());
        for layer in 0..2 {
            for head in 0..2 {
                let k = rng::gaussian_matrix(32, 4, 1.0, (layer * 2 + head) as u64);
                let v = rng::gaussian_matrix(32, 4, 1.0, 50 + (layer * 2 + head) as u64);
                cache.set(
                    layer,
                    head,
                    ChunkedLayerCache::from_prefill(&k, &v, &seg).unwrap(),
                );
            }
        }
        assert_eq!(cache.iter().count(), 4);
        assert_eq!(
            cache.total_storage_bytes(),
            cache.total_fp16_reference_bytes()
        );
        cache
            .try_for_each_mut(|_, _, layer| layer.quantize_chunk(0, Bitwidth::Int2, 16))
            .unwrap();
        assert!(cache.total_storage_bytes() < cache.total_fp16_reference_bytes());
    }

    #[test]
    fn storage_accounting_includes_tail_and_remainder() {
        let mut cache = build_cache(20, 4, 16, 12); // 1 chunk of 16, remainder 4
        let base = cache.storage_bytes();
        assert_eq!(base, 2 * 20 * 4 * 2);
        cache.append_decode_token(&[0.0; 4], &[0.0; 4]).unwrap();
        assert_eq!(cache.storage_bytes(), base + 2 * 4 * 2);
    }
}
