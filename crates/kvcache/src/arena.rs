//! Physical memory layout of KV-cache chunks.
//!
//! The paper's Module II argues that *interleaving* chunks of different
//! bitwidths in physical memory hurts the hardware: reads of a given
//! precision group straddle extra cache lines, alignment is lost and the
//! dequantization kernel must be re-launched at every precision switch.
//! [`MemoryLayout`] lays chunks out in a flat byte arena in their physical
//! order and reports exactly those quantities, which the accelerator model
//! in `cocktail-hwsim` converts into latency penalties.

use crate::chunk::KvChunk;
use cocktail_quant::Bitwidth;
use serde::{Deserialize, Serialize};

/// One contiguous region of the arena belonging to a single chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayoutRegion {
    /// Byte offset of the region within the arena.
    pub offset: usize,
    /// Size of the region in bytes.
    pub bytes: usize,
    /// Storage precision of the chunk occupying the region.
    pub bitwidth: Bitwidth,
}

impl LayoutRegion {
    /// Number of cache lines of size `line_size` the region touches.
    pub fn cache_lines(&self, line_size: usize) -> usize {
        if self.bytes == 0 || line_size == 0 {
            return 0;
        }
        let first = self.offset / line_size;
        let last = (self.offset + self.bytes - 1) / line_size;
        last - first + 1
    }
}

/// Aggregate statistics of a layout, consumed by the hardware model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayoutStats {
    /// Total payload bytes across all regions.
    pub total_bytes: usize,
    /// Number of regions (chunks).
    pub region_count: usize,
    /// Number of adjacent region pairs whose bitwidths differ — each one is
    /// a kernel switch plus an alignment break during the fused attention
    /// pass.
    pub bitwidth_transitions: usize,
    /// Cache lines touched when every region is read as its own transfer.
    pub cache_lines_touched: usize,
    /// Cache lines that would be touched by one ideally packed contiguous
    /// read of the same total size.
    pub cache_lines_ideal: usize,
}

impl LayoutStats {
    /// Extra cache lines read relative to the ideal contiguous layout.
    pub fn wasted_cache_lines(&self) -> usize {
        self.cache_lines_touched
            .saturating_sub(self.cache_lines_ideal)
    }

    /// Fraction of read traffic that is overhead (0.0 for a perfect layout).
    pub fn read_amplification(&self) -> f64 {
        if self.cache_lines_ideal == 0 {
            return 0.0;
        }
        self.cache_lines_touched as f64 / self.cache_lines_ideal as f64 - 1.0
    }
}

/// A flat byte arena holding KV-cache chunk payloads in physical order.
///
/// # Example
///
/// ```
/// use cocktail_kvcache::{KvChunk, MemoryLayout};
/// use cocktail_quant::Bitwidth;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let k = cocktail_tensor::rng::gaussian_matrix(32, 16, 1.0, 1);
/// let v = cocktail_tensor::rng::gaussian_matrix(32, 16, 1.0, 2);
/// let chunks = vec![
///     KvChunk::new_fp16(0, &k, &v)?.quantized(Bitwidth::Int2, 32)?,
///     KvChunk::new_fp16(1, &k, &v)?,
///     KvChunk::new_fp16(2, &k, &v)?.quantized(Bitwidth::Int2, 32)?,
/// ];
/// let interleaved = MemoryLayout::from_chunks(&chunks, 128);
/// assert_eq!(interleaved.stats().bitwidth_transitions, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryLayout {
    line_size: usize,
    regions: Vec<LayoutRegion>,
}

impl MemoryLayout {
    /// Lays out the given chunks sequentially (in the order supplied) in a
    /// byte arena with the given cache-line size.
    ///
    /// Each chunk occupies exactly [`KvChunk::storage_bytes`] bytes; no
    /// padding is inserted, which is what makes interleaved mixed-precision
    /// layouts lose alignment.
    pub fn from_chunks(chunks: &[KvChunk], line_size: usize) -> Self {
        let mut regions = Vec::with_capacity(chunks.len());
        let mut offset = 0usize;
        for chunk in chunks {
            let bytes = chunk.storage_bytes();
            regions.push(LayoutRegion {
                offset,
                bytes,
                bitwidth: chunk.bitwidth(),
            });
            offset += bytes;
        }
        Self { line_size, regions }
    }

    /// Lays out raw `(bitwidth, bytes)` pairs; used by the analytic hardware
    /// model when no concrete chunks exist (e.g. full-size model sheets).
    pub fn from_sizes(sizes: &[(Bitwidth, usize)], line_size: usize) -> Self {
        let mut regions = Vec::with_capacity(sizes.len());
        let mut offset = 0usize;
        for &(bitwidth, bytes) in sizes {
            regions.push(LayoutRegion {
                offset,
                bytes,
                bitwidth,
            });
            offset += bytes;
        }
        Self { line_size, regions }
    }

    /// Cache-line size the layout was computed against.
    pub fn line_size(&self) -> usize {
        self.line_size
    }

    /// The regions in physical order.
    pub fn regions(&self) -> &[LayoutRegion] {
        &self.regions
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> usize {
        self.regions.iter().map(|r| r.bytes).sum()
    }

    /// Computes the aggregate statistics of this layout.
    pub fn stats(&self) -> LayoutStats {
        let total_bytes = self.total_bytes();
        let bitwidth_transitions = self
            .regions
            .windows(2)
            .filter(|w| w[0].bitwidth != w[1].bitwidth)
            .count();
        let cache_lines_touched = self
            .regions
            .iter()
            .map(|r| r.cache_lines(self.line_size))
            .sum();
        let cache_lines_ideal = if self.line_size == 0 {
            0
        } else {
            total_bytes.div_ceil(self.line_size)
        };
        LayoutStats {
            total_bytes,
            region_count: self.regions.len(),
            bitwidth_transitions,
            cache_lines_touched,
            cache_lines_ideal,
        }
    }

    /// Number of contiguous same-bitwidth groups in the layout (1 per
    /// precision level when the chunks have been reordered à la Cocktail).
    pub fn contiguous_groups(&self) -> usize {
        if self.regions.is_empty() {
            return 0;
        }
        1 + self.stats().bitwidth_transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::KvChunk;
    use cocktail_tensor::rng;

    fn chunk(idx: usize, bw: Bitwidth) -> KvChunk {
        let k = rng::gaussian_matrix(32, 16, 1.0, idx as u64);
        let v = rng::gaussian_matrix(32, 16, 1.0, 100 + idx as u64);
        let c = KvChunk::new_fp16(idx, &k, &v).unwrap();
        if bw == Bitwidth::Fp16 {
            c
        } else {
            c.quantized(bw, 32).unwrap()
        }
    }

    #[test]
    fn region_cache_lines_counts_straddles() {
        let r = LayoutRegion {
            offset: 100,
            bytes: 60,
            bitwidth: Bitwidth::Int4,
        };
        // Bytes 100..160 touch lines [0,128) and [128,256) with 128-byte lines.
        assert_eq!(r.cache_lines(128), 2);
        assert_eq!(r.cache_lines(0), 0);
        let empty = LayoutRegion {
            offset: 5,
            bytes: 0,
            bitwidth: Bitwidth::Int2,
        };
        assert_eq!(empty.cache_lines(128), 0);
    }

    #[test]
    fn interleaved_layout_has_more_transitions_than_grouped() {
        let interleaved = vec![
            chunk(0, Bitwidth::Int2),
            chunk(1, Bitwidth::Fp16),
            chunk(2, Bitwidth::Int2),
            chunk(3, Bitwidth::Fp16),
            chunk(4, Bitwidth::Int4),
            chunk(5, Bitwidth::Int2),
        ];
        let grouped = vec![
            chunk(0, Bitwidth::Int2),
            chunk(2, Bitwidth::Int2),
            chunk(5, Bitwidth::Int2),
            chunk(4, Bitwidth::Int4),
            chunk(1, Bitwidth::Fp16),
            chunk(3, Bitwidth::Fp16),
        ];
        let li = MemoryLayout::from_chunks(&interleaved, 128);
        let lg = MemoryLayout::from_chunks(&grouped, 128);
        assert!(li.stats().bitwidth_transitions > lg.stats().bitwidth_transitions);
        assert_eq!(lg.stats().bitwidth_transitions, 2);
        assert_eq!(lg.contiguous_groups(), 3);
        // Total bytes are identical — reordering never changes footprint.
        assert_eq!(li.total_bytes(), lg.total_bytes());
    }

    #[test]
    fn grouped_layout_touches_no_more_cache_lines() {
        let interleaved = vec![
            chunk(0, Bitwidth::Int2),
            chunk(1, Bitwidth::Fp16),
            chunk(2, Bitwidth::Int2),
            chunk(3, Bitwidth::Fp16),
        ];
        let grouped = vec![
            chunk(0, Bitwidth::Int2),
            chunk(2, Bitwidth::Int2),
            chunk(1, Bitwidth::Fp16),
            chunk(3, Bitwidth::Fp16),
        ];
        let li = MemoryLayout::from_chunks(&interleaved, 128).stats();
        let lg = MemoryLayout::from_chunks(&grouped, 128).stats();
        assert!(lg.cache_lines_touched <= li.cache_lines_touched);
        assert!(lg.read_amplification() <= li.read_amplification());
    }

    #[test]
    fn stats_of_empty_layout() {
        let layout = MemoryLayout::from_chunks(&[], 128);
        let stats = layout.stats();
        assert_eq!(stats.total_bytes, 0);
        assert_eq!(stats.region_count, 0);
        assert_eq!(stats.bitwidth_transitions, 0);
        assert_eq!(stats.wasted_cache_lines(), 0);
        assert_eq!(stats.read_amplification(), 0.0);
        assert_eq!(layout.contiguous_groups(), 0);
    }

    #[test]
    fn from_sizes_matches_manual_offsets() {
        let layout = MemoryLayout::from_sizes(
            &[
                (Bitwidth::Int2, 100),
                (Bitwidth::Fp16, 200),
                (Bitwidth::Int2, 50),
            ],
            128,
        );
        assert_eq!(layout.regions()[1].offset, 100);
        assert_eq!(layout.regions()[2].offset, 300);
        assert_eq!(layout.total_bytes(), 350);
        assert_eq!(layout.stats().bitwidth_transitions, 2);
    }

    #[test]
    fn wasted_lines_is_touched_minus_ideal() {
        let layout = MemoryLayout::from_sizes(
            &[
                (Bitwidth::Int2, 64),
                (Bitwidth::Fp16, 64),
                (Bitwidth::Int2, 64),
            ],
            128,
        );
        let stats = layout.stats();
        // 192 bytes => ideal 2 lines; regions at offsets 0,64,128: lines 1,2,1? Offsets 64..128 stays in line 0..128? bytes 64..127 line 0; so touched = 1 + 1 + 1 = 3? Let's just assert consistency.
        assert_eq!(stats.cache_lines_ideal, 2);
        assert_eq!(
            stats.wasted_cache_lines(),
            stats.cache_lines_touched - stats.cache_lines_ideal
        );
    }
}
