//! A single KV-cache chunk: the keys and values of one run of context
//! tokens, stored at one of the paper's precision levels.

use crate::error::KvCacheError;
use cocktail_quant::{Bitwidth, QuantAxis, QuantConfig, QuantizedMatrix};
use cocktail_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Physical storage of a chunk's key and value tensors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChunkStorage {
    /// Both tensors kept in FP16 (values rounded through half precision).
    Fp16 {
        /// Key tensor, shape `(tokens, head_dim)`.
        k: Matrix,
        /// Value tensor, shape `(tokens, head_dim)`.
        v: Matrix,
    },
    /// Both tensors quantized to the same integer bitwidth.
    Quantized {
        /// Quantized key tensor.
        k: QuantizedMatrix,
        /// Quantized value tensor.
        v: QuantizedMatrix,
    },
}

/// FP16 copies of a few "outlier" token rows kept alongside a quantized
/// chunk — the dense-and-sparse decomposition used by KVQuant, where ~1 %
/// of tokens retain full precision while the rest are quantized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutlierPatch {
    /// Row indices (within the chunk) stored at full precision.
    pub rows: Vec<usize>,
    /// FP16 key rows, one per entry of `rows`.
    pub k_rows: Matrix,
    /// FP16 value rows, one per entry of `rows`.
    pub v_rows: Matrix,
}

impl OutlierPatch {
    /// Bytes occupied by the patch: FP16 payload plus a 4-byte row index per
    /// outlier.
    pub fn storage_bytes(&self) -> usize {
        (self.k_rows.len() + self.v_rows.len()) * 2 + self.rows.len() * 4
    }
}

/// The KV cache of one contiguous run of context tokens for a single
/// (layer, KV-head) pair.
///
/// A chunk remembers which logical chunk index it was born as
/// ([`KvChunk::logical_index`]) so that reordering (Module II of the paper)
/// never loses the association between physical position and logical
/// position.
///
/// # Example
///
/// ```
/// use cocktail_kvcache::KvChunk;
/// use cocktail_quant::Bitwidth;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let k = cocktail_tensor::rng::gaussian_matrix(32, 16, 1.0, 1);
/// let v = cocktail_tensor::rng::gaussian_matrix(32, 16, 1.0, 2);
/// let chunk = KvChunk::new_fp16(0, &k, &v)?;
/// let quantized = chunk.clone().quantized(Bitwidth::Int2, 32)?;
/// assert!(quantized.storage_bytes() < chunk.storage_bytes());
/// assert_eq!(quantized.bitwidth(), Bitwidth::Int2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvChunk {
    logical_index: usize,
    token_len: usize,
    head_dim: usize,
    storage: ChunkStorage,
    outliers: Option<OutlierPatch>,
}

impl KvChunk {
    /// Creates an FP16 chunk from raw (FP32) key/value tensors; the values
    /// are rounded through half precision to model FP16 storage.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::ShapeMismatch`] if `k` and `v` do not have
    /// identical shapes.
    pub fn new_fp16(logical_index: usize, k: &Matrix, v: &Matrix) -> Result<Self, KvCacheError> {
        if k.shape() != v.shape() {
            return Err(KvCacheError::ShapeMismatch(format!(
                "k {:?} vs v {:?}",
                k.shape(),
                v.shape()
            )));
        }
        let mut k16 = k.clone();
        let mut v16 = v.clone();
        k16.round_to_f16();
        v16.round_to_f16();
        Ok(Self {
            logical_index,
            token_len: k.rows(),
            head_dim: k.cols(),
            storage: ChunkStorage::Fp16 { k: k16, v: v16 },
            outliers: None,
        })
    }

    /// Returns a copy of this chunk quantized to `bitwidth` with per-token
    /// groups of `group_size` (the layout used by Atom and Cocktail).
    ///
    /// Asking for [`Bitwidth::Fp16`] returns the chunk converted back to
    /// FP16 storage (dequantizing first if necessary).
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::Quant`] if the quantization kernel rejects
    /// the configuration (e.g. zero group size).
    pub fn quantized(self, bitwidth: Bitwidth, group_size: usize) -> Result<Self, KvCacheError> {
        self.quantized_with_axis(
            bitwidth,
            QuantAxis::PerToken,
            QuantAxis::PerToken,
            group_size,
        )
    }

    /// Returns a copy quantized with separate grouping axes for keys and
    /// values (KIVI quantizes keys per channel and values per token).
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::Quant`] if the quantization kernel rejects
    /// the configuration.
    pub fn quantized_with_axis(
        self,
        bitwidth: Bitwidth,
        key_axis: QuantAxis,
        value_axis: QuantAxis,
        group_size: usize,
    ) -> Result<Self, KvCacheError> {
        let (k, v) = self.dequantized_pair();
        if bitwidth.is_float() {
            return Self::new_fp16(self.logical_index, &k, &v);
        }
        let k_cfg = QuantConfig::new(bitwidth, key_axis, group_size)?;
        let v_cfg = QuantConfig::new(bitwidth, value_axis, group_size)?;
        // Dispatched: large chunks quantize row-parallel on the kernel
        // pool, small ones scalar — bit-identical either way.
        let kq = cocktail_quant::parallel::quantize(&k, &k_cfg)?;
        let vq = cocktail_quant::parallel::quantize(&v, &v_cfg)?;
        Ok(Self {
            logical_index: self.logical_index,
            token_len: self.token_len,
            head_dim: self.head_dim,
            storage: ChunkStorage::Quantized { k: kq, v: vq },
            outliers: None,
        })
    }

    /// Quantizes the chunk while keeping the listed token rows at FP16 in a
    /// sparse [`OutlierPatch`] — the dense-and-sparse decomposition used by
    /// the KVQuant baseline.
    ///
    /// Duplicate or out-of-range row indices are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::Quant`] if the quantization kernel rejects
    /// the configuration.
    pub fn quantized_with_outliers(
        self,
        bitwidth: Bitwidth,
        group_size: usize,
        outlier_rows: &[usize],
    ) -> Result<Self, KvCacheError> {
        let (k, v) = self.dequantized_pair();
        let mut chunk = self.quantized(bitwidth, group_size)?;
        let mut rows: Vec<usize> = outlier_rows
            .iter()
            .copied()
            .filter(|&r| r < chunk.token_len)
            .collect();
        rows.sort_unstable();
        rows.dedup();
        if rows.is_empty() || bitwidth.is_float() {
            return Ok(chunk);
        }
        let mut k_rows = k.gather_rows(&rows);
        let mut v_rows = v.gather_rows(&rows);
        k_rows.round_to_f16();
        v_rows.round_to_f16();
        chunk.outliers = Some(OutlierPatch {
            rows,
            k_rows,
            v_rows,
        });
        Ok(chunk)
    }

    /// Number of token rows kept at FP16 by an outlier patch (0 when there
    /// is no patch).
    pub fn outlier_count(&self) -> usize {
        self.outliers.as_ref().map_or(0, |p| p.rows.len())
    }

    /// The outlier patch, if any.
    pub fn outliers(&self) -> Option<&OutlierPatch> {
        self.outliers.as_ref()
    }

    /// The chunk's position in the *logical* (original) chunk order.
    pub fn logical_index(&self) -> usize {
        self.logical_index
    }

    /// Number of tokens stored in the chunk.
    pub fn token_len(&self) -> usize {
        self.token_len
    }

    /// Head dimension of the stored tensors.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Storage precision of the chunk.
    pub fn bitwidth(&self) -> Bitwidth {
        match &self.storage {
            ChunkStorage::Fp16 { .. } => Bitwidth::Fp16,
            ChunkStorage::Quantized { k, .. } => k.bitwidth(),
        }
    }

    /// Raw storage representation.
    pub fn storage(&self) -> &ChunkStorage {
        &self.storage
    }

    /// Reconstructed (dequantized) key tensor, with any outlier patch
    /// applied.
    pub fn key_matrix(&self) -> Matrix {
        let mut k = match &self.storage {
            ChunkStorage::Fp16 { k, .. } => k.clone(),
            ChunkStorage::Quantized { k, .. } => k.dequantize(),
        };
        if let Some(patch) = &self.outliers {
            for (slot, &row) in patch.rows.iter().enumerate() {
                k.row_mut(row).copy_from_slice(patch.k_rows.row(slot));
            }
        }
        k
    }

    /// Reconstructed (dequantized) value tensor, with any outlier patch
    /// applied.
    pub fn value_matrix(&self) -> Matrix {
        let mut v = match &self.storage {
            ChunkStorage::Fp16 { v, .. } => v.clone(),
            ChunkStorage::Quantized { v, .. } => v.dequantize(),
        };
        if let Some(patch) = &self.outliers {
            for (slot, &row) in patch.rows.iter().enumerate() {
                v.row_mut(row).copy_from_slice(patch.v_rows.row(slot));
            }
        }
        v
    }

    fn dequantized_pair(&self) -> (Matrix, Matrix) {
        (self.key_matrix(), self.value_matrix())
    }

    /// Exact storage footprint in bytes (payload plus quantization
    /// parameters for quantized chunks; two bytes per element for FP16).
    pub fn storage_bytes(&self) -> usize {
        let base = match &self.storage {
            ChunkStorage::Fp16 { k, v } => (k.len() + v.len()) * 2,
            ChunkStorage::Quantized { k, v } => k.storage_bytes() + v.storage_bytes(),
        };
        base + self
            .outliers
            .as_ref()
            .map_or(0, OutlierPatch::storage_bytes)
    }

    /// Storage the chunk would need if kept entirely in FP16.
    pub fn fp16_reference_bytes(&self) -> usize {
        2 * self.token_len * self.head_dim * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_tensor::rng;

    fn sample_chunk(tokens: usize, dim: usize, idx: usize) -> KvChunk {
        let k = rng::gaussian_matrix(tokens, dim, 1.0, idx as u64 * 2 + 1);
        let v = rng::gaussian_matrix(tokens, dim, 1.0, idx as u64 * 2 + 2);
        KvChunk::new_fp16(idx, &k, &v).unwrap()
    }

    #[test]
    fn fp16_chunk_reports_fp16_bitwidth_and_bytes() {
        let chunk = sample_chunk(32, 16, 0);
        assert_eq!(chunk.bitwidth(), Bitwidth::Fp16);
        assert_eq!(chunk.storage_bytes(), 2 * 32 * 16 * 2);
        assert_eq!(chunk.storage_bytes(), chunk.fp16_reference_bytes());
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let k = Matrix::zeros(4, 8);
        let v = Matrix::zeros(4, 9);
        assert!(KvChunk::new_fp16(0, &k, &v).is_err());
    }

    #[test]
    fn quantization_shrinks_storage_monotonically() {
        let chunk = sample_chunk(32, 64, 1);
        let int8 = chunk.clone().quantized(Bitwidth::Int8, 32).unwrap();
        let int4 = chunk.clone().quantized(Bitwidth::Int4, 32).unwrap();
        let int2 = chunk.clone().quantized(Bitwidth::Int2, 32).unwrap();
        assert!(int8.storage_bytes() < chunk.storage_bytes());
        assert!(int4.storage_bytes() < int8.storage_bytes());
        assert!(int2.storage_bytes() < int4.storage_bytes());
    }

    #[test]
    fn quantize_to_fp16_round_trips_storage() {
        let chunk = sample_chunk(16, 16, 2);
        let same = chunk.clone().quantized(Bitwidth::Fp16, 32).unwrap();
        assert_eq!(same.bitwidth(), Bitwidth::Fp16);
        assert_eq!(same.key_matrix(), chunk.key_matrix());
        assert_eq!(same.value_matrix(), chunk.value_matrix());
    }

    #[test]
    fn reconstruction_error_increases_with_compression() {
        let chunk = sample_chunk(32, 64, 3);
        let reference_k = chunk.key_matrix();
        let e4 = chunk
            .clone()
            .quantized(Bitwidth::Int4, 32)
            .unwrap()
            .key_matrix()
            .mse(&reference_k)
            .unwrap();
        let e2 = chunk
            .clone()
            .quantized(Bitwidth::Int2, 32)
            .unwrap()
            .key_matrix()
            .mse(&reference_k)
            .unwrap();
        assert!(e4 < e2, "int4 mse {e4} should be below int2 mse {e2}");
    }

    #[test]
    fn logical_index_survives_quantization() {
        let chunk = sample_chunk(8, 8, 7);
        let q = chunk.quantized(Bitwidth::Int2, 8).unwrap();
        assert_eq!(q.logical_index(), 7);
        assert_eq!(q.token_len(), 8);
        assert_eq!(q.head_dim(), 8);
    }

    #[test]
    fn per_channel_key_axis_is_supported() {
        let chunk = sample_chunk(32, 16, 4);
        let kivi_style = chunk
            .quantized_with_axis(
                Bitwidth::Int4,
                QuantAxis::PerChannel,
                QuantAxis::PerToken,
                32,
            )
            .unwrap();
        assert_eq!(kivi_style.bitwidth(), Bitwidth::Int4);
        assert_eq!(kivi_style.key_matrix().shape(), (32, 16));
    }

    #[test]
    fn outlier_rows_are_restored_exactly() {
        let chunk = sample_chunk(32, 16, 5);
        let reference_k = chunk.key_matrix();
        let reference_v = chunk.value_matrix();
        let q = chunk
            .clone()
            .quantized_with_outliers(Bitwidth::Int2, 16, &[3, 17])
            .unwrap();
        assert_eq!(q.outlier_count(), 2);
        let k = q.key_matrix();
        let v = q.value_matrix();
        // Outlier rows match the FP16 reference exactly.
        assert_eq!(k.row(3), reference_k.row(3));
        assert_eq!(k.row(17), reference_k.row(17));
        assert_eq!(v.row(3), reference_v.row(3));
        // Non-outlier rows carry INT2 quantization error.
        let err: f32 = k
            .row(4)
            .iter()
            .zip(reference_k.row(4))
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(err > 0.0);
    }

    #[test]
    fn outlier_patch_increases_storage_slightly() {
        let chunk = sample_chunk(32, 16, 6);
        let plain = chunk.clone().quantized(Bitwidth::Int4, 16).unwrap();
        let patched = chunk
            .clone()
            .quantized_with_outliers(Bitwidth::Int4, 16, &[0])
            .unwrap();
        assert!(patched.storage_bytes() > plain.storage_bytes());
        assert!(patched.storage_bytes() < chunk.storage_bytes());
    }

    #[test]
    fn outlier_indices_are_deduplicated_and_bounded() {
        let chunk = sample_chunk(8, 8, 7);
        let q = chunk
            .quantized_with_outliers(Bitwidth::Int4, 8, &[1, 1, 99, 2])
            .unwrap();
        assert_eq!(q.outlier_count(), 2);
        assert_eq!(q.outliers().unwrap().rows, vec![1, 2]);
    }

    #[test]
    fn empty_outlier_list_is_plain_quantization() {
        let chunk = sample_chunk(8, 8, 8);
        let q = chunk
            .quantized_with_outliers(Bitwidth::Int4, 8, &[])
            .unwrap();
        assert_eq!(q.outlier_count(), 0);
        assert!(q.outliers().is_none());
    }

    #[test]
    fn empty_chunk_is_representable() {
        let k = Matrix::zeros(0, 16);
        let v = Matrix::zeros(0, 16);
        let chunk = KvChunk::new_fp16(0, &k, &v).unwrap();
        assert_eq!(chunk.token_len(), 0);
        assert_eq!(chunk.storage_bytes(), 0);
        let q = chunk.quantized(Bitwidth::Int2, 32).unwrap();
        assert_eq!(q.key_matrix().shape(), (0, 16));
    }
}
