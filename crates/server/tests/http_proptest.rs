//! Property tests for the hand-rolled HTTP/1.1 layer: the request parser
//! must accept anything RFC-shaped (arbitrary header order and casing,
//! reads split at any byte boundary, pipelined requests) and must answer
//! malformed or oversized input with a typed 4xx/5xx error — never a
//! panic and never a silently-wrong parse. The chunked and SSE encoders
//! must round-trip through their matching decoders.

use cocktail_server::http::{
    chunk, last_chunk, sse_event, ChunkedDecoder, ParseError, RequestParser, SseParser,
};
use proptest::prelude::*;

/// A tiny deterministic SplitMix64, seeded from the property inputs, for
/// the shuffles / casings / split points the shim's strategies cannot
/// express directly.
struct Mix(u64);

impl Mix {
    fn new(seed: u64) -> Self {
        Mix(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }

    fn coin(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// Randomizes ASCII casing per character.
fn scramble_case(name: &str, mix: &mut Mix) -> String {
    name.chars()
        .map(|c| {
            if mix.coin() {
                c.to_ascii_uppercase()
            } else {
                c.to_ascii_lowercase()
            }
        })
        .collect()
}

/// Fisher–Yates driven by the seed.
fn shuffle<T>(items: &mut [T], mix: &mut Mix) {
    for i in (1..items.len()).rev() {
        items.swap(i, mix.below(i + 1));
    }
}

/// Feeds `bytes` to the parser in seed-chosen slices, returning every
/// request parsed along the way.
fn parse_in_splits(
    bytes: &[u8],
    mix: &mut Mix,
) -> Result<Vec<cocktail_server::http::Request>, ParseError> {
    let mut parser = RequestParser::new();
    let mut parsed = Vec::new();
    let mut offset = 0;
    while offset < bytes.len() {
        let take = 1 + mix.below(bytes.len() - offset);
        parser.push(&bytes[offset..offset + take]);
        offset += take;
        while let Some(request) = parser.next_request()? {
            parsed.push(request);
        }
    }
    Ok(parsed)
}

proptest! {
    /// Header order and casing are semantically irrelevant: however the
    /// headers are permuted and capitalized, the parse must agree with
    /// the canonical ordering, and lookups must stay case-insensitive.
    #[test]
    fn header_order_and_casing_do_not_change_the_parse(
        seed in 0u64..10_000,
        body in "[a-z0-9 ]{0,64}",
        extras in proptest::collection::vec("[a-z]{1,10}", 0usize..5),
    ) {
        let mut mix = Mix::new(seed);
        let mut headers: Vec<(String, String)> = vec![
            ("Content-Length".to_string(), body.len().to_string()),
            ("Host".to_string(), "localhost".to_string()),
            ("Accept".to_string(), "text/event-stream".to_string()),
        ];
        for (i, value) in extras.iter().enumerate() {
            headers.push((format!("X-Extra-{i}"), value.clone()));
        }
        shuffle(&mut headers, &mut mix);

        let mut raw = b"POST /api/generate HTTP/1.1\r\n".to_vec();
        for (name, value) in &headers {
            let name = scramble_case(name, &mut mix);
            raw.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        raw.extend_from_slice(body.as_bytes());

        let mut parser = RequestParser::new();
        parser.push(&raw);
        let request = parser.next_request().expect("valid request").expect("complete");
        prop_assert_eq!(&request.method, "POST");
        prop_assert_eq!(&request.target, "/api/generate");
        prop_assert_eq!(&request.body, body.as_bytes());
        prop_assert_eq!(request.header("HOST"), Some("localhost"));
        prop_assert_eq!(request.header("accept"), Some("text/event-stream"));
        for (i, value) in extras.iter().enumerate() {
            prop_assert_eq!(request.header(&format!("x-extra-{i}")), Some(value.as_str()));
        }
        prop_assert!(parser.next_request().expect("no trailing error").is_none());
    }

    /// Splitting the byte stream at arbitrary read boundaries — including
    /// mid-request-line, mid-header, and mid-body — must parse exactly
    /// like one contiguous read, across a whole pipeline of requests.
    #[test]
    fn split_reads_and_pipelining_parse_like_a_single_read(
        seed in 0u64..10_000,
        bodies in proptest::collection::vec("[a-z0-9 ]{0,48}", 1usize..5),
    ) {
        let mut raw = Vec::new();
        for (i, body) in bodies.iter().enumerate() {
            raw.extend_from_slice(
                format!(
                    "POST /api/generate HTTP/1.1\r\nX-Index: {i}\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            );
        }

        let mut mix = Mix::new(seed);
        let split = parse_in_splits(&raw, &mut mix).expect("valid pipeline");
        prop_assert_eq!(split.len(), bodies.len());
        for (i, (request, body)) in split.iter().zip(&bodies).enumerate() {
            prop_assert_eq!(&request.method, "POST");
            prop_assert_eq!(request.header("x-index"), Some(i.to_string().as_str()));
            prop_assert_eq!(&request.body, body.as_bytes());
        }
    }

    /// Arbitrary printable garbage must never panic the parser: it either
    /// parses, waits for more input, or rejects with a well-formed 4xx/5xx
    /// status. Anything that failed once must keep failing (no limbo).
    #[test]
    fn malformed_input_rejects_with_a_status_not_a_panic(
        seed in 0u64..10_000,
        garbage in "[ -~\r\n]{0,200}",
    ) {
        let mut mix = Mix::new(seed);
        match parse_in_splits(garbage.as_bytes(), &mut mix) {
            Ok(_) => {}
            Err(error) => {
                let status = error.status();
                prop_assert!(
                    (400..=505).contains(&status),
                    "unexpected status {status} for {garbage:?}"
                );
            }
        }
    }

    /// A request head larger than the configured cap must become 431
    /// (head) or 413 (declared body), never unbounded buffering.
    #[test]
    fn oversized_input_maps_to_431_or_413(
        pad in 1usize..4096,
        declared in 1usize..1_000_000,
    ) {
        let max_head = 256;
        let max_body = 512;
        let mut parser = RequestParser::with_limits(max_head, max_body);
        let mut raw = b"GET /healthz HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.extend_from_slice(&vec![b'a'; max_head + pad]);
        raw.extend_from_slice(b"\r\n\r\n");
        parser.push(&raw);
        let error = parser.next_request().expect_err("head over the cap");
        prop_assert_eq!(error.status(), 431);

        let mut parser = RequestParser::with_limits(max_head, max_body);
        parser.push(
            format!(
                "POST /api/generate HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                max_body + declared
            )
            .as_bytes(),
        );
        let error = parser.next_request().expect_err("body over the cap");
        prop_assert_eq!(error.status(), 413);
    }

    /// The chunked encoder must round-trip through the chunked decoder at
    /// any read granularity: encode a sequence of payloads, slice the
    /// encoded stream arbitrarily, and recover the exact concatenation.
    #[test]
    fn chunked_encoding_roundtrips_through_the_decoder(
        seed in 0u64..10_000,
        payloads in proptest::collection::vec("[ -~]{0,80}", 0usize..8),
    ) {
        let mut encoded = Vec::new();
        for payload in &payloads {
            encoded.extend_from_slice(&chunk(payload.as_bytes()));
        }
        encoded.extend_from_slice(last_chunk());

        let mut mix = Mix::new(seed);
        let mut decoder = ChunkedDecoder::new();
        let mut offset = 0;
        while offset < encoded.len() {
            let take = 1 + mix.below(encoded.len() - offset);
            decoder.push(&encoded[offset..offset + take]).expect("valid chunk stream");
            offset += take;
        }
        prop_assert!(decoder.finished(), "terminal chunk must finish the stream");
        prop_assert_eq!(
            decoder.take_output(),
            payloads.concat().into_bytes(),
            "decoded bytes must equal the encoded payloads"
        );
    }

    /// SSE events written by the encoder must come back intact from the
    /// SSE parser, event by event and in order, at any text granularity.
    #[test]
    fn sse_events_roundtrip_through_the_parser(
        seed in 0u64..10_000,
        payloads in proptest::collection::vec("[ -~]{1,80}", 1usize..8),
    ) {
        let encoded: String = payloads.iter().map(|p| sse_event(p)).collect();

        let mut mix = Mix::new(seed);
        let mut parser = SseParser::new();
        let mut events = Vec::new();
        let bytes = encoded.as_bytes();
        let mut offset = 0;
        while offset < bytes.len() {
            let mut take = 1 + mix.below(bytes.len() - offset);
            // Keep pushes on UTF-8 boundaries (SSE frames are ASCII here,
            // but the parser API takes &str).
            while !encoded.is_char_boundary(offset + take) {
                take += 1;
            }
            parser.push(&encoded[offset..offset + take]);
            offset += take;
            while let Some(event) = parser.next_event() {
                events.push(event);
            }
        }
        prop_assert_eq!(&events, &payloads);
    }
}
