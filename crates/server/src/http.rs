//! Minimal incremental HTTP/1.1 wire protocol.
//!
//! The gateway hand-rolls its HTTP layer because the workspace builds
//! without crates.io access: no hyper, no tokio. The surface is exactly
//! what a serving front end needs — an incremental request parser that
//! survives `read()` boundaries and pipelined requests, response-head
//! builders, and chunked-transfer / Server-Sent-Events encoders with the
//! matching decoders used by the test client.
//!
//! Every parse failure maps to a concrete 4xx/5xx status via
//! [`ParseError::status`]; malformed input must never panic (the proptest
//! suite in `tests/http_proptest.rs` holds the parser to that).

use std::fmt;

/// Default cap on the request head (request line + headers) in bytes.
pub const DEFAULT_MAX_HEAD_BYTES: usize = 16 * 1024;
/// Default cap on the request body in bytes.
pub const DEFAULT_MAX_BODY_BYTES: usize = 1024 * 1024;

/// A fully parsed HTTP/1.1 request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method, verbatim (methods are case-sensitive).
    pub method: String,
    /// The request target, e.g. `/api/generate`.
    pub target: String,
    /// `true` when the request line said `HTTP/1.0` (no keep-alive).
    pub http_10: bool,
    /// Header name/value pairs in arrival order, names verbatim.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive lookup of the first header with the given name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`, or HTTP/1.0 without keep-alive).
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => self.http_10,
        }
    }
}

/// A request-parse failure, each variant carrying the HTTP status the
/// gateway answers with before closing the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed request line, header, or body framing → 400.
    BadRequest(String),
    /// Declared body exceeds the configured cap → 413.
    BodyTooLarge {
        /// Bytes the client declared via `Content-Length`.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// Request head grew past the configured cap → 431.
    HeadTooLarge {
        /// The configured cap.
        limit: usize,
    },
    /// A framing mechanism the gateway does not speak (e.g. chunked
    /// request bodies) → 501.
    Unsupported(String),
    /// An HTTP version other than 1.0/1.1 → 505.
    UnsupportedVersion(String),
}

impl ParseError {
    /// The HTTP status code this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::BadRequest(_) => 400,
            ParseError::BodyTooLarge { .. } => 413,
            ParseError::HeadTooLarge { .. } => 431,
            ParseError::Unsupported(_) => 501,
            ParseError::UnsupportedVersion(_) => 505,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadRequest(m) => write!(f, "bad request: {m}"),
            ParseError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
            ParseError::HeadTooLarge { limit } => {
                write!(f, "request head exceeds the {limit}-byte limit")
            }
            ParseError::Unsupported(m) => write!(f, "not implemented: {m}"),
            ParseError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version {v:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Incremental HTTP/1.1 request parser.
///
/// Feed raw socket bytes with [`RequestParser::push`] in whatever pieces
/// the kernel hands them over, then drain complete requests with
/// [`RequestParser::next_request`]. Bytes beyond the first request stay
/// buffered, so pipelined requests parse one call at a time. Line endings
/// are lenient (`\r\n` or bare `\n`); limits on head and body size turn
/// oversized input into typed errors instead of unbounded buffering.
#[derive(Debug)]
pub struct RequestParser {
    buffer: Vec<u8>,
    max_head: usize,
    max_body: usize,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestParser {
    /// A parser with the default head/body limits.
    pub fn new() -> Self {
        Self::with_limits(DEFAULT_MAX_HEAD_BYTES, DEFAULT_MAX_BODY_BYTES)
    }

    /// A parser with explicit head/body byte limits.
    pub fn with_limits(max_head: usize, max_body: usize) -> Self {
        Self {
            buffer: Vec::new(),
            max_head,
            max_body,
        }
    }

    /// Appends raw bytes read from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Number of bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Tries to parse the next complete request out of the buffer.
    ///
    /// Returns `Ok(None)` when more bytes are needed. On success the
    /// request's bytes are consumed and any pipelined remainder stays
    /// buffered for the next call.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed or oversized input; the
    /// buffer contents are unspecified afterwards, so callers should
    /// answer with [`ParseError::status`] and close the connection.
    pub fn next_request(&mut self) -> Result<Option<Request>, ParseError> {
        let Some((head_end, body_start)) = find_head_end(&self.buffer) else {
            if self.buffer.len() > self.max_head {
                return Err(ParseError::HeadTooLarge {
                    limit: self.max_head,
                });
            }
            return Ok(None);
        };
        if head_end > self.max_head {
            return Err(ParseError::HeadTooLarge {
                limit: self.max_head,
            });
        }
        let head = std::str::from_utf8(&self.buffer[..head_end])
            .map_err(|_| ParseError::BadRequest("request head is not valid UTF-8".into()))?;
        let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
        let request_line = lines
            .next()
            .ok_or_else(|| ParseError::BadRequest("empty request head".into()))?;
        let (method, target, http_10) = parse_request_line(request_line)?;
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            if line.starts_with(' ') || line.starts_with('\t') {
                return Err(ParseError::BadRequest(
                    "obsolete header line folding is not accepted".into(),
                ));
            }
            let (name, value) = line.split_once(':').ok_or_else(|| {
                ParseError::BadRequest(format!("header line {line:?} has no ':'"))
            })?;
            if name.is_empty() || name.contains(' ') || name.contains('\t') {
                return Err(ParseError::BadRequest(format!(
                    "malformed header name {name:?}"
                )));
            }
            headers.push((name.to_string(), value.trim().to_string()));
        }
        let body_len = body_length(&headers)?;
        if body_len > self.max_body {
            return Err(ParseError::BodyTooLarge {
                declared: body_len,
                limit: self.max_body,
            });
        }
        if self.buffer.len() < body_start + body_len {
            return Ok(None);
        }
        let body = self.buffer[body_start..body_start + body_len].to_vec();
        self.buffer.drain(..body_start + body_len);
        Ok(Some(Request {
            method,
            target,
            http_10,
            headers,
            body,
        }))
    }
}

/// Finds the blank line terminating the request head. Returns the length
/// of the head *including* the final line's newline but excluding the
/// blank line itself, plus the offset where the body begins. Line endings
/// may be `\r\n` or bare `\n` independently per line.
fn find_head_end(buffer: &[u8]) -> Option<(usize, usize)> {
    for (i, &byte) in buffer.iter().enumerate() {
        if byte != b'\n' {
            continue;
        }
        match buffer.get(i + 1) {
            Some(b'\n') => return Some((i + 1, i + 2)),
            Some(b'\r') if buffer.get(i + 2) == Some(&b'\n') => return Some((i + 1, i + 3)),
            _ => {}
        }
    }
    None
}

fn parse_request_line(line: &str) -> Result<(String, String, bool), ParseError> {
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or_else(|| ParseError::BadRequest("missing method".into()))?;
    let target = parts
        .next()
        .ok_or_else(|| ParseError::BadRequest("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ParseError::BadRequest("missing HTTP version".into()))?;
    if parts.next().is_some() {
        return Err(ParseError::BadRequest(format!(
            "malformed request line {line:?}"
        )));
    }
    if !method.chars().all(|c| c.is_ascii_alphabetic()) {
        return Err(ParseError::BadRequest(format!(
            "malformed method {method:?}"
        )));
    }
    let http_10 = match version {
        "HTTP/1.1" => false,
        "HTTP/1.0" => true,
        other => return Err(ParseError::UnsupportedVersion(other.to_string())),
    };
    Ok((method.to_string(), target.to_string(), http_10))
}

fn body_length(headers: &[(String, String)]) -> Result<usize, ParseError> {
    if let Some((_, value)) = headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("transfer-encoding"))
    {
        return Err(ParseError::Unsupported(format!(
            "transfer-encoding {value:?} request bodies"
        )));
    }
    let mut declared = None;
    for (name, value) in headers {
        if name.eq_ignore_ascii_case("content-length") {
            let parsed: usize = value.parse().map_err(|_| {
                ParseError::BadRequest(format!("unparseable Content-Length {value:?}"))
            })?;
            if declared.is_some_and(|prior| prior != parsed) {
                return Err(ParseError::BadRequest(
                    "conflicting Content-Length headers".into(),
                ));
            }
            declared = Some(parsed);
        }
    }
    Ok(declared.unwrap_or(0))
}

/// The standard reason phrase for the status codes the gateway emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        308 => "Permanent Redirect",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Builds a response head (status line + headers + blank line).
pub fn response_head(status: u16, headers: &[(&str, &str)]) -> Vec<u8> {
    let mut out = format!("HTTP/1.1 {status} {}\r\n", reason_phrase(status));
    for (name, value) in headers {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    out.into_bytes()
}

/// Builds a complete fixed-length response (head + body).
pub fn simple_response(status: u16, content_type: &str, body: &[u8]) -> Vec<u8> {
    let length = body.len().to_string();
    let mut out = response_head(
        status,
        &[("Content-Type", content_type), ("Content-Length", &length)],
    );
    out.extend_from_slice(body);
    out
}

/// Encodes one chunk of a chunked-transfer body. Empty input yields an
/// empty encoding (the zero-length chunk is reserved for [`last_chunk`]).
pub fn chunk(data: &[u8]) -> Vec<u8> {
    if data.is_empty() {
        return Vec::new();
    }
    let mut out = format!("{:x}\r\n", data.len()).into_bytes();
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
    out
}

/// The terminating zero-length chunk of a chunked-transfer body.
pub fn last_chunk() -> &'static [u8] {
    b"0\r\n\r\n"
}

/// Encodes one Server-Sent-Events message carrying `data` (one `data:`
/// line per input line, blank-line terminated).
pub fn sse_event(data: &str) -> String {
    let mut out = String::new();
    for line in data.split('\n') {
        out.push_str("data: ");
        out.push_str(line);
        out.push('\n');
    }
    out.push('\n');
    out
}

/// Incremental decoder for a chunked-transfer body — the client half of
/// [`chunk`]/[`last_chunk`], also used by the encoder round-trip proptest.
#[derive(Debug, Default)]
pub struct ChunkedDecoder {
    buffer: Vec<u8>,
    output: Vec<u8>,
    finished: bool,
}

impl ChunkedDecoder {
    /// A decoder with empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds encoded bytes into the decoder.
    ///
    /// # Errors
    ///
    /// Returns a message when the chunk framing is malformed.
    pub fn push(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.buffer.extend_from_slice(bytes);
        loop {
            if self.finished {
                return Ok(());
            }
            let Some(line_end) = self.buffer.iter().position(|&b| b == b'\n') else {
                return Ok(());
            };
            let size_line = std::str::from_utf8(&self.buffer[..line_end])
                .map_err(|_| "chunk size line is not UTF-8".to_string())?
                .trim();
            // Chunk extensions (";ext=...") are tolerated and ignored.
            let size_text = size_line.split(';').next().unwrap_or("").trim();
            let size = usize::from_str_radix(size_text, 16)
                .map_err(|_| format!("unparseable chunk size {size_line:?}"))?;
            let data_start = line_end + 1;
            if size == 0 {
                // The trailer section is a blank line (no trailers sent).
                if self.buffer.len() < data_start + 1 {
                    return Ok(());
                }
                self.finished = true;
                return Ok(());
            }
            // Data plus its trailing CRLF (tolerate bare LF).
            if self.buffer.len() < data_start + size + 1 {
                return Ok(());
            }
            let after = data_start + size;
            let terminator = if self.buffer[after..].starts_with(b"\r\n") {
                2
            } else if self.buffer[after..].starts_with(b"\n") {
                1
            } else if self.buffer.len() >= after + 2 {
                return Err("chunk data not followed by CRLF".to_string());
            } else {
                return Ok(());
            };
            self.output
                .extend_from_slice(&self.buffer[data_start..after]);
            self.buffer.drain(..after + terminator);
        }
    }

    /// Takes the decoded bytes accumulated so far.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.output)
    }

    /// Whether the terminating zero-length chunk has been seen.
    pub fn finished(&self) -> bool {
        self.finished
    }
}

/// Incremental Server-Sent-Events parser: feed decoded body text, pop
/// complete event payloads (the concatenated `data:` lines).
#[derive(Debug, Default)]
pub struct SseParser {
    buffer: String,
}

impl SseParser {
    /// A parser with empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds decoded body text into the parser.
    pub fn push(&mut self, text: &str) {
        self.buffer.push_str(text);
    }

    /// Pops the next complete event's data payload, if one is buffered.
    pub fn next_event(&mut self) -> Option<String> {
        let end = self.buffer.find("\n\n")?;
        let raw: String = self.buffer.drain(..end + 2).collect();
        let mut data = String::new();
        for line in raw.lines() {
            if let Some(rest) = line.strip_prefix("data:") {
                if !data.is_empty() {
                    data.push('\n');
                }
                data.push_str(rest.strip_prefix(' ').unwrap_or(rest));
            }
        }
        Some(data)
    }
}

/// A parsed response head, as seen by the test client.
#[derive(Debug, Clone)]
pub struct ResponseHead {
    /// The numeric status code.
    pub status: u16,
    /// Header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
}

impl ResponseHead {
    /// Case-insensitive lookup of the first header with the given name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Parses a response head out of a raw buffer, returning the head and the
/// number of bytes it consumed (including the blank line). `None` means
/// the head is still incomplete.
///
/// # Errors
///
/// Returns a message when the status line or a header is malformed.
pub fn parse_response_head(buffer: &[u8]) -> Result<Option<(ResponseHead, usize)>, String> {
    let Some((head_end, consumed)) = find_head_end(buffer) else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buffer[..head_end])
        .map_err(|_| "response head is not valid UTF-8".to_string())?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let status_line = lines.next().ok_or("empty response head")?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed response header {line:?}"))?;
        headers.push((name.to_string(), value.trim().to_string()));
    }
    Ok(Some((ResponseHead { status, headers }, consumed)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_simple_request_in_one_push() {
        let mut parser = RequestParser::new();
        parser.push(b"POST /api/generate HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\nhi");
        let req = parser.next_request().unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/api/generate");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hi");
        assert!(parser.next_request().unwrap().is_none());
    }

    #[test]
    fn parses_across_arbitrary_read_boundaries() {
        let raw = b"GET /api/stats HTTP/1.1\r\nAccept: */*\r\n\r\n";
        for split in 0..raw.len() {
            let mut parser = RequestParser::new();
            parser.push(&raw[..split]);
            let early = parser.next_request().unwrap();
            assert!(early.is_none(), "complete at split {split}?");
            parser.push(&raw[split..]);
            let req = parser.next_request().unwrap().unwrap();
            assert_eq!(req.target, "/api/stats");
        }
    }

    #[test]
    fn pipelined_requests_come_out_one_at_a_time() {
        let mut parser = RequestParser::new();
        parser.push(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        assert_eq!(parser.next_request().unwrap().unwrap().target, "/a");
        assert_eq!(parser.next_request().unwrap().unwrap().target, "/b");
        assert!(parser.next_request().unwrap().is_none());
    }

    #[test]
    fn errors_map_to_the_documented_statuses() {
        let cases: Vec<(&[u8], u16)> = vec![
            (b"BROKEN\r\n\r\n", 400),
            (b"GET /x HTTP/2.0\r\n\r\n", 505),
            (b"GET /x HTTP/1.1\r\nBad Header\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\nContent-Length: oops\r\n\r\n", 400),
            (
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                501,
            ),
        ];
        for (raw, status) in cases {
            let mut parser = RequestParser::new();
            parser.push(raw);
            let err = parser.next_request().unwrap_err();
            assert_eq!(err.status(), status, "{raw:?}");
        }
    }

    #[test]
    fn oversized_head_and_body_are_rejected() {
        let mut parser = RequestParser::with_limits(32, 16);
        parser.push(b"GET /this-target-alone-overflows-the-head-limit HTTP/1.1\r\n");
        assert_eq!(parser.next_request().unwrap_err().status(), 431);
        let mut parser = RequestParser::with_limits(1024, 16);
        parser.push(b"POST /x HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
        assert_eq!(parser.next_request().unwrap_err().status(), 413);
    }

    #[test]
    fn chunked_round_trip_through_the_decoder() {
        let mut encoded = Vec::new();
        for piece in ["hello ", "wor", "", "ld"] {
            encoded.extend_from_slice(&chunk(piece.as_bytes()));
        }
        encoded.extend_from_slice(last_chunk());
        let mut decoder = ChunkedDecoder::new();
        for byte in encoded {
            decoder.push(&[byte]).unwrap();
        }
        assert!(decoder.finished());
        assert_eq!(decoder.take_output(), b"hello world");
    }

    #[test]
    fn sse_events_round_trip() {
        let mut parser = SseParser::new();
        parser.push(&sse_event("{\"a\":1}"));
        parser.push(&sse_event("two\nlines"));
        assert_eq!(parser.next_event().unwrap(), "{\"a\":1}");
        assert_eq!(parser.next_event().unwrap(), "two\nlines");
        assert!(parser.next_event().is_none());
    }

    #[test]
    fn response_head_round_trips() {
        let head = response_head(429, &[("Content-Type", "application/json")]);
        let (parsed, consumed) = parse_response_head(&head).unwrap().unwrap();
        assert_eq!(consumed, head.len());
        assert_eq!(parsed.status, 429);
        assert_eq!(parsed.header("content-type"), Some("application/json"));
    }
}
