//! The engine driver: a dedicated thread that owns the [`ServingEngine`]
//! and multiplexes its continuous-batching loop to per-connection
//! channels.
//!
//! [`ServingEngine`] is deliberately not shared across threads (requests
//! can carry `Box<dyn CachePolicy>` payloads), so the gateway never locks
//! it: the driver thread *constructs* the engine from plain-data
//! [`EngineSettings`], and connection handlers talk to it exclusively
//! through an mpsc command channel. Each submitted request registers an
//! event sender; the driver pumps [`ServingEngine::step_events`] and fans
//! every [`TokenEvent`] out to the owning connection. A dropped or
//! explicitly cancelled connection maps back to
//! [`ServingEngine::cancel`], which releases the request's budget, queue
//! slot, and prefix-cache pins immediately.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::thread::JoinHandle;
use std::time::Instant;

use cocktail_core::{
    CocktailConfig, FinishReason, PrefixCacheConfig, RequestId, SchedulerConfig, ServeRequest,
    ServingEngine, TokenEvent,
};
use cocktail_model::ModelProfile;

use crate::api::{ReplicaRestoreResult, ReplicaSnapshotResult, ReplicaStats};

/// Everything needed to construct the [`ServingEngine`] inside the driver
/// thread. Plain data, so it crosses the thread boundary by value.
#[derive(Debug, Clone)]
pub struct EngineSettings {
    /// The model to serve.
    pub profile: ModelProfile,
    /// Cocktail quantization configuration.
    pub config: CocktailConfig,
    /// Scheduler budget/batch settings (`None` keeps the default).
    pub scheduler: Option<SchedulerConfig>,
    /// Prefix-cache settings (`None` disables the cache).
    pub prefix_cache: Option<PrefixCacheConfig>,
    /// Disk cold-tier spill path (`None` keeps eviction in-memory-only).
    /// With several replicas the replica index is appended to keep spill
    /// files distinct.
    pub cold_tier: Option<PathBuf>,
}

impl EngineSettings {
    /// Settings for the given model with default scheduler and no prefix
    /// cache.
    pub fn new(profile: ModelProfile, config: CocktailConfig) -> Self {
        Self {
            profile,
            config,
            scheduler: None,
            prefix_cache: None,
            cold_tier: None,
        }
    }

    /// Sets the scheduler configuration.
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Enables the shared-prefix cache.
    pub fn with_prefix_cache(mut self, cache: PrefixCacheConfig) -> Self {
        self.prefix_cache = Some(cache);
        self
    }

    /// Enables the disk cold tier: evicted prefix branches spill to this
    /// path instead of being dropped, and later matches repromote them.
    /// Implies a default prefix cache when none is configured.
    pub fn with_cold_tier(mut self, path: impl Into<PathBuf>) -> Self {
        self.cold_tier = Some(path.into());
        self
    }
}

/// Submit payload: the subset of [`ServeRequest`] expressible over JSON.
/// `Clone` because the replica pool re-offers the same spec to the next
/// candidate replica when one answers `Busy`.
#[derive(Debug, Clone)]
pub(crate) struct SubmitSpec {
    pub context: String,
    pub query: String,
    pub max_new_tokens: usize,
    pub stop: Option<String>,
    /// `Some` switches the request to the seeded sampler chain; `None`
    /// decodes greedily (the pre-sampling wire behaviour).
    pub sampling: Option<cocktail_core::SamplingParams>,
}

/// What the driver replied to a submit.
#[derive(Debug)]
pub(crate) enum SubmitReply {
    /// The request joined the engine; events will flow on the registered
    /// sender.
    Accepted {
        id: RequestId,
        queue_position: Option<usize>,
    },
    /// The admission queue is at capacity; nothing was submitted.
    Busy { queued: usize, queue_limit: usize },
}

/// Per-request events fanned out to the owning connection. Every accepted
/// request's stream ends with exactly one terminal variant.
#[derive(Debug)]
pub(crate) enum GatewayEvent {
    /// One committed token.
    Token { index: usize, piece: String },
    /// Generation finished normally.
    Done {
        answer: String,
        generated_tokens: usize,
        finish: FinishReason,
    },
    /// The request was cancelled (normally by this very connection).
    Cancelled { generated_tokens: usize },
    /// The request failed terminally.
    Failed { message: String },
}

/// Commands a connection (or the server itself) sends to the driver.
pub(crate) enum EngineCommand {
    Submit {
        spec: SubmitSpec,
        events: Sender<GatewayEvent>,
        reply: Sender<SubmitReply>,
    },
    Cancel {
        id: RequestId,
    },
    Stats {
        reply: Sender<ReplicaStats>,
    },
    /// Write the replica's prefix-cache snapshot to `path`. Safe at any
    /// time: the engine snapshots between decode steps.
    Snapshot {
        path: PathBuf,
        reply: Sender<ReplicaSnapshotResult>,
    },
    /// Restore the replica's prefix cache from `path`. Only honoured when
    /// the replica is idle — restoring under live traffic would swap the
    /// trie out from under pinned requests — otherwise reports a
    /// `replica busy` reason without touching the engine.
    Restore {
        path: PathBuf,
        reply: Sender<ReplicaRestoreResult>,
    },
    Shutdown {
        reply: Sender<ReplicaStats>,
    },
}

/// Handle to the driver thread: a cloneable command sender plus the join
/// handle for shutdown.
pub(crate) struct EngineDriver {
    pub commands: Sender<EngineCommand>,
    handle: Option<JoinHandle<()>>,
}

impl EngineDriver {
    /// Spawns the driver thread for replica `replica`. `queue_limit` caps
    /// the admission queue: submits arriving beyond it get
    /// [`SubmitReply::Busy`] (a 429 once *every* replica says so).
    pub fn spawn(settings: EngineSettings, queue_limit: usize, replica: usize) -> Self {
        let (commands, inbox) = std::sync::mpsc::channel();
        let handle = std::thread::Builder::new()
            .name(format!("engine-driver-{replica}"))
            .spawn(move || drive(settings, queue_limit, replica, inbox))
            .expect("spawn engine driver thread");
        Self {
            commands,
            handle: Some(handle),
        }
    }

    /// Asks the driver to stop and waits for it, returning the final
    /// engine snapshot for this replica.
    pub fn shutdown(mut self, replica: usize) -> ReplicaStats {
        let (reply, done) = std::sync::mpsc::channel();
        let stats = if self
            .commands
            .send(EngineCommand::Shutdown { reply })
            .is_ok()
        {
            done.recv().ok()
        } else {
            None
        };
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        stats.unwrap_or_else(|| ReplicaStats::empty(replica))
    }
}

/// Book-keeping the driver holds per live request.
struct Subscription {
    events: Sender<GatewayEvent>,
}

struct Driver {
    engine: ServingEngine,
    queue_limit: usize,
    replica: usize,
    subs: HashMap<RequestId, Subscription>,
    /// A successful cancel parks its terminal event inside the engine
    /// until the next `step_events`; this forces that step even when the
    /// scheduler itself reports idle.
    flush_needed: bool,
    completed: usize,
    cancelled: usize,
    failed: usize,
}

fn build_engine(settings: EngineSettings, replica: usize) -> ServingEngine {
    let mut engine = ServingEngine::new(settings.profile, settings.config)
        .expect("engine settings must be valid");
    if let Some(scheduler) = settings.scheduler {
        engine = engine.with_scheduler_config(scheduler);
    }
    if let Some(cache) = settings.prefix_cache {
        engine = engine.with_prefix_cache(cache);
    }
    if let Some(path) = settings.cold_tier {
        // Each replica needs its own spill file; suffix the index so a
        // shared EngineSettings stays valid for a whole fleet.
        let mut spill = path.into_os_string();
        spill.push(format!(".{replica}"));
        engine = engine
            .with_cold_tier(PathBuf::from(spill))
            .expect("cold-tier spill path must be creatable");
    }
    engine
}

fn drive(
    settings: EngineSettings,
    queue_limit: usize,
    replica: usize,
    inbox: Receiver<EngineCommand>,
) {
    let mut driver = Driver {
        engine: build_engine(settings, replica),
        queue_limit,
        replica,
        subs: HashMap::new(),
        flush_needed: false,
        completed: 0,
        cancelled: 0,
        failed: 0,
    };
    loop {
        // Nothing to decode: block until a command arrives (or every
        // command sender is gone, which is an implicit shutdown).
        if driver.engine.is_idle() && !driver.flush_needed {
            match inbox.recv() {
                Ok(command) => {
                    if driver.handle(command) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        // Drain whatever else queued up, then run one decode round.
        loop {
            match inbox.try_recv() {
                Ok(command) => {
                    if driver.handle(command) {
                        return;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return,
            }
        }
        if !driver.engine.is_idle() || driver.flush_needed {
            driver.flush_needed = false;
            match driver.engine.step_events() {
                Ok(events) => {
                    for event in events {
                        driver.dispatch(event);
                    }
                }
                Err(err) => {
                    // Decode errors are not recoverable mid-batch; tell
                    // every live subscriber and stop driving.
                    eprintln!("engine driver: fatal step error: {err}");
                    for (_, sub) in driver.subs.drain() {
                        let _ = sub.events.send(GatewayEvent::Failed {
                            message: format!("engine error: {err}"),
                        });
                    }
                    return;
                }
            }
        }
    }
}

impl Driver {
    /// Handles one command; returns `true` on shutdown.
    fn handle(&mut self, command: EngineCommand) -> bool {
        match command {
            EngineCommand::Submit {
                spec,
                events,
                reply,
            } => {
                let queued = self.engine.scheduler().queued_len();
                if queued >= self.queue_limit {
                    let _ = reply.send(SubmitReply::Busy {
                        queued,
                        queue_limit: self.queue_limit,
                    });
                    return false;
                }
                let mut builder = ServeRequest::builder()
                    .context(spec.context)
                    .query(spec.query)
                    .max_new_tokens(spec.max_new_tokens);
                if let Some(stop) = spec.stop {
                    builder = builder.stop_sequence(stop);
                }
                if let Some(sampling) = spec.sampling {
                    builder = builder.sampling(sampling);
                }
                let id = self.engine.submit(builder.build());
                self.subs.insert(id, Subscription { events });
                let _ = reply.send(SubmitReply::Accepted {
                    id,
                    queue_position: self.engine.queue_position(id),
                });
            }
            EngineCommand::Cancel { id } => {
                if self.engine.cancel(id) {
                    self.flush_needed = true;
                }
            }
            EngineCommand::Stats { reply } => {
                let _ = reply.send(self.stats());
            }
            EngineCommand::Snapshot { path, reply } => {
                let _ = reply.send(self.snapshot(&path));
            }
            EngineCommand::Restore { path, reply } => {
                let _ = reply.send(self.restore(&path));
            }
            EngineCommand::Shutdown { reply } => {
                let _ = reply.send(self.stats());
                return true;
            }
        }
        false
    }

    /// Writes this replica's prefix-cache snapshot to `path`. Runs between
    /// decode steps, so it is safe under live traffic.
    fn snapshot(&self, path: &std::path::Path) -> ReplicaSnapshotResult {
        let started = Instant::now();
        let shown = path.display().to_string();
        match self.engine.snapshot_to(path) {
            Ok(report) => ReplicaSnapshotResult {
                replica: self.replica,
                path: shown,
                bytes: report.bytes,
                nodes: report.nodes,
                duration_ms: started.elapsed().as_millis() as usize,
                error: None,
            },
            Err(err) => ReplicaSnapshotResult {
                replica: self.replica,
                path: shown,
                bytes: 0,
                nodes: 0,
                duration_ms: started.elapsed().as_millis() as usize,
                error: Some(err.to_string()),
            },
        }
    }

    /// Restores this replica's prefix cache from `path`, but only when the
    /// replica is idle: live requests hold pins into the current trie, so
    /// swapping it out mid-flight is refused as `replica busy` rather than
    /// risked.
    fn restore(&mut self, path: &std::path::Path) -> ReplicaRestoreResult {
        let started = Instant::now();
        let shown = path.display().to_string();
        if !self.engine.is_idle() || self.flush_needed {
            let queued = self.engine.scheduler().queued_len();
            let running = self.engine.scheduler().running_len();
            return ReplicaRestoreResult {
                replica: self.replica,
                path: shown,
                restored: false,
                nodes: 0,
                resident_bytes: 0,
                duration_ms: started.elapsed().as_millis() as usize,
                reason: Some(format!(
                    "replica busy: {queued} queued, {running} running; retry when idle"
                )),
            };
        }
        let report = self.engine.restore_from(path);
        ReplicaRestoreResult {
            replica: self.replica,
            path: shown,
            restored: report.restored,
            nodes: report.nodes,
            resident_bytes: report.resident_bytes,
            duration_ms: started.elapsed().as_millis() as usize,
            reason: report.reason,
        }
    }

    fn stats(&self) -> ReplicaStats {
        ReplicaStats {
            replica: self.replica,
            kv_bytes_in_use: self.engine.kv_bytes_in_use(),
            queued: self.engine.scheduler().queued_len(),
            running: self.engine.scheduler().running_len(),
            prefix_reused_tokens: self
                .engine
                .prefix_cache_stats()
                .map(|s| s.reused_tokens as usize)
                .unwrap_or(0),
            pinned_prefix_entries: self
                .engine
                .prefix_cache_stats()
                .map(|s| s.pinned_entries)
                .unwrap_or(0),
            prefix_resident_bytes: self
                .engine
                .prefix_cache_stats()
                .map(|s| s.resident_bytes)
                .unwrap_or(0),
            completed: self.completed,
            cancelled: self.cancelled,
            failed: self.failed,
        }
    }

    /// Fans one engine event out to its connection. Token-bearing events
    /// become `Token`; a set `finish` additionally produces the terminal
    /// variant and retires the subscription.
    fn dispatch(&mut self, event: TokenEvent) {
        let id = event.id;
        let Some(sub) = self.subs.get(&id) else {
            // No subscriber (already dropped): make sure the slot is
            // drained so the table cannot grow forever.
            self.reap(id, event.finish);
            return;
        };
        let mut receiver_gone = false;
        if event.token.is_some() || !event.piece.is_empty() {
            receiver_gone = sub
                .events
                .send(GatewayEvent::Token {
                    index: event.index,
                    piece: event.piece,
                })
                .is_err();
        }
        match event.finish {
            None => {
                if receiver_gone {
                    // The connection vanished without a Cancel command
                    // (e.g. its thread panicked): reclaim the budget.
                    self.subs.remove(&id);
                    if self.engine.cancel(id) {
                        self.flush_needed = true;
                    }
                }
            }
            Some(reason) => {
                let sub = self.subs.remove(&id).expect("subscription still present");
                let terminal = self.reap(id, Some(reason));
                if let Some(terminal) = terminal {
                    let _ = sub.events.send(terminal);
                }
            }
        }
    }

    /// Drains the engine-side record of a finished request and counts it,
    /// returning the terminal event for the subscriber (if any is due).
    fn reap(&mut self, id: RequestId, finish: Option<FinishReason>) -> Option<GatewayEvent> {
        match finish? {
            reason @ (FinishReason::Length | FinishReason::Stop) => {
                let outcome = self
                    .engine
                    .take_outcome(id)
                    .expect("finished request has an outcome");
                self.completed += 1;
                Some(GatewayEvent::Done {
                    answer: outcome.outcome.answer,
                    generated_tokens: outcome.stats.generated_tokens,
                    finish: reason,
                })
            }
            FinishReason::Cancelled => {
                let stats = self
                    .engine
                    .take_cancelled(id)
                    .expect("cancelled request has stats");
                self.cancelled += 1;
                Some(GatewayEvent::Cancelled {
                    generated_tokens: stats.generated_tokens,
                })
            }
            FinishReason::Failed => {
                let (message, _stats) = self
                    .engine
                    .take_failure(id)
                    .expect("failed request has a message");
                self.failed += 1;
                Some(GatewayEvent::Failed { message })
            }
        }
    }
}

/// Maps a [`FinishReason`] to its wire string.
pub(crate) fn finish_str(reason: FinishReason) -> &'static str {
    match reason {
        FinishReason::Length => "length",
        FinishReason::Stop => "stop",
        FinishReason::Cancelled => "cancelled",
        FinishReason::Failed => "failed",
    }
}
