//! The gateway's replica pool: N engine drivers behind one
//! prefix-affinity route decision.
//!
//! The pool owns one [`EngineDriver`] per replica plus a shared
//! [`PrefixFingerprintIndex`] (the same structure `cocktail_core::Router`
//! uses in-process). A submit snapshots per-replica load, asks the index
//! for the replica whose prefix trie most plausibly holds the prompt's
//! preamble, then offers the request to that replica first and to the
//! remaining replicas in least-loaded order. Only when *every* replica
//! answers `Busy` does the gateway see a 429 — a saturated hot replica
//! degrades to a cold-cache admission elsewhere instead of a refusal.
//!
//! Load is tracked gateway-side with per-replica in-flight counters
//! (incremented on accept, decremented when the owning connection handler
//! finishes) so routing never blocks on a driver round-trip.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Mutex;

use cocktail_core::{PrefixFingerprintIndex, RequestId, RouterConfig};

use crate::api::{
    AdminRestoreResponse, AdminSnapshotResponse, ReplicaRestoreResult, ReplicaSnapshotResult,
    ReplicaStats, StatsResponse,
};
use crate::engine::{EngineCommand, GatewayEvent, SubmitReply, SubmitSpec};

/// What the pool replied to a submit.
pub(crate) enum PoolReply {
    /// Some replica accepted the request.
    Accepted {
        /// The replica that admitted it.
        replica: usize,
        /// The engine-assigned id on that replica.
        id: RequestId,
        /// Admission-queue position on that replica, when queued.
        queue_position: Option<usize>,
        /// The id string clients see: `"req-3"` with one replica (the v1
        /// wire format), `"r1:req-3"` with several.
        wire_id: String,
    },
    /// Every replica's admission queue is at capacity.
    Busy {
        /// Waiting requests on the least-loaded replica.
        queued: usize,
        /// That replica's admission-queue capacity.
        queue_limit: usize,
    },
    /// Every driver thread is gone (fatal engine errors or shutdown).
    Gone,
}

/// Decrements a replica's in-flight counter when the connection handler
/// that owns the request finishes (however it finishes).
pub(crate) struct InflightGuard<'a> {
    counter: &'a AtomicUsize,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The gateway-side router over N engine drivers.
pub(crate) struct ReplicaPool {
    commands: Vec<Sender<EngineCommand>>,
    index: Mutex<PrefixFingerprintIndex>,
    inflight: Vec<AtomicUsize>,
}

impl ReplicaPool {
    /// Builds a pool over the given per-replica command senders.
    pub fn new(commands: Vec<Sender<EngineCommand>>) -> Self {
        let replicas = commands.len();
        assert!(replicas > 0, "a pool needs at least one replica");
        Self {
            commands,
            index: Mutex::new(PrefixFingerprintIndex::new(
                replicas,
                RouterConfig::default(),
            )),
            inflight: (0..replicas).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Number of replicas behind the pool.
    pub fn replicas(&self) -> usize {
        self.commands.len()
    }

    /// Routes and submits one request. The preferred replica (longest
    /// fingerprint match, or least-loaded for cold prompts) is tried
    /// first; `Busy` replicas are skipped in favour of the next candidate
    /// and only an all-busy pool reports `Busy` upward.
    pub fn submit(&self, spec: SubmitSpec, events: &Sender<GatewayEvent>) -> PoolReply {
        let loads: Vec<usize> = self
            .inflight
            .iter()
            .map(|c| c.load(Ordering::SeqCst))
            .collect();
        let decision = {
            let mut index = self.index.lock().expect("fingerprint index lock");
            index.route(&spec.context, &loads)
        };

        // Candidate order: the routed replica, then the rest least-loaded
        // first (ties to the lower index, matching the in-process router).
        let mut rest: Vec<usize> = (0..self.replicas())
            .filter(|&r| r != decision.replica)
            .collect();
        rest.sort_by_key(|&r| (loads[r], r));
        let candidates = std::iter::once(decision.replica).chain(rest);

        let mut busiest_fallback: Option<(usize, usize)> = None;
        let mut any_alive = false;
        for replica in candidates {
            let (reply_tx, reply_rx) = std::sync::mpsc::channel();
            let sent = self.commands[replica].send(EngineCommand::Submit {
                spec: spec.clone(),
                events: events.clone(),
                reply: reply_tx,
            });
            let Some(reply) = sent.ok().and_then(|()| reply_rx.recv().ok()) else {
                // This driver is dead; try the next one.
                continue;
            };
            any_alive = true;
            match reply {
                SubmitReply::Accepted { id, queue_position } => {
                    {
                        let mut index = self.index.lock().expect("fingerprint index lock");
                        index.record(&spec.context, replica);
                    }
                    self.inflight[replica].fetch_add(1, Ordering::SeqCst);
                    let wire_id = if self.replicas() == 1 {
                        id.to_string()
                    } else {
                        format!("r{replica}:{id}")
                    };
                    return PoolReply::Accepted {
                        replica,
                        id,
                        queue_position,
                        wire_id,
                    };
                }
                SubmitReply::Busy {
                    queued,
                    queue_limit,
                } => {
                    // Remember the shallowest queue for the 429 body.
                    let better = busiest_fallback.map_or(true, |(q, _)| queued < q);
                    if better {
                        busiest_fallback = Some((queued, queue_limit));
                    }
                }
            }
        }
        match (any_alive, busiest_fallback) {
            (true, Some((queued, queue_limit))) => PoolReply::Busy {
                queued,
                queue_limit,
            },
            (true, None) | (false, _) => PoolReply::Gone,
        }
    }

    /// An RAII guard that keeps `replica`'s in-flight count raised until
    /// the owning connection handler finishes.
    pub fn inflight_guard(&self, replica: usize) -> InflightGuard<'_> {
        InflightGuard {
            counter: &self.inflight[replica],
        }
    }

    /// Cancels a request on its owning replica.
    pub fn cancel(&self, replica: usize, id: RequestId) {
        let _ = self.commands[replica].send(EngineCommand::Cancel { id });
    }

    /// Which replicas an admin operation targets, and the path each uses:
    /// a specific replica gets the path verbatim, a fleet-wide operation
    /// over several replicas appends `.{replica}` so the files stay
    /// distinct (a single-replica fleet also uses the path verbatim, so
    /// snapshots taken before scaling out keep restoring).
    fn admin_targets(&self, replica: Option<usize>, path: &str) -> Vec<(usize, String)> {
        match replica {
            Some(r) => vec![(r, path.to_string())],
            None if self.replicas() == 1 => vec![(0, path.to_string())],
            None => (0..self.replicas())
                .map(|r| (r, format!("{path}.{r}")))
                .collect(),
        }
    }

    /// Asks the targeted replicas (one with `Some(replica)`, the whole
    /// fleet with `None`) to write their prefix-cache snapshots. A dead
    /// driver contributes an error row instead of failing the fleet.
    pub fn snapshot(&self, replica: Option<usize>, path: &str) -> AdminSnapshotResponse {
        let replicas = self
            .admin_targets(replica, path)
            .into_iter()
            .map(|(replica, path)| {
                let (reply, rx) = std::sync::mpsc::channel();
                self.commands[replica]
                    .send(EngineCommand::Snapshot {
                        path: path.clone().into(),
                        reply,
                    })
                    .ok()
                    .and_then(|()| rx.recv().ok())
                    .unwrap_or_else(|| ReplicaSnapshotResult {
                        replica,
                        path,
                        bytes: 0,
                        nodes: 0,
                        duration_ms: 0,
                        error: Some("engine driver is gone".to_string()),
                    })
            })
            .collect();
        AdminSnapshotResponse { replicas }
    }

    /// Asks the targeted replicas to restore their prefix caches from
    /// disk. Busy or dead replicas (and unusable snapshots) report
    /// `restored: false` with a reason; the fleet call never fails as a
    /// whole.
    pub fn restore(&self, replica: Option<usize>, path: &str) -> AdminRestoreResponse {
        let replicas = self
            .admin_targets(replica, path)
            .into_iter()
            .map(|(replica, path)| {
                let (reply, rx) = std::sync::mpsc::channel();
                self.commands[replica]
                    .send(EngineCommand::Restore {
                        path: path.clone().into(),
                        reply,
                    })
                    .ok()
                    .and_then(|()| rx.recv().ok())
                    .unwrap_or_else(|| ReplicaRestoreResult {
                        replica,
                        path,
                        restored: false,
                        nodes: 0,
                        resident_bytes: 0,
                        duration_ms: 0,
                        reason: Some("engine driver is gone".to_string()),
                    })
            })
            .collect();
        AdminRestoreResponse { replicas }
    }

    /// Fans a stats query out to every driver and aggregates, keeping the
    /// per-replica breakdown. A dead driver contributes an all-zero row.
    pub fn stats(&self) -> StatsResponse {
        let replicas: Vec<ReplicaStats> = self
            .commands
            .iter()
            .enumerate()
            .map(|(replica, commands)| {
                let (reply, rx) = std::sync::mpsc::channel();
                commands
                    .send(EngineCommand::Stats { reply })
                    .ok()
                    .and_then(|()| rx.recv().ok())
                    .unwrap_or_else(|| ReplicaStats::empty(replica))
            })
            .collect();
        self.aggregate(replicas)
    }

    /// Aggregates per-replica snapshots into the wire shape, attaching
    /// the pool's routing counters.
    pub fn aggregate(&self, replicas: Vec<ReplicaStats>) -> StatsResponse {
        let routing = self.index.lock().expect("fingerprint index lock").stats();
        let mut total = StatsResponse {
            kv_bytes_in_use: 0,
            queued: 0,
            running: 0,
            pinned_prefix_entries: 0,
            prefix_resident_bytes: 0,
            prefix_reused_tokens: 0,
            completed: 0,
            cancelled: 0,
            failed: 0,
            affinity_routed: routing.affinity_routed,
            least_loaded_routed: routing.least_loaded_routed,
            replicas: Vec::new(),
        };
        for r in &replicas {
            total.kv_bytes_in_use += r.kv_bytes_in_use;
            total.queued += r.queued;
            total.running += r.running;
            total.pinned_prefix_entries += r.pinned_prefix_entries;
            total.prefix_resident_bytes += r.prefix_resident_bytes;
            total.prefix_reused_tokens += r.prefix_reused_tokens;
            total.completed += r.completed;
            total.cancelled += r.cancelled;
            total.failed += r.failed;
        }
        total.replicas = replicas;
        total
    }
}
