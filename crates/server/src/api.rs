//! The gateway's JSON wire types.
//!
//! Responses derive the shim `serde::Serialize` and go out via
//! `serde_json::to_string`; requests come back in through hand-written
//! `from_json` constructors over the shim's [`Value`] tree (the shim's
//! `#[derive(Deserialize)]` is a no-op, so parsing is explicit — which
//! also makes the validation-to-400 mapping obvious).

use cocktail_core::SamplingParams;
use serde::Serialize;
use serde_json::Value;

/// A `/api/v1/generate` request body.
///
/// The sampling fields (`temperature` … `seed`) are optional post-v1
/// additions: bodies that omit all of them decode greedily, exactly as
/// before, so old clients keep their byte-identical answers. Any present
/// sampling field switches the request to the seeded sampler chain, with
/// defaults for the rest (see [`GenerateRequest::sampling_params`]).
#[derive(Debug, Clone, Serialize)]
pub struct GenerateRequest {
    /// The document/context to condition on.
    pub context: String,
    /// The query appended after the context.
    pub query: String,
    /// Decode-token budget for the answer.
    pub max_new_tokens: usize,
    /// `true` to stream tokens over SSE instead of one JSON response.
    pub stream: bool,
    /// Optional stop sequence: generation ends early once the streamed
    /// answer contains it.
    pub stop: Option<String>,
    /// Softmax temperature; `0` is greedy. Absent defaults to `1.0` once
    /// any other sampling field is present.
    pub temperature: Option<f32>,
    /// Keep only the `k` highest-logit tokens before the draw.
    pub top_k: Option<usize>,
    /// Nucleus truncation: keep the smallest prefix of the sorted
    /// distribution with cumulative probability `>= top_p`.
    pub top_p: Option<f32>,
    /// CTRL-style repetition penalty over this request's generated
    /// tokens; `1.0` disables.
    pub repetition_penalty: Option<f32>,
    /// Flat logit subtraction for tokens already generated; `0.0`
    /// disables.
    pub presence_penalty: Option<f32>,
    /// Seed of the per-request draw stream. Resubmitting the same body
    /// (same seed included) replays the sampled answer bit-identically.
    pub seed: Option<u64>,
}

/// Hard cap on `max_new_tokens`; larger asks are rejected with a 400
/// before touching the engine.
pub const MAX_NEW_TOKENS_LIMIT: usize = 4096;

impl GenerateRequest {
    /// A non-streaming request with no stop sequence.
    pub fn new(
        context: impl Into<String>,
        query: impl Into<String>,
        max_new_tokens: usize,
    ) -> Self {
        Self {
            context: context.into(),
            query: query.into(),
            max_new_tokens,
            stream: false,
            stop: None,
            temperature: None,
            top_k: None,
            top_p: None,
            repetition_penalty: None,
            presence_penalty: None,
            seed: None,
        }
    }

    /// Switches the request to SSE streaming.
    pub fn streaming(mut self) -> Self {
        self.stream = true;
        self
    }

    /// Attaches a stop sequence.
    pub fn with_stop(mut self, stop: impl Into<String>) -> Self {
        self.stop = Some(stop.into());
        self
    }

    /// Copies a [`SamplingParams`] into the wire fields, switching the
    /// request to seeded sampled decode.
    pub fn with_sampling(mut self, params: &SamplingParams) -> Self {
        self.temperature = Some(params.temperature);
        self.top_k = params.top_k;
        self.top_p = params.top_p;
        self.repetition_penalty = Some(params.repetition_penalty);
        self.presence_penalty = Some(params.presence_penalty);
        self.seed = Some(params.seed);
        self
    }

    /// Assembles the request's sampling configuration: `None` when every
    /// sampling field is absent (greedy decode), otherwise a validated
    /// [`SamplingParams`] with defaults for the omitted fields
    /// (temperature 1, no truncation, no penalties, seed 0).
    ///
    /// # Errors
    ///
    /// Returns the [`SamplingParams::validate`] message when a present
    /// field is out of range (the gateway answers 400 with it).
    pub fn sampling_params(&self) -> Result<Option<SamplingParams>, String> {
        let any = self.temperature.is_some()
            || self.top_k.is_some()
            || self.top_p.is_some()
            || self.repetition_penalty.is_some()
            || self.presence_penalty.is_some()
            || self.seed.is_some();
        if !any {
            return Ok(None);
        }
        let mut params = SamplingParams::seeded(self.seed.unwrap_or(0));
        if let Some(t) = self.temperature {
            params = params.with_temperature(t);
        }
        if let Some(k) = self.top_k {
            params = params.with_top_k(k);
        }
        if let Some(p) = self.top_p {
            params = params.with_top_p(p);
        }
        if let Some(r) = self.repetition_penalty {
            params = params.with_repetition_penalty(r);
        }
        if let Some(p) = self.presence_penalty {
            params = params.with_presence_penalty(p);
        }
        params.validate()?;
        Ok(Some(params))
    }

    /// Serializes the request body.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("request serializes")
    }

    /// Parses and validates a request body.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (the gateway answers 400 with it)
    /// when the body is not a JSON object, a required field is missing or
    /// mistyped, or `max_new_tokens` is zero or above
    /// [`MAX_NEW_TOKENS_LIMIT`].
    pub fn from_json(body: &str) -> Result<Self, String> {
        let value = serde_json::from_str(body).map_err(|e| format!("invalid JSON body: {e}"))?;
        let fields = as_object(&value, "request body")?;
        let context = require_str(fields, "context")?;
        let query = require_str(fields, "query")?;
        let max_new_tokens = require_usize(fields, "max_new_tokens")?;
        if max_new_tokens == 0 {
            return Err("max_new_tokens must be at least 1".to_string());
        }
        if max_new_tokens > MAX_NEW_TOKENS_LIMIT {
            return Err(format!(
                "max_new_tokens {max_new_tokens} exceeds the limit of {MAX_NEW_TOKENS_LIMIT}"
            ));
        }
        let stream = match field(fields, "stream") {
            None | Some(Value::Null) => false,
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err("field \"stream\" must be a boolean".to_string()),
        };
        let stop = match field(fields, "stop") {
            None | Some(Value::Null) => None,
            Some(Value::String(s)) if s.is_empty() => None,
            Some(Value::String(s)) => Some(s.clone()),
            Some(_) => return Err("field \"stop\" must be a string".to_string()),
        };
        let request = Self {
            context,
            query,
            max_new_tokens,
            stream,
            stop,
            temperature: optional_f32(fields, "temperature")?,
            top_k: optional_field_usize(fields, "top_k")?,
            top_p: optional_f32(fields, "top_p")?,
            repetition_penalty: optional_f32(fields, "repetition_penalty")?,
            presence_penalty: optional_f32(fields, "presence_penalty")?,
            seed: optional_u64(fields, "seed")?,
        };
        // Out-of-range sampling values (negative temperature, top_p > 1,
        // …) are a parse failure too, so the gateway rejects them with
        // 400 before the request touches the engine.
        request.sampling_params()?;
        Ok(request)
    }
}

/// The non-streaming `/api/v1/generate` response body.
#[derive(Debug, Clone, Serialize)]
pub struct GenerateResponse {
    /// The engine-assigned request id, e.g. `"req-3"`.
    pub id: String,
    /// The complete generated answer.
    pub answer: String,
    /// Number of committed tokens.
    pub generated_tokens: usize,
    /// Why generation ended: `"length"` or `"stop"`.
    pub finish: String,
}

impl GenerateResponse {
    /// Parses a response body (client side).
    ///
    /// # Errors
    ///
    /// Returns a message when the body is not the documented shape.
    pub fn from_json(body: &str) -> Result<Self, String> {
        let value = serde_json::from_str(body).map_err(|e| format!("invalid JSON: {e}"))?;
        let fields = as_object(&value, "generate response")?;
        Ok(Self {
            id: require_str(fields, "id")?,
            answer: require_str(fields, "answer")?,
            generated_tokens: require_usize(fields, "generated_tokens")?,
            finish: require_str(fields, "finish")?,
        })
    }
}

/// One Server-Sent-Events message on a streaming `/api/v1/generate`
/// response.
///
/// Token events carry `piece` with `done: false`; the stream closes with
/// exactly one `done: true` event whose `finish` tells why (`"length"`,
/// `"stop"`, `"cancelled"`, or `"failed"`, with `error` set for the
/// latter). On `"length"`/`"stop"` the final event also repeats the full
/// `answer`, which clients can check against their concatenated pieces.
#[derive(Debug, Clone, Serialize)]
pub struct StreamEvent {
    /// The engine-assigned request id.
    pub id: String,
    /// Zero-based token index (on token events).
    pub index: usize,
    /// The decoded text piece this token contributed.
    pub piece: String,
    /// `true` on the final event of the stream.
    pub done: bool,
    /// Finish reason, set only when `done`.
    pub finish: Option<String>,
    /// The complete answer, set on successful final events.
    pub answer: Option<String>,
    /// Failure message, set when `finish` is `"failed"`.
    pub error: Option<String>,
}

impl StreamEvent {
    /// A token event.
    pub fn token(id: String, index: usize, piece: String) -> Self {
        Self {
            id,
            index,
            piece,
            done: false,
            finish: None,
            answer: None,
            error: None,
        }
    }

    /// A final event.
    pub fn done(id: String, index: usize, finish: &str, answer: Option<String>) -> Self {
        Self {
            id,
            index,
            piece: String::new(),
            done: true,
            finish: Some(finish.to_string()),
            answer,
            error: None,
        }
    }

    /// Serializes the event payload (one SSE `data:` payload).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("event serializes")
    }

    /// Parses an event payload (client side).
    ///
    /// # Errors
    ///
    /// Returns a message when the payload is not the documented shape.
    pub fn from_json(body: &str) -> Result<Self, String> {
        let value = serde_json::from_str(body).map_err(|e| format!("invalid JSON: {e}"))?;
        let fields = as_object(&value, "stream event")?;
        Ok(Self {
            id: require_str(fields, "id")?,
            index: require_usize(fields, "index")?,
            piece: require_str(fields, "piece")?,
            done: match field(fields, "done") {
                Some(Value::Bool(b)) => *b,
                _ => return Err("field \"done\" must be a boolean".to_string()),
            },
            finish: optional_str(fields, "finish"),
            answer: optional_str(fields, "answer"),
            error: optional_str(fields, "error"),
        })
    }
}

/// One replica's slice of the `/api/v1/stats` snapshot.
///
/// All the per-engine numbers of [`StatsResponse`], labelled with the
/// replica index, so routing quality (where the KV bytes and prefix reuse
/// actually landed) is observable over the wire.
#[derive(Debug, Clone, Serialize)]
pub struct ReplicaStats {
    /// Zero-based replica index.
    pub replica: usize,
    /// Compressed KV bytes held by this replica's requests and cache.
    pub kv_bytes_in_use: usize,
    /// Requests waiting in this replica's admission queue.
    pub queued: usize,
    /// Requests currently decoding on this replica.
    pub running: usize,
    /// Context tokens this replica served from its prefix cache instead
    /// of re-prefilling.
    pub prefix_reused_tokens: usize,
    /// Pinned prefix-cache entries (0 when no cache is configured).
    pub pinned_prefix_entries: usize,
    /// Bytes held by this replica's resident prefix-cache blocks.
    pub prefix_resident_bytes: usize,
    /// Requests this replica completed since the server started.
    pub completed: usize,
    /// Requests this replica cancelled since the server started.
    pub cancelled: usize,
    /// Requests this replica failed since the server started.
    pub failed: usize,
}

impl ReplicaStats {
    /// An all-zero snapshot for the given replica index.
    pub fn empty(replica: usize) -> Self {
        Self {
            replica,
            kv_bytes_in_use: 0,
            queued: 0,
            running: 0,
            prefix_reused_tokens: 0,
            pinned_prefix_entries: 0,
            prefix_resident_bytes: 0,
            completed: 0,
            cancelled: 0,
            failed: 0,
        }
    }

    fn from_value(value: &Value) -> Result<Self, String> {
        let fields = as_object(value, "replica stats entry")?;
        Ok(Self {
            replica: require_usize(fields, "replica")?,
            kv_bytes_in_use: require_usize(fields, "kv_bytes_in_use")?,
            queued: require_usize(fields, "queued")?,
            running: require_usize(fields, "running")?,
            prefix_reused_tokens: require_usize(fields, "prefix_reused_tokens")?,
            pinned_prefix_entries: require_usize(fields, "pinned_prefix_entries")?,
            prefix_resident_bytes: require_usize(fields, "prefix_resident_bytes")?,
            completed: require_usize(fields, "completed")?,
            cancelled: require_usize(fields, "cancelled")?,
            failed: require_usize(fields, "failed")?,
        })
    }
}

/// The `/api/v1/stats` response body: a live snapshot of the engine fleet,
/// used by tests to assert zero leaked bytes/pins after disconnect storms.
///
/// The top-level counters aggregate across replicas; `replicas` breaks
/// them down per engine, and the two `*_routed` counters say how each
/// accepted request chose its replica.
#[derive(Debug, Clone, Serialize)]
pub struct StatsResponse {
    /// Compressed KV bytes held by admitted requests and resident cache.
    pub kv_bytes_in_use: usize,
    /// Requests waiting in the admission queue.
    pub queued: usize,
    /// Requests currently decoding.
    pub running: usize,
    /// Pinned prefix-cache entries (0 when no cache is configured).
    pub pinned_prefix_entries: usize,
    /// Bytes held by resident prefix-cache blocks (0 when no cache is
    /// configured). Subtracting these from `kv_bytes_in_use` gives the
    /// bytes held by requests themselves — the number that must return
    /// to zero once traffic drains.
    pub prefix_resident_bytes: usize,
    /// Context tokens served from prefix caches instead of re-prefilled,
    /// summed across replicas.
    pub prefix_reused_tokens: usize,
    /// Requests completed since the server started.
    pub completed: usize,
    /// Requests cancelled (client disconnects) since the server started.
    pub cancelled: usize,
    /// Requests failed since the server started.
    pub failed: usize,
    /// Requests routed by prefix affinity (a fingerprint-index hit).
    pub affinity_routed: usize,
    /// Requests routed by least-loaded fallback (cold prompts).
    pub least_loaded_routed: usize,
    /// Per-replica breakdown, one entry per engine, in replica order.
    pub replicas: Vec<ReplicaStats>,
}

impl StatsResponse {
    /// Parses a stats body (client side).
    ///
    /// The routing fields (`prefix_reused_tokens`, `*_routed`,
    /// `replicas`) are optional on the wire so pre-multi-replica bodies
    /// still parse; they default to zero/empty.
    ///
    /// # Errors
    ///
    /// Returns a message when the body is not the documented shape.
    pub fn from_json(body: &str) -> Result<Self, String> {
        let value = serde_json::from_str(body).map_err(|e| format!("invalid JSON: {e}"))?;
        let fields = as_object(&value, "stats response")?;
        let replicas = match field(fields, "replicas") {
            None | Some(Value::Null) => Vec::new(),
            Some(Value::Array(entries)) => entries
                .iter()
                .map(ReplicaStats::from_value)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("field \"replicas\" must be an array".to_string()),
        };
        Ok(Self {
            kv_bytes_in_use: require_usize(fields, "kv_bytes_in_use")?,
            queued: require_usize(fields, "queued")?,
            running: require_usize(fields, "running")?,
            pinned_prefix_entries: require_usize(fields, "pinned_prefix_entries")?,
            prefix_resident_bytes: require_usize(fields, "prefix_resident_bytes")?,
            prefix_reused_tokens: optional_usize(fields, "prefix_reused_tokens")?,
            completed: require_usize(fields, "completed")?,
            cancelled: require_usize(fields, "cancelled")?,
            failed: require_usize(fields, "failed")?,
            affinity_routed: optional_usize(fields, "affinity_routed")?,
            least_loaded_routed: optional_usize(fields, "least_loaded_routed")?,
            replicas,
        })
    }
}

/// The `GET /api/v1/version` response body: what the server is and which
/// wire formats it speaks.
#[derive(Debug, Clone, Serialize)]
pub struct VersionResponse {
    /// The `cocktail_server` crate version.
    pub crate_version: String,
    /// The HTTP API version prefix, currently `"v1"`.
    pub api_version: String,
    /// The KV snapshot format version this server reads and writes
    /// (`cocktail_kvcache::SNAPSHOT_FORMAT_VERSION`).
    pub snapshot_format: usize,
}

impl VersionResponse {
    /// The version report for this build.
    pub fn current() -> Self {
        Self {
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            api_version: "v1".to_string(),
            snapshot_format: cocktail_core::SNAPSHOT_FORMAT_VERSION as usize,
        }
    }

    /// Parses a version body (client side).
    ///
    /// # Errors
    ///
    /// Returns a message when the body is not the documented shape.
    pub fn from_json(body: &str) -> Result<Self, String> {
        let value = serde_json::from_str(body).map_err(|e| format!("invalid JSON: {e}"))?;
        let fields = as_object(&value, "version response")?;
        Ok(Self {
            crate_version: require_str(fields, "crate_version")?,
            api_version: require_str(fields, "api_version")?,
            snapshot_format: require_usize(fields, "snapshot_format")?,
        })
    }
}

/// A `POST /api/v1/admin/snapshot` or `/api/v1/admin/restore` request
/// body: where on the server's filesystem the snapshot lives.
#[derive(Debug, Clone, Serialize)]
pub struct SnapshotRequest {
    /// Server-side snapshot path. Fleet-wide operations (no `?replica=`
    /// with several replicas) derive per-replica paths by appending
    /// `.{replica}`.
    pub path: String,
}

impl SnapshotRequest {
    /// A request for the given server-side path.
    pub fn new(path: impl Into<String>) -> Self {
        Self { path: path.into() }
    }

    /// Serializes the request body.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("request serializes")
    }

    /// Parses and validates a request body.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (the gateway answers 400 with it)
    /// when the body is not a JSON object or `path` is missing or empty.
    pub fn from_json(body: &str) -> Result<Self, String> {
        let value = serde_json::from_str(body).map_err(|e| format!("invalid JSON body: {e}"))?;
        let fields = as_object(&value, "request body")?;
        let path = require_str(fields, "path")?;
        if path.is_empty() {
            return Err("field \"path\" must not be empty".to_string());
        }
        Ok(Self { path })
    }
}

/// One replica's slice of an admin snapshot response.
#[derive(Debug, Clone, Serialize)]
pub struct ReplicaSnapshotResult {
    /// Zero-based replica index.
    pub replica: usize,
    /// The server-side path this replica's snapshot was written to.
    pub path: String,
    /// Snapshot size in bytes (0 on error).
    pub bytes: usize,
    /// Trie nodes captured (0 on error).
    pub nodes: usize,
    /// Wall-clock milliseconds spent writing the snapshot.
    pub duration_ms: usize,
    /// Set when the snapshot failed (e.g. an unwritable path); the other
    /// numeric fields are zero then.
    pub error: Option<String>,
}

impl ReplicaSnapshotResult {
    fn from_value(value: &Value) -> Result<Self, String> {
        let fields = as_object(value, "snapshot result entry")?;
        Ok(Self {
            replica: require_usize(fields, "replica")?,
            path: require_str(fields, "path")?,
            bytes: require_usize(fields, "bytes")?,
            nodes: require_usize(fields, "nodes")?,
            duration_ms: require_usize(fields, "duration_ms")?,
            error: optional_str(fields, "error"),
        })
    }
}

/// The `POST /api/v1/admin/snapshot` response body: one entry per replica
/// the operation touched (one with `?replica=N`, all otherwise).
#[derive(Debug, Clone, Serialize)]
pub struct AdminSnapshotResponse {
    /// Per-replica results, in replica order.
    pub replicas: Vec<ReplicaSnapshotResult>,
}

impl AdminSnapshotResponse {
    /// Parses a snapshot-response body (client side).
    ///
    /// # Errors
    ///
    /// Returns a message when the body is not the documented shape.
    pub fn from_json(body: &str) -> Result<Self, String> {
        let value = serde_json::from_str(body).map_err(|e| format!("invalid JSON: {e}"))?;
        let fields = as_object(&value, "admin snapshot response")?;
        match field(fields, "replicas") {
            Some(Value::Array(entries)) => Ok(Self {
                replicas: entries
                    .iter()
                    .map(ReplicaSnapshotResult::from_value)
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            _ => Err("field \"replicas\" must be an array".to_string()),
        }
    }
}

/// One replica's slice of an admin restore response. Restores never fail
/// the request: an unusable snapshot (missing file, corruption, config
/// mismatch) or a busy replica reports `restored: false` with the reason
/// and the replica keeps serving from whatever state it had.
#[derive(Debug, Clone, Serialize)]
pub struct ReplicaRestoreResult {
    /// Zero-based replica index.
    pub replica: usize,
    /// The server-side path this replica restored from.
    pub path: String,
    /// `true` when the snapshot was loaded into the prefix cache.
    pub restored: bool,
    /// Trie nodes now resident (0 when not restored).
    pub nodes: usize,
    /// Bytes held by the restored prefix blocks.
    pub resident_bytes: usize,
    /// Wall-clock milliseconds spent restoring.
    pub duration_ms: usize,
    /// Why the restore was skipped, when `restored` is `false`.
    pub reason: Option<String>,
}

impl ReplicaRestoreResult {
    fn from_value(value: &Value) -> Result<Self, String> {
        let fields = as_object(value, "restore result entry")?;
        Ok(Self {
            replica: require_usize(fields, "replica")?,
            path: require_str(fields, "path")?,
            restored: match field(fields, "restored") {
                Some(Value::Bool(b)) => *b,
                _ => return Err("field \"restored\" must be a boolean".to_string()),
            },
            nodes: require_usize(fields, "nodes")?,
            resident_bytes: require_usize(fields, "resident_bytes")?,
            duration_ms: require_usize(fields, "duration_ms")?,
            reason: optional_str(fields, "reason"),
        })
    }
}

/// The `POST /api/v1/admin/restore` response body: one entry per replica
/// the operation touched.
#[derive(Debug, Clone, Serialize)]
pub struct AdminRestoreResponse {
    /// Per-replica results, in replica order.
    pub replicas: Vec<ReplicaRestoreResult>,
}

impl AdminRestoreResponse {
    /// Parses a restore-response body (client side).
    ///
    /// # Errors
    ///
    /// Returns a message when the body is not the documented shape.
    pub fn from_json(body: &str) -> Result<Self, String> {
        let value = serde_json::from_str(body).map_err(|e| format!("invalid JSON: {e}"))?;
        let fields = as_object(&value, "admin restore response")?;
        match field(fields, "replicas") {
            Some(Value::Array(entries)) => Ok(Self {
                replicas: entries
                    .iter()
                    .map(ReplicaRestoreResult::from_value)
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            _ => Err("field \"replicas\" must be an array".to_string()),
        }
    }
}

/// An error response body, used for every non-2xx answer.
#[derive(Debug, Clone, Serialize)]
pub struct ErrorResponse {
    /// Human-readable description of what went wrong.
    pub error: String,
    /// On 429: how many requests are already waiting (the position a
    /// retry would join behind).
    pub queued: Option<usize>,
    /// On 429: the admission-queue capacity.
    pub queue_limit: Option<usize>,
}

impl ErrorResponse {
    /// A plain error with no queue information.
    pub fn new(error: impl Into<String>) -> Self {
        Self {
            error: error.into(),
            queued: None,
            queue_limit: None,
        }
    }

    /// A 429 backpressure error carrying queue depth and capacity.
    pub fn backpressure(queued: usize, queue_limit: usize) -> Self {
        Self {
            error: format!(
                "admission queue is full ({queued}/{queue_limit} waiting); retry shortly"
            ),
            queued: Some(queued),
            queue_limit: Some(queue_limit),
        }
    }

    /// Serializes the error body.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("error serializes")
    }

    /// Parses an error body (client side). Unlike the other parsers this
    /// never fails: anything unrecognisable becomes the error text.
    pub fn from_json(body: &str) -> Self {
        let Ok(value) = serde_json::from_str(body) else {
            return Self::new(body.to_string());
        };
        let Ok(fields) = as_object(&value, "error response") else {
            return Self::new(body.to_string());
        };
        Self {
            error: require_str(fields, "error").unwrap_or_else(|_| body.to_string()),
            queued: require_usize(fields, "queued").ok(),
            queue_limit: require_usize(fields, "queue_limit").ok(),
        }
    }
}

fn as_object<'a>(value: &'a Value, what: &str) -> Result<&'a [(String, Value)], String> {
    match value {
        Value::Object(fields) => Ok(fields),
        _ => Err(format!("{what} must be a JSON object")),
    }
}

fn field<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
}

fn require_str(fields: &[(String, Value)], name: &str) -> Result<String, String> {
    match field(fields, name) {
        Some(Value::String(s)) => Ok(s.clone()),
        Some(_) => Err(format!("field {name:?} must be a string")),
        None => Err(format!("missing required field {name:?}")),
    }
}

fn optional_str(fields: &[(String, Value)], name: &str) -> Option<String> {
    match field(fields, name) {
        Some(Value::String(s)) => Some(s.clone()),
        _ => None,
    }
}

fn require_usize(fields: &[(String, Value)], name: &str) -> Result<usize, String> {
    match field(fields, name) {
        Some(Value::Int(i)) if *i >= 0 => {
            usize::try_from(*i).map_err(|_| format!("field {name:?} is out of range"))
        }
        Some(_) => Err(format!("field {name:?} must be a non-negative integer")),
        None => Err(format!("missing required field {name:?}")),
    }
}

/// Like [`require_usize`] but an absent field reads as zero (fields added
/// after the v1 wire format).
fn optional_usize(fields: &[(String, Value)], name: &str) -> Result<usize, String> {
    match field(fields, name) {
        None | Some(Value::Null) => Ok(0),
        _ => require_usize(fields, name),
    }
}

/// An optional numeric field that stays `None` when absent (post-v1
/// sampling fields, where absence means "greedy", not "zero").
fn optional_field_usize(fields: &[(String, Value)], name: &str) -> Result<Option<usize>, String> {
    match field(fields, name) {
        None | Some(Value::Null) => Ok(None),
        _ => require_usize(fields, name).map(Some),
    }
}

/// An optional float field; integers are accepted too (`"temperature": 1`
/// is valid JSON for `1.0`).
fn optional_f32(fields: &[(String, Value)], name: &str) -> Result<Option<f32>, String> {
    match field(fields, name) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Int(i)) => Ok(Some(*i as f32)),
        Some(Value::Float(f)) => Ok(Some(*f as f32)),
        Some(_) => Err(format!("field {name:?} must be a number")),
    }
}

/// An optional unsigned 64-bit field (draw seeds).
fn optional_u64(fields: &[(String, Value)], name: &str) -> Result<Option<u64>, String> {
    match field(fields, name) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Int(i)) if *i >= 0 => Ok(Some(*i as u64)),
        Some(_) => Err(format!("field {name:?} must be a non-negative integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_request_round_trips() {
        let req = GenerateRequest::new("ctx", "q", 8)
            .streaming()
            .with_stop("the");
        let parsed = GenerateRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(parsed.context, "ctx");
        assert_eq!(parsed.query, "q");
        assert_eq!(parsed.max_new_tokens, 8);
        assert!(parsed.stream);
        assert_eq!(parsed.stop.as_deref(), Some("the"));
    }

    #[test]
    fn generate_request_validation_catches_bad_bodies() {
        for bad in [
            "not json",
            "[1,2]",
            "{\"query\":\"q\",\"max_new_tokens\":4}",
            "{\"context\":\"c\",\"query\":\"q\"}",
            "{\"context\":\"c\",\"query\":\"q\",\"max_new_tokens\":0}",
            "{\"context\":\"c\",\"query\":\"q\",\"max_new_tokens\":99999}",
            "{\"context\":\"c\",\"query\":\"q\",\"max_new_tokens\":-2}",
            "{\"context\":\"c\",\"query\":\"q\",\"max_new_tokens\":4,\"stream\":\"yes\"}",
            "{\"context\":\"c\",\"query\":\"q\",\"max_new_tokens\":4,\"stop\":7}",
        ] {
            assert!(GenerateRequest::from_json(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn sampling_fields_round_trip_through_the_json_shim() {
        let params = SamplingParams::seeded(42)
            .with_temperature(0.75)
            .with_top_k(20)
            .with_top_p(0.9)
            .with_repetition_penalty(1.2)
            .with_presence_penalty(0.5);
        let req = GenerateRequest::new("ctx", "q", 8).with_sampling(&params);
        let parsed = GenerateRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(parsed.temperature, Some(0.75));
        assert_eq!(parsed.top_k, Some(20));
        assert_eq!(parsed.top_p, Some(0.9));
        assert_eq!(parsed.repetition_penalty, Some(1.2));
        assert_eq!(parsed.presence_penalty, Some(0.5));
        assert_eq!(parsed.seed, Some(42));
        let rebuilt = parsed.sampling_params().unwrap().expect("sampled");
        assert_eq!(rebuilt, params);
    }

    #[test]
    fn absent_sampling_fields_mean_greedy_and_unknown_fields_are_ignored() {
        // A pre-sampling v1 body parses as a greedy request.
        let v1 = "{\"context\":\"c\",\"query\":\"q\",\"max_new_tokens\":4}";
        let parsed = GenerateRequest::from_json(v1).unwrap();
        assert_eq!(parsed.sampling_params().unwrap(), None);
        // Unknown fields from a newer client are ignored, not rejected.
        let newer = "{\"context\":\"c\",\"query\":\"q\",\"max_new_tokens\":4,\
                     \"future_knob\":true,\"seed\":7}";
        let parsed = GenerateRequest::from_json(newer).unwrap();
        let params = parsed.sampling_params().unwrap().expect("seed present");
        assert_eq!(params.seed, 7);
        assert_eq!(params.temperature, 1.0);
        // A bare integer temperature is accepted as a float.
        let int_temp = "{\"context\":\"c\",\"query\":\"q\",\"max_new_tokens\":4,\
                        \"temperature\":1}";
        let parsed = GenerateRequest::from_json(int_temp).unwrap();
        assert_eq!(parsed.temperature, Some(1.0));
    }

    #[test]
    fn invalid_sampling_params_fail_parsing() {
        for bad in [
            "{\"context\":\"c\",\"query\":\"q\",\"max_new_tokens\":4,\"temperature\":-0.5}",
            "{\"context\":\"c\",\"query\":\"q\",\"max_new_tokens\":4,\"top_p\":1.5}",
            "{\"context\":\"c\",\"query\":\"q\",\"max_new_tokens\":4,\"top_p\":0}",
            "{\"context\":\"c\",\"query\":\"q\",\"max_new_tokens\":4,\"top_k\":0}",
            "{\"context\":\"c\",\"query\":\"q\",\"max_new_tokens\":4,\"top_k\":-3}",
            "{\"context\":\"c\",\"query\":\"q\",\"max_new_tokens\":4,\"repetition_penalty\":0}",
            "{\"context\":\"c\",\"query\":\"q\",\"max_new_tokens\":4,\"presence_penalty\":-1}",
            "{\"context\":\"c\",\"query\":\"q\",\"max_new_tokens\":4,\"seed\":-1}",
            "{\"context\":\"c\",\"query\":\"q\",\"max_new_tokens\":4,\"temperature\":\"hot\"}",
        ] {
            assert!(GenerateRequest::from_json(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn stream_events_round_trip() {
        let token = StreamEvent::token("req-1".into(), 3, " beam".into());
        let parsed = StreamEvent::from_json(&token.to_json()).unwrap();
        assert_eq!(parsed.piece, " beam");
        assert!(!parsed.done);
        let done = StreamEvent::done("req-1".into(), 4, "stop", Some("answer".into()));
        let parsed = StreamEvent::from_json(&done.to_json()).unwrap();
        assert!(parsed.done);
        assert_eq!(parsed.finish.as_deref(), Some("stop"));
        assert_eq!(parsed.answer.as_deref(), Some("answer"));
    }

    #[test]
    fn stats_round_trip_keeps_the_per_replica_breakdown() {
        let mut first = ReplicaStats::empty(0);
        first.kv_bytes_in_use = 640;
        first.prefix_reused_tokens = 17;
        let mut second = ReplicaStats::empty(1);
        second.queued = 2;
        let stats = StatsResponse {
            kv_bytes_in_use: 640,
            queued: 2,
            running: 0,
            pinned_prefix_entries: 0,
            prefix_resident_bytes: 0,
            prefix_reused_tokens: 17,
            completed: 5,
            cancelled: 1,
            failed: 0,
            affinity_routed: 4,
            least_loaded_routed: 2,
            replicas: vec![first, second],
        };
        let parsed = StatsResponse::from_json(&serde_json::to_string(&stats).unwrap()).unwrap();
        assert_eq!(parsed.replicas.len(), 2);
        assert_eq!(parsed.replicas[0].kv_bytes_in_use, 640);
        assert_eq!(parsed.replicas[0].prefix_reused_tokens, 17);
        assert_eq!(parsed.replicas[1].queued, 2);
        assert_eq!(parsed.affinity_routed, 4);
        assert_eq!(parsed.least_loaded_routed, 2);
        assert_eq!(parsed.prefix_reused_tokens, 17);
    }

    #[test]
    fn stats_parsing_tolerates_pre_replica_bodies() {
        let v1 = "{\"kv_bytes_in_use\":0,\"queued\":0,\"running\":0,\
                  \"pinned_prefix_entries\":0,\"prefix_resident_bytes\":0,\
                  \"completed\":3,\"cancelled\":0,\"failed\":0}";
        let parsed = StatsResponse::from_json(v1).unwrap();
        assert_eq!(parsed.completed, 3);
        assert_eq!(parsed.prefix_reused_tokens, 0);
        assert_eq!(parsed.affinity_routed, 0);
        assert!(parsed.replicas.is_empty());
    }

    #[test]
    fn version_response_round_trips() {
        let version = VersionResponse::current();
        let parsed = VersionResponse::from_json(&serde_json::to_string(&version).unwrap()).unwrap();
        assert_eq!(parsed.api_version, "v1");
        assert_eq!(parsed.crate_version, env!("CARGO_PKG_VERSION"));
        assert_eq!(
            parsed.snapshot_format,
            cocktail_core::SNAPSHOT_FORMAT_VERSION as usize
        );
    }

    #[test]
    fn snapshot_request_requires_a_path() {
        let req = SnapshotRequest::new("/tmp/x.snap");
        let parsed = SnapshotRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(parsed.path, "/tmp/x.snap");
        for bad in ["{}", "{\"path\":\"\"}", "{\"path\":7}", "[]", "not json"] {
            assert!(SnapshotRequest::from_json(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn admin_responses_round_trip() {
        let snap = AdminSnapshotResponse {
            replicas: vec![ReplicaSnapshotResult {
                replica: 0,
                path: "/tmp/x.snap.0".into(),
                bytes: 4096,
                nodes: 3,
                duration_ms: 2,
                error: None,
            }],
        };
        let parsed =
            AdminSnapshotResponse::from_json(&serde_json::to_string(&snap).unwrap()).unwrap();
        assert_eq!(parsed.replicas.len(), 1);
        assert_eq!(parsed.replicas[0].bytes, 4096);
        assert!(parsed.replicas[0].error.is_none());

        let restore = AdminRestoreResponse {
            replicas: vec![ReplicaRestoreResult {
                replica: 1,
                path: "/tmp/x.snap.1".into(),
                restored: false,
                nodes: 0,
                resident_bytes: 0,
                duration_ms: 0,
                reason: Some("replica busy".into()),
            }],
        };
        let parsed =
            AdminRestoreResponse::from_json(&serde_json::to_string(&restore).unwrap()).unwrap();
        assert!(!parsed.replicas[0].restored);
        assert_eq!(parsed.replicas[0].reason.as_deref(), Some("replica busy"));
    }

    #[test]
    fn backpressure_error_carries_queue_depth() {
        let err = ErrorResponse::backpressure(3, 4);
        let parsed = ErrorResponse::from_json(&err.to_json());
        assert_eq!(parsed.queued, Some(3));
        assert_eq!(parsed.queue_limit, Some(4));
    }
}
