//! A small blocking HTTP client for the gateway, used by the integration
//! tests, the load generator, and the `gateway_saturation` experiment.
//!
//! It speaks exactly the gateway's dialect — fixed-length JSON responses
//! and chunked SSE streams — over plain [`TcpStream`]s, and exposes the
//! one anti-feature a well-behaved client library never would:
//! [`StreamHandle::abort`], dropping the socket mid-stream to exercise
//! the server's disconnect-cancel path.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::api::{
    AdminRestoreResponse, AdminSnapshotResponse, ErrorResponse, GenerateRequest, GenerateResponse,
    SnapshotRequest, StatsResponse, StreamEvent, VersionResponse,
};
use crate::http::{parse_response_head, ChunkedDecoder, ResponseHead, SseParser};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server answered, but not in the documented shape.
    Protocol(String),
    /// A non-2xx answer, with its parsed error body.
    Status {
        /// The HTTP status code.
        status: u16,
        /// The parsed error body.
        error: ErrorResponse,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Status { status, error } => {
                write!(f, "server answered {status}: {}", error.error)
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A raw response, for tests that poke the server with hand-built bytes.
#[derive(Debug)]
pub struct RawResponse {
    /// The status code.
    pub status: u16,
    /// Response headers.
    pub headers: Vec<(String, String)>,
    /// The (fixed-length) body.
    pub body: Vec<u8>,
}

impl RawResponse {
    /// The body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Blocking gateway client bound to one server address. Each call opens a
/// fresh connection (the gateway also supports keep-alive and pipelining,
/// which the raw-byte tests exercise directly).
#[derive(Debug, Clone)]
pub struct GatewayClient {
    addr: SocketAddr,
    timeout: Duration,
}

impl GatewayClient {
    /// A client for the given gateway address.
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            timeout: Duration::from_secs(60),
        }
    }

    /// Overrides the per-read socket timeout (default 60 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    fn connect(&self) -> Result<TcpStream, ClientError> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        Ok(stream)
    }

    /// POSTs a non-streaming generate request and waits for the answer.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] on any non-200 (429 backpressure included),
    /// [`ClientError::Io`]/[`ClientError::Protocol`] on transport trouble.
    pub fn generate(&self, request: &GenerateRequest) -> Result<GenerateResponse, ClientError> {
        let mut request = request.clone();
        request.stream = false;
        let (head, body) = self.post_json("/api/v1/generate", &request.to_json())?;
        expect_ok(&head, &body)?;
        GenerateResponse::from_json(&body).map_err(ClientError::Protocol)
    }

    fn get_json(&self, path: &str) -> Result<(ResponseHead, String), ClientError> {
        let mut stream = self.connect()?;
        let raw = format!(
            "GET {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            self.addr
        );
        stream.write_all(raw.as_bytes())?;
        read_fixed_response(&mut stream)
    }

    /// GETs the engine snapshot.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`GatewayClient::generate`].
    pub fn stats(&self) -> Result<StatsResponse, ClientError> {
        let (head, body) = self.get_json("/api/v1/stats")?;
        expect_ok(&head, &body)?;
        StatsResponse::from_json(&body).map_err(ClientError::Protocol)
    }

    /// GETs `/api/v1/version`: crate, API, and snapshot-format versions.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`GatewayClient::generate`].
    pub fn version(&self) -> Result<VersionResponse, ClientError> {
        let (head, body) = self.get_json("/api/v1/version")?;
        expect_ok(&head, &body)?;
        VersionResponse::from_json(&body).map_err(ClientError::Protocol)
    }

    fn admin_path(endpoint: &str, replica: Option<usize>) -> String {
        match replica {
            Some(r) => format!("/api/v1/admin/{endpoint}?replica={r}"),
            None => format!("/api/v1/admin/{endpoint}"),
        }
    }

    /// POSTs `/api/v1/admin/snapshot`: writes the targeted replicas'
    /// prefix-cache snapshots to `path` on the *server's* filesystem
    /// (`None` targets the whole fleet).
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] on 400 (bad selector/body) and 500 (a
    /// replica failed to write); transport errors otherwise.
    pub fn admin_snapshot(
        &self,
        path: &str,
        replica: Option<usize>,
    ) -> Result<AdminSnapshotResponse, ClientError> {
        let target = Self::admin_path("snapshot", replica);
        let (head, body) = self.post_json(&target, &SnapshotRequest::new(path).to_json())?;
        expect_ok(&head, &body)?;
        AdminSnapshotResponse::from_json(&body).map_err(ClientError::Protocol)
    }

    /// POSTs `/api/v1/admin/restore`: restores the targeted replicas'
    /// prefix caches from `path` on the server's filesystem. Always 200 on
    /// a well-formed request — per-replica failures (busy, missing file,
    /// corrupt or mismatched snapshot) come back as `restored: false` rows
    /// with a reason.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] on 400, transport errors otherwise.
    pub fn admin_restore(
        &self,
        path: &str,
        replica: Option<usize>,
    ) -> Result<AdminRestoreResponse, ClientError> {
        let target = Self::admin_path("restore", replica);
        let (head, body) = self.post_json(&target, &SnapshotRequest::new(path).to_json())?;
        expect_ok(&head, &body)?;
        AdminRestoreResponse::from_json(&body).map_err(ClientError::Protocol)
    }

    /// Opens an SSE stream for the request (forcing `stream: true`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] when the server rejects the request before
    /// streaming starts (400/429), transport errors otherwise.
    pub fn open_stream(&self, request: &GenerateRequest) -> Result<StreamHandle, ClientError> {
        let mut request = request.clone();
        request.stream = true;
        let body = request.to_json();
        let mut stream = self.connect()?;
        let raw = format!(
            "POST /api/v1/generate HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{}",
            self.addr,
            body.len(),
            body
        );
        stream.write_all(raw.as_bytes())?;
        let (head, leftover) = read_head(&mut stream)?;
        if head.status != 200 {
            // Error responses are fixed-length JSON even on this path.
            let body = read_declared_body(&mut stream, &head, leftover)?;
            return Err(ClientError::Status {
                status: head.status,
                error: ErrorResponse::from_json(&body),
            });
        }
        let chunked = matches!(
            head.header("transfer-encoding"),
            Some(v) if v.eq_ignore_ascii_case("chunked")
        );
        if !chunked {
            return Err(ClientError::Protocol(
                "stream response is not chunked".to_string(),
            ));
        }
        let mut handle = StreamHandle {
            stream,
            decoder: ChunkedDecoder::new(),
            sse: SseParser::new(),
            events: Vec::new(),
            answer: String::new(),
            finished: false,
        };
        handle
            .decoder
            .push(&leftover)
            .map_err(ClientError::Protocol)?;
        Ok(handle)
    }

    /// Sends raw bytes and reads one response — the hook for malformed-
    /// request and pipelining tests. `\n`-separated pipelined requests can
    /// be sent in one call and read back with repeated invocations of the
    /// returned reader.
    ///
    /// # Errors
    ///
    /// Transport errors only; non-2xx statuses come back as data.
    pub fn send_raw(&self, bytes: &[u8]) -> Result<RawResponse, ClientError> {
        let mut responses = self.send_raw_pipelined(bytes, 1)?;
        Ok(responses.remove(0))
    }

    /// Sends raw bytes carrying `count` pipelined requests and reads that
    /// many responses off the single connection, in order.
    ///
    /// # Errors
    ///
    /// Transport errors, or a short/unparseable response sequence.
    pub fn send_raw_pipelined(
        &self,
        bytes: &[u8],
        count: usize,
    ) -> Result<Vec<RawResponse>, ClientError> {
        let mut stream = self.connect()?;
        stream.write_all(bytes)?;
        let mut responses = Vec::with_capacity(count);
        let mut buffer: Vec<u8> = Vec::new();
        for _ in 0..count {
            let (head, body) = read_fixed_response_buffered(&mut stream, &mut buffer)?;
            responses.push(RawResponse {
                status: head.status,
                headers: head.headers,
                body: body.into_bytes(),
            });
        }
        Ok(responses)
    }
}

fn expect_ok(head: &ResponseHead, body: &str) -> Result<(), ClientError> {
    if head.status == 200 {
        Ok(())
    } else {
        Err(ClientError::Status {
            status: head.status,
            error: ErrorResponse::from_json(body),
        })
    }
}

fn post_body(addr: SocketAddr, path: &str, json: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{json}",
        json.len()
    )
}

impl GatewayClient {
    fn post_json(&self, path: &str, json: &str) -> Result<(ResponseHead, String), ClientError> {
        let mut stream = self.connect()?;
        stream.write_all(post_body(self.addr, path, json).as_bytes())?;
        read_fixed_response(&mut stream)
    }
}

/// Reads a response head, returning it plus any body bytes that arrived
/// in the same reads.
fn read_head(stream: &mut TcpStream) -> Result<(ResponseHead, Vec<u8>), ClientError> {
    let mut buffer = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some((head, consumed)) =
            parse_response_head(&buffer).map_err(ClientError::Protocol)?
        {
            return Ok((head, buffer[consumed..].to_vec()));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "connection closed before a response head".to_string(),
            ));
        }
        buffer.extend_from_slice(&chunk[..n]);
    }
}

fn read_declared_body(
    stream: &mut TcpStream,
    head: &ResponseHead,
    mut buffered: Vec<u8>,
) -> Result<String, ClientError> {
    let declared: usize = head
        .header("content-length")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ClientError::Protocol("response has no Content-Length".to_string()))?;
    let mut chunk = [0u8; 4096];
    while buffered.len() < declared {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buffered.extend_from_slice(&chunk[..n]);
    }
    if buffered.len() < declared {
        return Err(ClientError::Protocol(
            "response body was cut short".to_string(),
        ));
    }
    buffered.truncate(declared);
    String::from_utf8(buffered)
        .map_err(|_| ClientError::Protocol("response body is not UTF-8".to_string()))
}

fn read_fixed_response(stream: &mut TcpStream) -> Result<(ResponseHead, String), ClientError> {
    let mut buffer = Vec::new();
    read_fixed_response_buffered(stream, &mut buffer)
}

/// Reads one fixed-length response, keeping surplus bytes (the next
/// pipelined response) in `buffer`.
fn read_fixed_response_buffered(
    stream: &mut TcpStream,
    buffer: &mut Vec<u8>,
) -> Result<(ResponseHead, String), ClientError> {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some((head, consumed)) =
            parse_response_head(buffer).map_err(ClientError::Protocol)?
        {
            let declared: usize = head
                .header("content-length")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            while buffer.len() < consumed + declared {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(ClientError::Protocol("response body was cut short".into()));
                }
                buffer.extend_from_slice(&chunk[..n]);
            }
            let body_bytes: Vec<u8> = buffer[consumed..consumed + declared].to_vec();
            buffer.drain(..consumed + declared);
            let body = String::from_utf8(body_bytes)
                .map_err(|_| ClientError::Protocol("response body is not UTF-8".to_string()))?;
            return Ok((head, body));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "connection closed before a response head".to_string(),
            ));
        }
        buffer.extend_from_slice(&chunk[..n]);
    }
}

/// How a consumed stream ended.
#[derive(Debug)]
pub struct StreamOutcome {
    /// Concatenation of every token piece received.
    pub streamed: String,
    /// The final event's `finish` field.
    pub finish: String,
    /// The server's authoritative answer from the final event (set on
    /// `length`/`stop` finishes).
    pub answer: Option<String>,
    /// Failure message when `finish` is `"failed"`.
    pub error: Option<String>,
    /// Number of token events received.
    pub token_events: usize,
}

/// A live SSE stream. Pull events with [`StreamHandle::next_event`], run
/// it dry with [`StreamHandle::finish`], or drop the socket mid-stream
/// with [`StreamHandle::abort`].
#[derive(Debug)]
pub struct StreamHandle {
    stream: TcpStream,
    decoder: ChunkedDecoder,
    sse: SseParser,
    events: Vec<StreamEvent>,
    answer: String,
    finished: bool,
}

impl StreamHandle {
    /// Blocks until the next event arrives; `None` once the stream ended.
    ///
    /// # Errors
    ///
    /// Transport errors, malformed chunking, or malformed event JSON.
    pub fn next_event(&mut self) -> Result<Option<StreamEvent>, ClientError> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(payload) = self.sse.next_event() {
                let event = StreamEvent::from_json(&payload).map_err(ClientError::Protocol)?;
                if !event.done {
                    self.answer.push_str(&event.piece);
                }
                if event.done {
                    self.finished = true;
                }
                self.events.push(event.clone());
                return Ok(Some(event));
            }
            let decoded = self.decoder.take_output();
            if !decoded.is_empty() {
                let text = String::from_utf8(decoded)
                    .map_err(|_| ClientError::Protocol("stream body is not UTF-8".to_string()))?;
                self.sse.push(&text);
                continue;
            }
            if self.finished || self.decoder.finished() {
                return Ok(None);
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Ok(None);
            }
            self.decoder
                .push(&chunk[..n])
                .map_err(ClientError::Protocol)?;
        }
    }

    /// Consumes the stream to its final event.
    ///
    /// # Errors
    ///
    /// Transport/framing errors, or a stream that ended without a `done`
    /// event.
    pub fn finish(mut self) -> Result<StreamOutcome, ClientError> {
        while !self.finished {
            if self.next_event()?.is_none() {
                break;
            }
        }
        let done = self
            .events
            .iter()
            .find(|e| e.done)
            .ok_or_else(|| ClientError::Protocol("stream ended without a done event".into()))?;
        Ok(StreamOutcome {
            streamed: self.answer.clone(),
            finish: done.finish.clone().unwrap_or_default(),
            answer: done.answer.clone(),
            error: done.error.clone(),
            token_events: self.events.iter().filter(|e| !e.done).count(),
        })
    }

    /// Reads until `n` token events have arrived (or the stream ends).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`StreamHandle::next_event`].
    pub fn read_tokens(&mut self, n: usize) -> Result<usize, ClientError> {
        let mut seen = self.events.iter().filter(|e| !e.done).count();
        while seen < n && !self.finished {
            match self.next_event()? {
                Some(event) if !event.done => seen += 1,
                Some(_) => break,
                None => break,
            }
        }
        Ok(seen)
    }

    /// Drops the socket mid-stream without reading further — the
    /// misbehaving-client move the disconnect-cancel tests rely on. The
    /// kernel sends FIN/RST; the server's next probe maps it to
    /// `ServingEngine::cancel`.
    pub fn abort(self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    /// Concatenated pieces received so far.
    pub fn streamed(&self) -> &str {
        &self.answer
    }

    /// The server-assigned request id, once at least one event arrived.
    pub fn id(&self) -> Option<&str> {
        self.events.first().map(|e| e.id.as_str())
    }
}
