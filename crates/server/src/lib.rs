//! `cocktail_server` — the HTTP/1.1 serving gateway over the Cocktail
//! [`ServingEngine`].
//!
//! The workspace builds without crates.io access, so the gateway is
//! hand-rolled on [`std::net::TcpListener`]: an acceptor thread, a small
//! connection worker pool, and a dedicated engine-driver thread that owns
//! the (single-threaded) [`ServingEngine`] and multiplexes its
//! continuous-batching `step_events` loop out to connections over mpsc
//! channels.
//!
//! What it serves (the versioned `/api/v1/` surface; the legacy
//! unversioned paths still answer for one release, marked deprecated —
//! `POST /api/generate` aliases with `Deprecation`/`Link` headers,
//! `GET /api/stats` answers a `308` to its successor):
//!
//! * `POST /api/v1/generate` — JSON in, either one JSON answer or (with
//!   `"stream": true`) a chunked Server-Sent-Events stream delivering
//!   every token the step it is committed.
//! * A client closing its socket mid-stream is detected within a few
//!   milliseconds and mapped to [`ServingEngine::cancel`]: KV budget,
//!   queue slot, and prefix-cache pins come back immediately.
//! * Over-capacity traffic backpressures through the engine's admission
//!   queue; submits beyond the configured cap answer `429` with the queue
//!   depth instead of buffering unboundedly.
//! * `GET /api/v1/stats` — live engine snapshot (KV bytes, queue depth,
//!   pinned prefix entries) so load tests can assert zero leaks.
//! * `GET /api/v1/version` — crate version, API version, and the KV
//!   snapshot format version this server reads and writes.
//! * `POST /api/v1/admin/snapshot` / `POST /api/v1/admin/restore` —
//!   persist and reload the prefix-cache trie (per replica with
//!   `?replica=N`, fleet-wide without), so a restarted or freshly scaled
//!   gateway serves its first warm request at warm TTFT.
//! * [`GatewayConfig::with_replicas`] runs N independent engines behind
//!   a prefix-affinity router: prompts return to the replica whose trie
//!   already holds their preamble, cold prompts go least-loaded, `429`
//!   only when every replica is saturated, and `/api/v1/stats` gains a
//!   per-replica breakdown plus routing counters.
//!
//! Quickstart (see `examples/gateway.rs` for the runnable version):
//!
//! ```no_run
//! use cocktail_core::CocktailConfig;
//! use cocktail_model::ModelProfile;
//! use cocktail_server::{EngineSettings, GatewayConfig, GatewayServer};
//!
//! let settings = EngineSettings::new(ModelProfile::tiny(), CocktailConfig::default());
//! let server = GatewayServer::start(settings, GatewayConfig::default())?;
//! println!("curl -X POST http://{}/api/v1/generate", server.addr());
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! [`ServingEngine`]: cocktail_core::ServingEngine
//! [`ServingEngine::cancel`]: cocktail_core::ServingEngine::cancel

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
mod engine;
pub mod gateway;
pub mod http;
mod router;

pub use api::{
    AdminRestoreResponse, AdminSnapshotResponse, ErrorResponse, GenerateRequest, GenerateResponse,
    ReplicaRestoreResult, ReplicaSnapshotResult, ReplicaStats, SnapshotRequest, StatsResponse,
    StreamEvent, VersionResponse, MAX_NEW_TOKENS_LIMIT,
};
pub use client::{ClientError, GatewayClient, RawResponse, StreamHandle, StreamOutcome};
pub use engine::EngineSettings;
pub use gateway::{GatewayConfig, GatewayServer};
