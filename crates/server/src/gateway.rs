//! The HTTP gateway: TCP acceptor, connection worker pool, and request
//! routing over a pool of engine-driver replicas.
//!
//! Lifecycle of a connection: the nonblocking acceptor hands sockets to a
//! fixed pool of worker threads; each worker parses pipelined HTTP/1.1
//! requests incrementally, routes them, and — for streaming responses —
//! interleaves SSE writes with a socket-level disconnect probe so a
//! vanished client turns into [`ServingEngine::cancel`] within one poll
//! interval (budget, queue slot, and prefix pins come back immediately).
//!
//! With [`GatewayConfig::with_replicas`] the gateway runs N independent
//! engines, each on its own driver thread with its own KV budget and
//! prefix trie. Every `/api/v1/generate` submit is routed by the
//! replica pool: prompts whose preamble fingerprints a
//! replica has served before go back to that replica (fleet-wide prefix
//! reuse), cold prompts go to the least-loaded replica, and a `429` is
//! answered only when *every* replica's admission queue is full.
//!
//! Endpoints (the versioned `/api/v1/` surface):
//!
//! | Method | Path                      | Behaviour                                  |
//! |--------|---------------------------|--------------------------------------------|
//! | POST   | `/api/v1/generate`        | Generate; SSE stream when `"stream": true` |
//! | GET    | `/api/v1/stats`           | Fleet snapshot with per-replica breakdown  |
//! | GET    | `/api/v1/version`         | Crate + API + snapshot-format versions     |
//! | POST   | `/api/v1/admin/snapshot`  | Write prefix-cache snapshot(s) to disk     |
//! | POST   | `/api/v1/admin/restore`   | Restore prefix cache(s) from disk          |
//! | GET    | `/healthz`                | Liveness probe (unversioned, stable)       |
//!
//! The admin endpoints take a JSON body `{"path": "..."}` naming a
//! server-side file and an optional `?replica=N` query to target one
//! replica; without it the whole fleet snapshots/restores (per-replica
//! paths get a `.{replica}` suffix when there are several). Restores are
//! only honoured on idle replicas and *degrade* — a busy replica, missing
//! file, corrupt snapshot, or config mismatch reports
//! `restored: false` with a reason while the replica keeps serving.
//!
//! The legacy unversioned paths still answer for one release, marked
//! deprecated: `POST /api/generate` serves identically (plus
//! `Deprecation` and `Link: </api/v1/generate>;
//! rel="successor-version"` headers — a 308 would force clients to replay
//! the body), and `GET /api/stats` answers `308 Permanent Redirect` to
//! `/api/v1/stats`.
//!
//! Over-capacity submits answer `429` with the queue depth and an
//! `X-Replica-Count` header; malformed HTTP answers the status from
//! [`ParseError::status`](crate::http::ParseError) and closes.
//!
//! [`ServingEngine::cancel`]: cocktail_core::ServingEngine::cancel

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::api::{
    ErrorResponse, GenerateRequest, GenerateResponse, SnapshotRequest, StatsResponse, StreamEvent,
    VersionResponse,
};
use crate::engine::{finish_str, EngineDriver, EngineSettings, GatewayEvent, SubmitSpec};
use crate::http::{self, ParseError, Request, RequestParser};
use crate::router::{PoolReply, ReplicaPool};

/// Gateway tuning knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"` (port 0 picks a free port).
    pub addr: String,
    /// Connection worker threads (concurrent connections served).
    pub workers: usize,
    /// Admission-queue capacity per replica: submits beyond this on
    /// *every* replica answer 429.
    pub queue_limit: usize,
    /// Engine replicas behind the prefix-affinity router (minimum 1).
    pub replicas: usize,
    /// Request-head byte cap (431 beyond it).
    pub max_head_bytes: usize,
    /// Request-body byte cap (413 beyond it).
    pub max_body_bytes: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 16,
            queue_limit: 64,
            replicas: 1,
            max_head_bytes: http::DEFAULT_MAX_HEAD_BYTES,
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
        }
    }
}

impl GatewayConfig {
    /// Sets the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the worker-thread count (minimum 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the admission-queue capacity.
    pub fn with_queue_limit(mut self, queue_limit: usize) -> Self {
        self.queue_limit = queue_limit;
        self
    }

    /// Sets the engine-replica count (minimum 1). Each replica is an
    /// independent engine with its own KV budget and prefix trie.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas.max(1);
        self
    }
}

/// How often streaming handlers probe for client disconnects and the
/// acceptor polls for shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(5);
/// Read timeout on idle keep-alive connections between requests; each
/// timeout re-checks the server stop flag.
const IDLE_READ_TIMEOUT: Duration = Duration::from_millis(50);

/// A running HTTP gateway over one [`ServingEngine`].
///
/// [`ServingEngine`]: cocktail_core::ServingEngine
///
/// ```no_run
/// use cocktail_server::{EngineSettings, GatewayConfig, GatewayServer};
/// use cocktail_core::CocktailConfig;
/// use cocktail_model::ModelProfile;
///
/// let settings = EngineSettings::new(ModelProfile::tiny(), CocktailConfig::default());
/// let server = GatewayServer::start(settings, GatewayConfig::default())?;
/// println!("listening on http://{}", server.addr());
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct GatewayServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    drivers: Vec<EngineDriver>,
    pool: Arc<ReplicaPool>,
}

impl GatewayServer {
    /// Binds the listener, spawns one engine driver per configured
    /// replica plus the worker pool, and starts accepting connections.
    /// Every replica is built from the same `settings` (same model, same
    /// budget) so any replica can serve any request byte-identically.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the address cannot be bound.
    pub fn start(settings: EngineSettings, config: GatewayConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let drivers: Vec<EngineDriver> = (0..config.replicas.max(1))
            .map(|replica| EngineDriver::spawn(settings.clone(), config.queue_limit, replica))
            .collect();
        let pool = Arc::new(ReplicaPool::new(
            drivers.iter().map(|d| d.commands.clone()).collect(),
        ));
        let stop = Arc::new(AtomicBool::new(false));

        let (conn_tx, conn_rx) = std::sync::mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let conn_rx = Arc::clone(&conn_rx);
            let pool = Arc::clone(&pool);
            let stop_flag = Arc::clone(&stop);
            let config = config.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("gateway-worker-{i}"))
                    .spawn(move || worker_loop(conn_rx, pool, stop_flag, config))
                    .expect("spawn gateway worker"),
            );
        }

        let stop_flag = Arc::clone(&stop);
        let acceptor = std::thread::Builder::new()
            .name("gateway-acceptor".to_string())
            .spawn(move || accept_loop(listener, conn_tx, stop_flag))
            .expect("spawn gateway acceptor");

        Ok(Self {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers,
            drivers,
            pool,
        })
    }

    /// The bound address (with the actual port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live fleet snapshot, the same data `/api/v1/stats` serves.
    pub fn stats(&self) -> StatsResponse {
        self.pool.stats()
    }

    /// Writes prefix-cache snapshots, the same operation
    /// `POST /api/v1/admin/snapshot` performs: one replica with
    /// `Some(index)`, the whole fleet with `None` (per-replica paths get a
    /// `.{replica}` suffix when there are several).
    pub fn snapshot(
        &self,
        replica: Option<usize>,
        path: &str,
    ) -> crate::api::AdminSnapshotResponse {
        self.pool.snapshot(replica, path)
    }

    /// Restores prefix caches from disk, the same operation
    /// `POST /api/v1/admin/restore` performs. Busy replicas and unusable
    /// snapshots degrade to `restored: false` rows with a reason.
    pub fn restore(&self, replica: Option<usize>, path: &str) -> crate::api::AdminRestoreResponse {
        self.pool.restore(replica, path)
    }

    /// Stops accepting, waits for in-flight connections to finish, shuts
    /// every engine driver down, and returns the final aggregated
    /// snapshot — what the shutdown-cleanliness tests assert zero
    /// bytes/pins on.
    pub fn shutdown(mut self) -> StatsResponse {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // The acceptor dropped the connection sender; workers drain any
        // sockets already handed over and then exit.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let finals: Vec<_> = self
            .drivers
            .drain(..)
            .enumerate()
            .map(|(replica, driver)| driver.shutdown(replica))
            .collect();
        self.pool.aggregate(finals)
    }
}

fn accept_loop(listener: TcpListener, connections: Sender<TcpStream>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                if connections.send(stream).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

fn worker_loop(
    connections: Arc<Mutex<Receiver<TcpStream>>>,
    pool: Arc<ReplicaPool>,
    stop: Arc<AtomicBool>,
    config: GatewayConfig,
) {
    loop {
        let stream = {
            let guard = connections.lock().expect("connection queue lock");
            guard.recv()
        };
        match stream {
            Ok(stream) => {
                // Connection errors tear down that one socket, never the
                // worker.
                let _ = handle_connection(stream, &pool, &stop, &config);
            }
            Err(_) => return,
        }
    }
}

/// Serves one connection until the client closes it, a parse error forces
/// a close, or the server is shutting down.
fn handle_connection(
    mut stream: TcpStream,
    pool: &ReplicaPool,
    stop: &AtomicBool,
    config: &GatewayConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IDLE_READ_TIMEOUT))?;
    let mut parser = RequestParser::with_limits(config.max_head_bytes, config.max_body_bytes);
    let mut buf = [0u8; 8192];
    loop {
        // Drain complete requests already buffered before reading more.
        loop {
            match parser.next_request() {
                Ok(Some(request)) => {
                    let keep_alive = route(&mut stream, &request, pool)?;
                    if !keep_alive || request.wants_close() {
                        return Ok(());
                    }
                }
                Ok(None) => break,
                Err(err) => {
                    write_parse_error(&mut stream, &err)?;
                    return Ok(());
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => parser.push(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn write_parse_error(stream: &mut TcpStream, err: &ParseError) -> std::io::Result<()> {
    let body = ErrorResponse::new(err.to_string()).to_json();
    stream.write_all(&http::simple_response(
        err.status(),
        "application/json",
        body.as_bytes(),
    ))
}

fn write_json(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write_json_with(stream, status, body, &[])
}

/// Like [`write_json`] but with extra response headers (the legacy-alias
/// deprecation headers).
fn write_json_with(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    extra: &[(&str, &str)],
) -> std::io::Result<()> {
    let length = body.len().to_string();
    let mut headers: Vec<(&str, &str)> = vec![
        ("Content-Type", "application/json"),
        ("Content-Length", &length),
    ];
    headers.extend_from_slice(extra);
    stream.write_all(&http::response_head(status, &headers))?;
    stream.write_all(body.as_bytes())
}

/// Headers stamped on every legacy `POST /api/generate` answer: the path
/// still works for one release, but clients should move to the successor.
const LEGACY_GENERATE_HEADERS: &[(&str, &str)] = &[
    ("Deprecation", "true"),
    ("Link", "</api/v1/generate>; rel=\"successor-version\""),
];

/// Every path the gateway serves (used to tell 405 from 404).
const KNOWN_TARGETS: &[&str] = &[
    "/api/v1/generate",
    "/api/v1/stats",
    "/api/v1/version",
    "/api/v1/admin/snapshot",
    "/api/v1/admin/restore",
    "/api/generate",
    "/api/stats",
    "/healthz",
];

/// Which admin operation a request asked for.
enum AdminOp {
    Snapshot,
    Restore,
}

/// Routes one parsed request. Returns `false` when the connection must
/// close afterwards (streaming responses and errors of unknown framing).
fn route(stream: &mut TcpStream, request: &Request, pool: &ReplicaPool) -> std::io::Result<bool> {
    // The admin endpoints take a query string; everything else ignores it.
    let (path, query) = match request.target.split_once('?') {
        Some((path, query)) => (path, Some(query)),
        None => (request.target.as_str(), None),
    };
    match (request.method.as_str(), path) {
        ("POST", "/api/v1/generate") => handle_generate(stream, request, pool, &[]),
        // Legacy alias, deprecated: answers exactly like the v1 path (a
        // 308 would force clients to replay the POST body) but flags the
        // successor in its headers.
        ("POST", "/api/generate") => {
            handle_generate(stream, request, pool, LEGACY_GENERATE_HEADERS)
        }
        ("GET", "/api/v1/stats") => {
            let stats = pool.stats();
            write_json(
                stream,
                200,
                &serde_json::to_string(&stats).expect("stats serialize"),
            )?;
            Ok(true)
        }
        // Legacy redirect, deprecated: GETs replay safely, so this one is
        // a real 308.
        ("GET", "/api/stats") => {
            stream.write_all(&http::response_head(
                308,
                &[
                    ("Location", "/api/v1/stats"),
                    ("Deprecation", "true"),
                    ("Link", "</api/v1/stats>; rel=\"successor-version\""),
                    ("Content-Length", "0"),
                ],
            ))?;
            Ok(true)
        }
        ("GET", "/api/v1/version") => {
            write_json(
                stream,
                200,
                &serde_json::to_string(&VersionResponse::current()).expect("version serialize"),
            )?;
            Ok(true)
        }
        ("POST", "/api/v1/admin/snapshot") => {
            handle_admin(stream, request, pool, query, AdminOp::Snapshot)
        }
        ("POST", "/api/v1/admin/restore") => {
            handle_admin(stream, request, pool, query, AdminOp::Restore)
        }
        ("GET", "/healthz") => {
            write_json(stream, 200, "{\"status\":\"ok\"}")?;
            Ok(true)
        }
        (method, _) if method != "GET" && method != "POST" && method != "HEAD" => {
            write_json(
                stream,
                501,
                &ErrorResponse::new(format!("method {method} is not implemented")).to_json(),
            )?;
            Ok(true)
        }
        (_, target) if KNOWN_TARGETS.contains(&target) => {
            write_json(
                stream,
                405,
                &ErrorResponse::new(format!(
                    "method {} is not allowed on {target}",
                    request.method
                ))
                .to_json(),
            )?;
            Ok(true)
        }
        (_, target) => {
            write_json(
                stream,
                404,
                &ErrorResponse::new(format!("no such endpoint {target}")).to_json(),
            )?;
            Ok(true)
        }
    }
}

/// Parses the admin `?replica=N` selector. `None` means the whole fleet;
/// an unknown parameter, non-numeric index, or out-of-range replica is a
/// 400.
fn parse_replica(query: Option<&str>, replicas: usize) -> Result<Option<usize>, String> {
    let Some(query) = query else {
        return Ok(None);
    };
    let mut selected = None;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        if key != "replica" {
            return Err(format!("unknown query parameter {key:?}"));
        }
        let index: usize = value.parse().map_err(|_| {
            format!("query parameter \"replica\" must be an integer, got {value:?}")
        })?;
        if index >= replicas {
            return Err(format!(
                "replica {index} is out of range (the fleet has {replicas})"
            ));
        }
        selected = Some(index);
    }
    Ok(selected)
}

/// `POST /api/v1/admin/{snapshot,restore}`: validate the replica selector
/// and the `{"path": ...}` body, then fan out through the pool. Snapshot
/// failures surface as a 500 with per-replica detail; restores always
/// answer 200 because they degrade per replica by design.
fn handle_admin(
    stream: &mut TcpStream,
    request: &Request,
    pool: &ReplicaPool,
    query: Option<&str>,
    op: AdminOp,
) -> std::io::Result<bool> {
    let replica = match parse_replica(query, pool.replicas()) {
        Ok(replica) => replica,
        Err(message) => {
            write_json(stream, 400, &ErrorResponse::new(message).to_json())?;
            return Ok(true);
        }
    };
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => {
            write_json(
                stream,
                400,
                &ErrorResponse::new("request body is not valid UTF-8").to_json(),
            )?;
            return Ok(true);
        }
    };
    let snapshot_request = match SnapshotRequest::from_json(body) {
        Ok(parsed) => parsed,
        Err(message) => {
            write_json(stream, 400, &ErrorResponse::new(message).to_json())?;
            return Ok(true);
        }
    };
    match op {
        AdminOp::Snapshot => {
            let response = pool.snapshot(replica, &snapshot_request.path);
            let status = if response.replicas.iter().any(|r| r.error.is_some()) {
                500
            } else {
                200
            };
            write_json(
                stream,
                status,
                &serde_json::to_string(&response).expect("snapshot response serialize"),
            )?;
        }
        AdminOp::Restore => {
            let response = pool.restore(replica, &snapshot_request.path);
            write_json(
                stream,
                200,
                &serde_json::to_string(&response).expect("restore response serialize"),
            )?;
        }
    }
    Ok(true)
}

fn handle_generate(
    stream: &mut TcpStream,
    request: &Request,
    pool: &ReplicaPool,
    extra: &[(&str, &str)],
) -> std::io::Result<bool> {
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => {
            write_json_with(
                stream,
                400,
                &ErrorResponse::new("request body is not valid UTF-8").to_json(),
                extra,
            )?;
            return Ok(true);
        }
    };
    let generate = match GenerateRequest::from_json(body) {
        Ok(generate) => generate,
        Err(message) => {
            write_json_with(stream, 400, &ErrorResponse::new(message).to_json(), extra)?;
            return Ok(true);
        }
    };

    let (events_tx, events) = std::sync::mpsc::channel();
    let reply = pool.submit(
        SubmitSpec {
            context: generate.context.clone(),
            query: generate.query.clone(),
            max_new_tokens: generate.max_new_tokens,
            stop: generate.stop.clone(),
            // from_json already validated the sampling fields, so this
            // cannot fail here.
            sampling: generate.sampling_params().unwrap_or_default(),
        },
        &events_tx,
    );
    // Drop the handler's sender so a dying driver (the only other holder)
    // surfaces as a recv error instead of a hang.
    drop(events_tx);
    let (replica, id, queue_position, wire_id) = match reply {
        PoolReply::Gone => {
            write_json_with(
                stream,
                500,
                &ErrorResponse::new("engine driver is gone").to_json(),
                extra,
            )?;
            return Ok(false);
        }
        PoolReply::Busy {
            queued,
            queue_limit,
        } => {
            let body = ErrorResponse::backpressure(queued, queue_limit).to_json();
            let length = body.len().to_string();
            let replicas = pool.replicas().to_string();
            let mut headers: Vec<(&str, &str)> = vec![
                ("Content-Type", "application/json"),
                ("Content-Length", &length),
                ("Retry-After", "1"),
                ("X-Replica-Count", &replicas),
            ];
            headers.extend_from_slice(extra);
            stream.write_all(&http::response_head(429, &headers))?;
            stream.write_all(body.as_bytes())?;
            return Ok(true);
        }
        PoolReply::Accepted {
            replica,
            id,
            queue_position,
            wire_id,
        } => (replica, id, queue_position, wire_id),
    };

    // Keeps the replica's in-flight count raised until this handler is
    // done with the request, however it ends.
    let _inflight = pool.inflight_guard(replica);
    if generate.stream {
        stream_response(
            stream,
            wire_id,
            queue_position,
            events,
            pool,
            replica,
            id,
            extra,
        )?;
        // SSE streams are terminal for the connection: the client saw
        // `Connection: close` in the head.
        Ok(false)
    } else {
        blocking_response(stream, wire_id, events, extra)?;
        Ok(true)
    }
}

/// Non-streaming generate: wait for the terminal event, answer one JSON
/// document.
fn blocking_response(
    stream: &mut TcpStream,
    id: String,
    events: Receiver<GatewayEvent>,
    extra: &[(&str, &str)],
) -> std::io::Result<()> {
    loop {
        match events.recv() {
            Ok(GatewayEvent::Token { .. }) => continue,
            Ok(GatewayEvent::Done {
                answer,
                generated_tokens,
                finish,
            }) => {
                let response = GenerateResponse {
                    id,
                    answer,
                    generated_tokens,
                    finish: finish_str(finish).to_string(),
                };
                return write_json_with(
                    stream,
                    200,
                    &serde_json::to_string(&response).expect("response serialize"),
                    extra,
                );
            }
            Ok(GatewayEvent::Failed { message }) => {
                return write_json_with(stream, 400, &ErrorResponse::new(message).to_json(), extra);
            }
            Ok(GatewayEvent::Cancelled { .. }) | Err(_) => {
                return write_json_with(
                    stream,
                    500,
                    &ErrorResponse::new("request was cancelled server-side").to_json(),
                    extra,
                );
            }
        }
    }
}

/// Streaming generate: chunked SSE, one event per token, a probe for
/// client disconnects between events, and a final `done` event.
#[allow(clippy::too_many_arguments)]
fn stream_response(
    stream: &mut TcpStream,
    id: String,
    queue_position: Option<usize>,
    events: Receiver<GatewayEvent>,
    pool: &ReplicaPool,
    replica: usize,
    request_id: cocktail_core::RequestId,
    extra: &[(&str, &str)],
) -> std::io::Result<()> {
    // Clients see where they joined the admission queue before the first
    // token arrives (the streaming twin of the 429 body's queue depth).
    let position = queue_position.map(|p| p.to_string());
    let mut headers = vec![
        ("Content-Type", "text/event-stream"),
        ("Transfer-Encoding", "chunked"),
        ("Cache-Control", "no-cache"),
        ("Connection", "close"),
    ];
    if let Some(position) = position.as_deref() {
        headers.push(("X-Queue-Position", position));
    }
    headers.extend_from_slice(extra);
    stream.write_all(&http::response_head(200, &headers))?;
    let mut cancelled = false;
    loop {
        match events.recv_timeout(POLL_INTERVAL) {
            Ok(GatewayEvent::Token { index, piece }) => {
                let event = StreamEvent::token(id.clone(), index, piece);
                let payload = http::sse_event(&event.to_json());
                if stream.write_all(&http::chunk(payload.as_bytes())).is_err() && !cancelled {
                    // Client went away mid-write: free the engine side,
                    // then keep draining events until the terminal one.
                    pool.cancel(replica, request_id);
                    cancelled = true;
                }
            }
            Ok(terminal) => {
                let (finish, answer, index, error) = match terminal {
                    GatewayEvent::Done {
                        answer,
                        generated_tokens,
                        finish,
                    } => (finish_str(finish), Some(answer), generated_tokens, None),
                    GatewayEvent::Cancelled { generated_tokens } => {
                        ("cancelled", None, generated_tokens, None)
                    }
                    GatewayEvent::Failed { message } => ("failed", None, 0, Some(message)),
                    GatewayEvent::Token { .. } => unreachable!("matched above"),
                };
                let mut event = StreamEvent::done(id, index, finish, answer);
                event.error = error;
                let payload = http::sse_event(&event.to_json());
                let _ = stream.write_all(&http::chunk(payload.as_bytes()));
                let _ = stream.write_all(http::last_chunk());
                return Ok(());
            }
            Err(RecvTimeoutError::Timeout) => {
                if !cancelled && client_gone(stream) {
                    pool.cancel(replica, request_id);
                    cancelled = true;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Driver died; close the stream without a proper finish.
                let _ = stream.write_all(http::last_chunk());
                return Ok(());
            }
        }
    }
}

/// Socket-level disconnect probe: a nonblocking `peek` returning `Ok(0)`
/// means the peer sent FIN (or reset). Extra buffered request bytes (a
/// pipelining client) read as "still alive".
fn client_gone(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let gone = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    let _ = stream.set_nonblocking(false);
    gone
}
