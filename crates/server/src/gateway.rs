//! The HTTP gateway: TCP acceptor, connection worker pool, and request
//! routing over a pool of engine-driver replicas.
//!
//! Lifecycle of a connection: the nonblocking acceptor hands sockets to a
//! fixed pool of worker threads; each worker parses pipelined HTTP/1.1
//! requests incrementally, routes them, and — for streaming responses —
//! interleaves SSE writes with a socket-level disconnect probe so a
//! vanished client turns into [`ServingEngine::cancel`] within one poll
//! interval (budget, queue slot, and prefix pins come back immediately).
//!
//! With [`GatewayConfig::with_replicas`] the gateway runs N independent
//! engines, each on its own driver thread with its own KV budget and
//! prefix trie. Every `/api/generate` submit is routed by the
//! replica pool: prompts whose preamble fingerprints a
//! replica has served before go back to that replica (fleet-wide prefix
//! reuse), cold prompts go to the least-loaded replica, and a `429` is
//! answered only when *every* replica's admission queue is full.
//!
//! Endpoints:
//!
//! | Method | Path            | Behaviour                                   |
//! |--------|-----------------|---------------------------------------------|
//! | POST   | `/api/generate` | Generate; SSE stream when `"stream": true`  |
//! | GET    | `/api/stats`    | Fleet snapshot with per-replica breakdown   |
//! | GET    | `/healthz`      | Liveness probe                              |
//!
//! Over-capacity submits answer `429` with the queue depth and an
//! `X-Replica-Count` header; malformed HTTP answers the status from
//! [`ParseError::status`](crate::http::ParseError) and closes.
//!
//! [`ServingEngine::cancel`]: cocktail_core::ServingEngine::cancel

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::api::{ErrorResponse, GenerateRequest, GenerateResponse, StatsResponse, StreamEvent};
use crate::engine::{finish_str, EngineDriver, EngineSettings, GatewayEvent, SubmitSpec};
use crate::http::{self, ParseError, Request, RequestParser};
use crate::router::{PoolReply, ReplicaPool};

/// Gateway tuning knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"` (port 0 picks a free port).
    pub addr: String,
    /// Connection worker threads (concurrent connections served).
    pub workers: usize,
    /// Admission-queue capacity per replica: submits beyond this on
    /// *every* replica answer 429.
    pub queue_limit: usize,
    /// Engine replicas behind the prefix-affinity router (minimum 1).
    pub replicas: usize,
    /// Request-head byte cap (431 beyond it).
    pub max_head_bytes: usize,
    /// Request-body byte cap (413 beyond it).
    pub max_body_bytes: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 16,
            queue_limit: 64,
            replicas: 1,
            max_head_bytes: http::DEFAULT_MAX_HEAD_BYTES,
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
        }
    }
}

impl GatewayConfig {
    /// Sets the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the worker-thread count (minimum 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the admission-queue capacity.
    pub fn with_queue_limit(mut self, queue_limit: usize) -> Self {
        self.queue_limit = queue_limit;
        self
    }

    /// Sets the engine-replica count (minimum 1). Each replica is an
    /// independent engine with its own KV budget and prefix trie.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas.max(1);
        self
    }
}

/// How often streaming handlers probe for client disconnects and the
/// acceptor polls for shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(5);
/// Read timeout on idle keep-alive connections between requests; each
/// timeout re-checks the server stop flag.
const IDLE_READ_TIMEOUT: Duration = Duration::from_millis(50);

/// A running HTTP gateway over one [`ServingEngine`].
///
/// [`ServingEngine`]: cocktail_core::ServingEngine
///
/// ```no_run
/// use cocktail_server::{EngineSettings, GatewayConfig, GatewayServer};
/// use cocktail_core::CocktailConfig;
/// use cocktail_model::ModelProfile;
///
/// let settings = EngineSettings::new(ModelProfile::tiny(), CocktailConfig::default());
/// let server = GatewayServer::start(settings, GatewayConfig::default())?;
/// println!("listening on http://{}", server.addr());
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct GatewayServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    drivers: Vec<EngineDriver>,
    pool: Arc<ReplicaPool>,
}

impl GatewayServer {
    /// Binds the listener, spawns one engine driver per configured
    /// replica plus the worker pool, and starts accepting connections.
    /// Every replica is built from the same `settings` (same model, same
    /// budget) so any replica can serve any request byte-identically.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the address cannot be bound.
    pub fn start(settings: EngineSettings, config: GatewayConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let drivers: Vec<EngineDriver> = (0..config.replicas.max(1))
            .map(|replica| EngineDriver::spawn(settings.clone(), config.queue_limit, replica))
            .collect();
        let pool = Arc::new(ReplicaPool::new(
            drivers.iter().map(|d| d.commands.clone()).collect(),
        ));
        let stop = Arc::new(AtomicBool::new(false));

        let (conn_tx, conn_rx) = std::sync::mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let conn_rx = Arc::clone(&conn_rx);
            let pool = Arc::clone(&pool);
            let stop_flag = Arc::clone(&stop);
            let config = config.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("gateway-worker-{i}"))
                    .spawn(move || worker_loop(conn_rx, pool, stop_flag, config))
                    .expect("spawn gateway worker"),
            );
        }

        let stop_flag = Arc::clone(&stop);
        let acceptor = std::thread::Builder::new()
            .name("gateway-acceptor".to_string())
            .spawn(move || accept_loop(listener, conn_tx, stop_flag))
            .expect("spawn gateway acceptor");

        Ok(Self {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers,
            drivers,
            pool,
        })
    }

    /// The bound address (with the actual port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live fleet snapshot, the same data `/api/stats` serves.
    pub fn stats(&self) -> StatsResponse {
        self.pool.stats()
    }

    /// Stops accepting, waits for in-flight connections to finish, shuts
    /// every engine driver down, and returns the final aggregated
    /// snapshot — what the shutdown-cleanliness tests assert zero
    /// bytes/pins on.
    pub fn shutdown(mut self) -> StatsResponse {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // The acceptor dropped the connection sender; workers drain any
        // sockets already handed over and then exit.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let finals: Vec<_> = self
            .drivers
            .drain(..)
            .enumerate()
            .map(|(replica, driver)| driver.shutdown(replica))
            .collect();
        self.pool.aggregate(finals)
    }
}

fn accept_loop(listener: TcpListener, connections: Sender<TcpStream>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                if connections.send(stream).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

fn worker_loop(
    connections: Arc<Mutex<Receiver<TcpStream>>>,
    pool: Arc<ReplicaPool>,
    stop: Arc<AtomicBool>,
    config: GatewayConfig,
) {
    loop {
        let stream = {
            let guard = connections.lock().expect("connection queue lock");
            guard.recv()
        };
        match stream {
            Ok(stream) => {
                // Connection errors tear down that one socket, never the
                // worker.
                let _ = handle_connection(stream, &pool, &stop, &config);
            }
            Err(_) => return,
        }
    }
}

/// Serves one connection until the client closes it, a parse error forces
/// a close, or the server is shutting down.
fn handle_connection(
    mut stream: TcpStream,
    pool: &ReplicaPool,
    stop: &AtomicBool,
    config: &GatewayConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IDLE_READ_TIMEOUT))?;
    let mut parser = RequestParser::with_limits(config.max_head_bytes, config.max_body_bytes);
    let mut buf = [0u8; 8192];
    loop {
        // Drain complete requests already buffered before reading more.
        loop {
            match parser.next_request() {
                Ok(Some(request)) => {
                    let keep_alive = route(&mut stream, &request, pool)?;
                    if !keep_alive || request.wants_close() {
                        return Ok(());
                    }
                }
                Ok(None) => break,
                Err(err) => {
                    write_parse_error(&mut stream, &err)?;
                    return Ok(());
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => parser.push(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn write_parse_error(stream: &mut TcpStream, err: &ParseError) -> std::io::Result<()> {
    let body = ErrorResponse::new(err.to_string()).to_json();
    stream.write_all(&http::simple_response(
        err.status(),
        "application/json",
        body.as_bytes(),
    ))
}

fn write_json(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    stream.write_all(&http::simple_response(
        status,
        "application/json",
        body.as_bytes(),
    ))
}

/// Routes one parsed request. Returns `false` when the connection must
/// close afterwards (streaming responses and errors of unknown framing).
fn route(stream: &mut TcpStream, request: &Request, pool: &ReplicaPool) -> std::io::Result<bool> {
    match (request.method.as_str(), request.target.as_str()) {
        ("POST", "/api/generate") => handle_generate(stream, request, pool),
        ("GET", "/api/stats") => {
            let stats = pool.stats();
            write_json(
                stream,
                200,
                &serde_json::to_string(&stats).expect("stats serialize"),
            )?;
            Ok(true)
        }
        ("GET", "/healthz") => {
            write_json(stream, 200, "{\"status\":\"ok\"}")?;
            Ok(true)
        }
        (method, _) if method != "GET" && method != "POST" && method != "HEAD" => {
            write_json(
                stream,
                501,
                &ErrorResponse::new(format!("method {method} is not implemented")).to_json(),
            )?;
            Ok(true)
        }
        (_, target)
            if target == "/api/generate" || target == "/api/stats" || target == "/healthz" =>
        {
            write_json(
                stream,
                405,
                &ErrorResponse::new(format!(
                    "method {} is not allowed on {target}",
                    request.method
                ))
                .to_json(),
            )?;
            Ok(true)
        }
        (_, target) => {
            write_json(
                stream,
                404,
                &ErrorResponse::new(format!("no such endpoint {target}")).to_json(),
            )?;
            Ok(true)
        }
    }
}

fn handle_generate(
    stream: &mut TcpStream,
    request: &Request,
    pool: &ReplicaPool,
) -> std::io::Result<bool> {
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => {
            write_json(
                stream,
                400,
                &ErrorResponse::new("request body is not valid UTF-8").to_json(),
            )?;
            return Ok(true);
        }
    };
    let generate = match GenerateRequest::from_json(body) {
        Ok(generate) => generate,
        Err(message) => {
            write_json(stream, 400, &ErrorResponse::new(message).to_json())?;
            return Ok(true);
        }
    };

    let (events_tx, events) = std::sync::mpsc::channel();
    let reply = pool.submit(
        SubmitSpec {
            context: generate.context.clone(),
            query: generate.query.clone(),
            max_new_tokens: generate.max_new_tokens,
            stop: generate.stop.clone(),
        },
        &events_tx,
    );
    // Drop the handler's sender so a dying driver (the only other holder)
    // surfaces as a recv error instead of a hang.
    drop(events_tx);
    let (replica, id, queue_position, wire_id) = match reply {
        PoolReply::Gone => {
            write_json(
                stream,
                500,
                &ErrorResponse::new("engine driver is gone").to_json(),
            )?;
            return Ok(false);
        }
        PoolReply::Busy {
            queued,
            queue_limit,
        } => {
            let body = ErrorResponse::backpressure(queued, queue_limit).to_json();
            stream.write_all(&http::response_head(
                429,
                &[
                    ("Content-Type", "application/json"),
                    ("Content-Length", &body.len().to_string()),
                    ("Retry-After", "1"),
                    ("X-Replica-Count", &pool.replicas().to_string()),
                ],
            ))?;
            stream.write_all(body.as_bytes())?;
            return Ok(true);
        }
        PoolReply::Accepted {
            replica,
            id,
            queue_position,
            wire_id,
        } => (replica, id, queue_position, wire_id),
    };

    // Keeps the replica's in-flight count raised until this handler is
    // done with the request, however it ends.
    let _inflight = pool.inflight_guard(replica);
    if generate.stream {
        stream_response(stream, wire_id, queue_position, events, pool, replica, id)?;
        // SSE streams are terminal for the connection: the client saw
        // `Connection: close` in the head.
        Ok(false)
    } else {
        blocking_response(stream, wire_id, events)?;
        Ok(true)
    }
}

/// Non-streaming generate: wait for the terminal event, answer one JSON
/// document.
fn blocking_response(
    stream: &mut TcpStream,
    id: String,
    events: Receiver<GatewayEvent>,
) -> std::io::Result<()> {
    loop {
        match events.recv() {
            Ok(GatewayEvent::Token { .. }) => continue,
            Ok(GatewayEvent::Done {
                answer,
                generated_tokens,
                finish,
            }) => {
                let response = GenerateResponse {
                    id,
                    answer,
                    generated_tokens,
                    finish: finish_str(finish).to_string(),
                };
                return write_json(
                    stream,
                    200,
                    &serde_json::to_string(&response).expect("response serialize"),
                );
            }
            Ok(GatewayEvent::Failed { message }) => {
                return write_json(stream, 400, &ErrorResponse::new(message).to_json());
            }
            Ok(GatewayEvent::Cancelled { .. }) | Err(_) => {
                return write_json(
                    stream,
                    500,
                    &ErrorResponse::new("request was cancelled server-side").to_json(),
                );
            }
        }
    }
}

/// Streaming generate: chunked SSE, one event per token, a probe for
/// client disconnects between events, and a final `done` event.
fn stream_response(
    stream: &mut TcpStream,
    id: String,
    queue_position: Option<usize>,
    events: Receiver<GatewayEvent>,
    pool: &ReplicaPool,
    replica: usize,
    request_id: cocktail_core::RequestId,
) -> std::io::Result<()> {
    // Clients see where they joined the admission queue before the first
    // token arrives (the streaming twin of the 429 body's queue depth).
    let position = queue_position.map(|p| p.to_string());
    let mut headers = vec![
        ("Content-Type", "text/event-stream"),
        ("Transfer-Encoding", "chunked"),
        ("Cache-Control", "no-cache"),
        ("Connection", "close"),
    ];
    if let Some(position) = position.as_deref() {
        headers.push(("X-Queue-Position", position));
    }
    stream.write_all(&http::response_head(200, &headers))?;
    let mut cancelled = false;
    loop {
        match events.recv_timeout(POLL_INTERVAL) {
            Ok(GatewayEvent::Token { index, piece }) => {
                let event = StreamEvent::token(id.clone(), index, piece);
                let payload = http::sse_event(&event.to_json());
                if stream.write_all(&http::chunk(payload.as_bytes())).is_err() && !cancelled {
                    // Client went away mid-write: free the engine side,
                    // then keep draining events until the terminal one.
                    pool.cancel(replica, request_id);
                    cancelled = true;
                }
            }
            Ok(terminal) => {
                let (finish, answer, index, error) = match terminal {
                    GatewayEvent::Done {
                        answer,
                        generated_tokens,
                        finish,
                    } => (finish_str(finish), Some(answer), generated_tokens, None),
                    GatewayEvent::Cancelled { generated_tokens } => {
                        ("cancelled", None, generated_tokens, None)
                    }
                    GatewayEvent::Failed { message } => ("failed", None, 0, Some(message)),
                    GatewayEvent::Token { .. } => unreachable!("matched above"),
                };
                let mut event = StreamEvent::done(id, index, finish, answer);
                event.error = error;
                let payload = http::sse_event(&event.to_json());
                let _ = stream.write_all(&http::chunk(payload.as_bytes()));
                let _ = stream.write_all(http::last_chunk());
                return Ok(());
            }
            Err(RecvTimeoutError::Timeout) => {
                if !cancelled && client_gone(stream) {
                    pool.cancel(replica, request_id);
                    cancelled = true;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Driver died; close the stream without a proper finish.
                let _ = stream.write_all(http::last_chunk());
                return Ok(());
            }
        }
    }
}

/// Socket-level disconnect probe: a nonblocking `peek` returning `Ok(0)`
/// means the peer sent FIN (or reset). Extra buffered request bytes (a
/// pipelining client) read as "still alive".
fn client_gone(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let gone = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    let _ = stream.set_nonblocking(false);
    gone
}
