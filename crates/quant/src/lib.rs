//! Integer quantization kernels for KV-cache compression.
//!
//! This crate implements the quantization substrate every method in the
//! Cocktail paper relies on:
//!
//! * [`Bitwidth`] — the precision levels used by the paper (INT2, INT4,
//!   INT8 and FP16 pass-through).
//! * [`QuantizedMatrix`] — asymmetric uniform *group* quantization of a
//!   row-major matrix with bit-packed storage and exact byte accounting.
//! * [`QuantAxis`] — per-token (row) or per-channel (column) grouping, the
//!   distinction at the heart of KIVI's key/value treatment.
//! * [`gemm`] — fused kernels that multiply an FP32/FP16 activation by a
//!   quantized matrix, dequantizing group by group on the fly (the `fqm`
//!   primitive of the paper's Algorithm 1).
//! * [`parallel`] — the persistent [`parallel::KernelPool`] and
//!   threshold-gated data-parallel dispatchers over the kernels above:
//!   large operands are tiled across pool workers and stitched in
//!   deterministic tile order (bit-identical to the scalar paths at every
//!   thread count), small operands stay scalar so single-token decode
//!   pays no dispatch overhead.
//! * [`error`] — quantization error metrics used by the evaluation harness.
//!
//! # Example
//!
//! ```
//! use cocktail_quant::{Bitwidth, QuantAxis, QuantConfig, QuantizedMatrix};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let kv = cocktail_tensor::rng::uniform_matrix(64, 32, 1.0, 7);
//! let config = QuantConfig::new(Bitwidth::Int4, QuantAxis::PerToken, 32)?;
//! let q = QuantizedMatrix::quantize(&kv, &config)?;
//! let restored = q.dequantize();
//! assert!(kv.mse(&restored)? < 1e-2);
//! assert!(q.storage_bytes() < 64 * 32 * 2); // smaller than FP16
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitwidth;
mod config;
pub mod error;
pub mod gemm;
mod packed;
pub mod parallel;
mod quantized;

pub use bitwidth::Bitwidth;
pub use config::{QuantAxis, QuantConfig, QuantError};
pub use packed::PackedInts;
pub use quantized::QuantizedMatrix;
