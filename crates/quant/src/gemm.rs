//! Fused floating-point × quantized matrix multiplication kernels.
//!
//! These are the `fqm` primitives of the paper's Algorithm 1: during the
//! decode phase the FP16 query (or attention-probability) matrix is
//! multiplied against a *quantized* key (or value) block, dequantizing one
//! row of the quantized operand at a time into a scratch buffer rather than
//! materialising the whole block in FP32.
//!
//! All four public kernels (fused and `*_reference`) are built from the
//! same two accumulation helpers — a sequential dot product and a
//! zero-skipping axpy — so they are bit-identical to one another by
//! construction, and the tile kernels used by [`crate::parallel`] restrict
//! the same loops to a contiguous output slice without reassociating any
//! sum. Inner loops run over contiguous slices (no per-element bounds
//! checks) so the autovectorizer can lift them.

use crate::config::QuantError;
use crate::quantized::QuantizedMatrix;
use cocktail_tensor::Matrix;

/// Sequential dot product — the single accumulation order every score
/// kernel in this module (fused, reference, tiled) shares.
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// `out += weight * row`, skipped entirely for zero weights — the single
/// accumulation step every value kernel in this module shares. The zero
/// skip matters for attention probabilities, where masked positions are
/// exactly 0.0.
#[inline]
pub(crate) fn axpy(out: &mut [f32], weight: f32, row: &[f32]) {
    for (o, &v) in out.iter_mut().zip(row.iter()) {
        *o += weight * v;
    }
}

pub(crate) fn check_transposed_shapes(a: &Matrix, bq: &QuantizedMatrix) -> Result<(), QuantError> {
    if a.cols() != bq.cols() {
        return Err(QuantError::Incompatible(format!(
            "fp ({}x{}) x quantized^T ({}x{})",
            a.rows(),
            a.cols(),
            bq.rows(),
            bq.cols()
        )));
    }
    Ok(())
}

pub(crate) fn check_shapes(a: &Matrix, bq: &QuantizedMatrix) -> Result<(), QuantError> {
    if a.cols() != bq.rows() {
        return Err(QuantError::Incompatible(format!(
            "fp ({}x{}) x quantized ({}x{})",
            a.rows(),
            a.cols(),
            bq.rows(),
            bq.cols()
        )));
    }
    Ok(())
}

/// Columns `[j0, j1)` of `a · bqᵀ` (shapes already checked): the tile
/// primitive behind both the scalar fused kernel (`j0..j1` = the full
/// range) and the pooled dispatcher in [`crate::parallel`]. Each tile owns
/// its output block, so stitching tiles in ascending order reproduces the
/// full kernel bit for bit.
pub(crate) fn transposed_tile(a: &Matrix, bq: &QuantizedMatrix, j0: usize, j1: usize) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), j1 - j0);
    if a.cols() == 0 {
        return out;
    }
    let mut row_buf = vec![0.0f32; bq.cols()];
    for j in j0..j1 {
        bq.dequantize_row_into(j, &mut row_buf);
        for i in 0..a.rows() {
            out.set(i, j - j0, dot(a.row(i), &row_buf));
        }
    }
    out
}

/// Columns `[c0, c1)` of `a · bq` (shapes already checked): the value-side
/// tile primitive. The i-k-j accumulation order and the zero-weight skip
/// are identical to the full kernel restricted to the column slice, so
/// per-output-element float operations are unchanged.
pub(crate) fn value_tile(a: &Matrix, bq: &QuantizedMatrix, c0: usize, c1: usize) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), c1 - c0);
    if a.cols() == 0 || c1 == c0 {
        return out;
    }
    let mut row_buf = vec![0.0f32; c1 - c0];
    for k in 0..bq.rows() {
        bq.dequantize_row_range_into(k, c0, &mut row_buf);
        for i in 0..a.rows() {
            let weight = a.get(i, k);
            if weight == 0.0 {
                continue;
            }
            axpy(out.row_mut(i), weight, &row_buf);
        }
    }
    out
}

/// Computes `a · bqᵀ` where `bq` is quantized — the attention-score kernel
/// `Q · Kᵀ` with a quantized key block.
///
/// `a` has shape `(m, d)`, `bq` has shape `(n, d)`; the result has shape
/// `(m, n)`.
///
/// # Errors
///
/// Returns [`QuantError::Incompatible`] if the inner dimensions differ.
///
/// # Example
///
/// ```
/// use cocktail_quant::{gemm, Bitwidth, QuantConfig, QuantAxis, QuantizedMatrix};
/// use cocktail_tensor::Matrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = cocktail_tensor::rng::gaussian_matrix(1, 8, 1.0, 1);
/// let k = cocktail_tensor::rng::gaussian_matrix(4, 8, 1.0, 2);
/// let kq = QuantizedMatrix::quantize(&k, &QuantConfig::new(Bitwidth::Int8, QuantAxis::PerToken, 8)?)?;
/// let exact = q.matmul_transposed(&k)?;
/// let fused = gemm::fp_matmul_quant_transposed(&q, &kq)?;
/// assert!(exact.max_abs_diff(&fused)? < 0.1);
/// # Ok(())
/// # }
/// ```
pub fn fp_matmul_quant_transposed(a: &Matrix, bq: &QuantizedMatrix) -> Result<Matrix, QuantError> {
    check_transposed_shapes(a, bq)?;
    Ok(transposed_tile(a, bq, 0, bq.rows()))
}

/// Computes `a · bq` where `bq` is quantized — the output kernel
/// `softmax(QKᵀ) · V` with a quantized value block.
///
/// `a` has shape `(m, n)`, `bq` has shape `(n, d)`; the result has shape
/// `(m, d)`.
///
/// # Errors
///
/// Returns [`QuantError::Incompatible`] if the inner dimensions differ.
pub fn fp_matmul_quant(a: &Matrix, bq: &QuantizedMatrix) -> Result<Matrix, QuantError> {
    check_shapes(a, bq)?;
    Ok(value_tile(a, bq, 0, bq.cols()))
}

/// Reference (non-fused) implementation: dequantize the whole operand,
/// then run the same `dot` accumulation as the fused kernel over the
/// materialised rows. The documented fallback of the
/// [`crate::parallel`] dispatcher stack — fused, tiled and reference
/// paths all produce the same bits.
///
/// # Errors
///
/// Returns [`QuantError::Incompatible`] if the inner dimensions differ.
pub fn fp_matmul_quant_transposed_reference(
    a: &Matrix,
    bq: &QuantizedMatrix,
) -> Result<Matrix, QuantError> {
    check_transposed_shapes(a, bq)?;
    let dense = bq.dequantize();
    let mut out = Matrix::zeros(a.rows(), bq.rows());
    for j in 0..bq.rows() {
        let dense_row = dense.row(j);
        for i in 0..a.rows() {
            out.set(i, j, dot(a.row(i), dense_row));
        }
    }
    Ok(out)
}

/// Reference (non-fused) version of [`fp_matmul_quant`]: dequantize the
/// whole operand, then run the same zero-skipping `axpy` accumulation
/// as the fused kernel.
///
/// # Errors
///
/// Returns [`QuantError::Incompatible`] if the inner dimensions differ.
pub fn fp_matmul_quant_reference(a: &Matrix, bq: &QuantizedMatrix) -> Result<Matrix, QuantError> {
    check_shapes(a, bq)?;
    let dense = bq.dequantize();
    let mut out = Matrix::zeros(a.rows(), bq.cols());
    for k in 0..bq.rows() {
        let dense_row = dense.row(k);
        for i in 0..a.rows() {
            let weight = a.get(i, k);
            if weight == 0.0 {
                continue;
            }
            axpy(out.row_mut(i), weight, dense_row);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bitwidth, QuantAxis, QuantConfig};
    use cocktail_tensor::rng;
    use proptest::prelude::*;

    fn quantize(m: &Matrix, bw: Bitwidth, axis: QuantAxis, group: usize) -> QuantizedMatrix {
        QuantizedMatrix::quantize(m, &QuantConfig::new(bw, axis, group).unwrap()).unwrap()
    }

    #[test]
    fn fused_transposed_matches_reference() {
        let a = rng::gaussian_matrix(3, 16, 1.0, 1);
        let b = rng::gaussian_matrix(7, 16, 1.0, 2);
        let bq = quantize(&b, Bitwidth::Int4, QuantAxis::PerToken, 8);
        let fused = fp_matmul_quant_transposed(&a, &bq).unwrap();
        let reference = fp_matmul_quant_transposed_reference(&a, &bq).unwrap();
        assert!(fused.max_abs_diff(&reference).unwrap() < 1e-4);
    }

    #[test]
    fn fused_matches_reference() {
        let a = rng::gaussian_matrix(3, 7, 1.0, 3);
        let b = rng::gaussian_matrix(7, 16, 1.0, 4);
        let bq = quantize(&b, Bitwidth::Int4, QuantAxis::PerToken, 8);
        let fused = fp_matmul_quant(&a, &bq).unwrap();
        let reference = fp_matmul_quant_reference(&a, &bq).unwrap();
        assert!(fused.max_abs_diff(&reference).unwrap() < 1e-4);
    }

    #[test]
    fn int8_score_error_is_small_relative_to_exact() {
        let q = rng::gaussian_matrix(1, 64, 1.0, 5);
        let k = rng::gaussian_matrix(32, 64, 1.0, 6);
        let exact = q.matmul_transposed(&k).unwrap();
        let kq = quantize(&k, Bitwidth::Int8, QuantAxis::PerToken, 32);
        let approx = fp_matmul_quant_transposed(&q, &kq).unwrap();
        let scale = exact.frobenius_norm().max(1.0);
        assert!(approx.max_abs_diff(&exact).unwrap() / scale < 0.02);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = Matrix::zeros(2, 8);
        let b = rng::gaussian_matrix(4, 16, 1.0, 7);
        let bq = quantize(&b, Bitwidth::Int4, QuantAxis::PerToken, 8);
        assert!(fp_matmul_quant_transposed(&a, &bq).is_err());
        let a2 = Matrix::zeros(2, 3);
        assert!(fp_matmul_quant(&a2, &bq).is_err());
    }

    #[test]
    fn empty_operands_give_empty_output() {
        let a = Matrix::zeros(0, 0);
        let b = Matrix::zeros(0, 0);
        let bq = quantize(&b, Bitwidth::Int4, QuantAxis::PerToken, 8);
        let out = fp_matmul_quant_transposed(&a, &bq).unwrap();
        assert_eq!(out.shape(), (0, 0));
    }

    #[test]
    fn zero_attention_rows_are_skipped_correctly() {
        // A probability row with zeros must contribute nothing.
        let a = Matrix::from_rows(&[vec![0.0, 1.0, 0.0]]).unwrap();
        let v = Matrix::from_rows(&[vec![5.0, 5.0], vec![1.0, 2.0], vec![9.0, 9.0]]).unwrap();
        let vq = quantize(&v, Bitwidth::Int8, QuantAxis::PerToken, 2);
        let out = fp_matmul_quant(&a, &vq).unwrap();
        assert!((out.get(0, 0) - 1.0).abs() < 0.05);
        assert!((out.get(0, 1) - 2.0).abs() < 0.05);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn fused_kernels_agree_with_reference(
            m in 1usize..4,
            n in 1usize..10,
            d in 1usize..20,
            seed in 0u64..200,
        ) {
            let a = rng::gaussian_matrix(m, d, 1.0, seed);
            let b = rng::gaussian_matrix(n, d, 1.0, seed + 1);
            let bq = quantize(&b, Bitwidth::Int4, QuantAxis::PerToken, 8);
            let fused = fp_matmul_quant_transposed(&a, &bq).unwrap();
            let reference = fp_matmul_quant_transposed_reference(&a, &bq).unwrap();
            prop_assert!(fused.max_abs_diff(&reference).unwrap() < 1e-3);

            let p = rng::uniform_matrix(m, n, 1.0, seed + 2);
            let c = rng::gaussian_matrix(n, d, 1.0, seed + 3);
            let cq = quantize(&c, Bitwidth::Int2, QuantAxis::PerToken, 8);
            let fused2 = fp_matmul_quant(&p, &cq).unwrap();
            let reference2 = fp_matmul_quant_reference(&p, &cq).unwrap();
            prop_assert!(fused2.max_abs_diff(&reference2).unwrap() < 1e-3);
        }
    }
}
