//! Quantization configuration: precision, grouping axis and group size.

use crate::bitwidth::Bitwidth;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// The axis along which quantization groups are formed.
///
/// The distinction matters because key and value tensors have different
/// outlier structure: KIVI observed that key outliers are concentrated in a
/// few *channels* (columns) while value magnitudes vary per *token* (row),
/// so it quantizes keys per channel and values per token. Atom and Cocktail
/// use per-token grouping for both.
///
/// # Example
///
/// ```
/// use cocktail_quant::QuantAxis;
///
/// assert_ne!(QuantAxis::PerToken, QuantAxis::PerChannel);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuantAxis {
    /// Groups run along each row (one token's head vector). This is the
    /// layout used for values by every method and for keys by Atom/Cocktail.
    PerToken,
    /// Groups run down each column (one channel across tokens). Used by
    /// KIVI for the key cache.
    PerChannel,
}

impl QuantAxis {
    /// Short lowercase name used in experiment output.
    pub const fn name(self) -> &'static str {
        match self {
            QuantAxis::PerToken => "per-token",
            QuantAxis::PerChannel => "per-channel",
        }
    }
}

impl fmt::Display for QuantAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error raised when a quantization configuration or operation is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// The group size was zero.
    ZeroGroupSize,
    /// FP16 was requested where an integer precision is required.
    FloatBitwidth,
    /// A matrix dimension is incompatible with the configuration.
    Incompatible(String),
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::ZeroGroupSize => write!(f, "group size must be nonzero"),
            QuantError::FloatBitwidth => {
                write!(f, "integer bitwidth required, got fp16 pass-through")
            }
            QuantError::Incompatible(detail) => {
                write!(f, "incompatible quantization operands: {detail}")
            }
        }
    }
}

impl Error for QuantError {}

/// Complete description of how a matrix is to be quantized.
///
/// # Example
///
/// ```
/// use cocktail_quant::{Bitwidth, QuantAxis, QuantConfig};
///
/// # fn main() -> Result<(), cocktail_quant::QuantError> {
/// let cfg = QuantConfig::new(Bitwidth::Int4, QuantAxis::PerToken, 32)?;
/// assert_eq!(cfg.group_size(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuantConfig {
    bitwidth: Bitwidth,
    axis: QuantAxis,
    group_size: usize,
}

impl QuantConfig {
    /// Default quantization group size used throughout the paper's
    /// baselines (Atom-style group quantization).
    pub const DEFAULT_GROUP_SIZE: usize = 32;

    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::ZeroGroupSize`] if `group_size == 0` and
    /// [`QuantError::FloatBitwidth`] if `bitwidth` is [`Bitwidth::Fp16`]
    /// (FP16 chunks are stored unquantized and never go through a
    /// `QuantConfig`).
    pub fn new(bitwidth: Bitwidth, axis: QuantAxis, group_size: usize) -> Result<Self, QuantError> {
        if group_size == 0 {
            return Err(QuantError::ZeroGroupSize);
        }
        if bitwidth.is_float() {
            return Err(QuantError::FloatBitwidth);
        }
        Ok(Self {
            bitwidth,
            axis,
            group_size,
        })
    }

    /// Convenience constructor for the paper's standard per-token INT`n`
    /// configuration with the default group size.
    ///
    /// # Errors
    ///
    /// Returns an error if `bitwidth` is FP16.
    pub fn per_token(bitwidth: Bitwidth) -> Result<Self, QuantError> {
        Self::new(bitwidth, QuantAxis::PerToken, Self::DEFAULT_GROUP_SIZE)
    }

    /// Convenience constructor for KIVI-style per-channel quantization with
    /// the default group size.
    ///
    /// # Errors
    ///
    /// Returns an error if `bitwidth` is FP16.
    pub fn per_channel(bitwidth: Bitwidth) -> Result<Self, QuantError> {
        Self::new(bitwidth, QuantAxis::PerChannel, Self::DEFAULT_GROUP_SIZE)
    }

    /// The integer precision.
    pub fn bitwidth(&self) -> Bitwidth {
        self.bitwidth
    }

    /// The grouping axis.
    pub fn axis(&self) -> QuantAxis {
        self.axis
    }

    /// Number of elements sharing one (scale, zero-point) pair.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Returns a copy with a different group size.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::ZeroGroupSize`] if `group_size == 0`.
    pub fn with_group_size(self, group_size: usize) -> Result<Self, QuantError> {
        Self::new(self.bitwidth, self.axis, group_size)
    }
}

impl Default for QuantConfig {
    fn default() -> Self {
        Self {
            bitwidth: Bitwidth::Int4,
            axis: QuantAxis::PerToken,
            group_size: Self::DEFAULT_GROUP_SIZE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_zero_group_size() {
        assert_eq!(
            QuantConfig::new(Bitwidth::Int4, QuantAxis::PerToken, 0).unwrap_err(),
            QuantError::ZeroGroupSize
        );
    }

    #[test]
    fn new_rejects_fp16() {
        assert_eq!(
            QuantConfig::new(Bitwidth::Fp16, QuantAxis::PerToken, 32).unwrap_err(),
            QuantError::FloatBitwidth
        );
    }

    #[test]
    fn default_matches_paper_baseline() {
        let cfg = QuantConfig::default();
        assert_eq!(cfg.bitwidth(), Bitwidth::Int4);
        assert_eq!(cfg.axis(), QuantAxis::PerToken);
        assert_eq!(cfg.group_size(), 32);
    }

    #[test]
    fn with_group_size_replaces_only_group_size() {
        let cfg = QuantConfig::per_channel(Bitwidth::Int2).unwrap();
        let resized = cfg.with_group_size(64).unwrap();
        assert_eq!(resized.group_size(), 64);
        assert_eq!(resized.axis(), QuantAxis::PerChannel);
        assert_eq!(resized.bitwidth(), Bitwidth::Int2);
        assert!(cfg.with_group_size(0).is_err());
    }

    #[test]
    fn error_display_is_lowercase_and_informative() {
        assert!(QuantError::ZeroGroupSize.to_string().contains("group size"));
        assert!(QuantError::FloatBitwidth.to_string().contains("fp16"));
        assert!(QuantError::Incompatible("3 vs 4".into())
            .to_string()
            .contains("3 vs 4"));
    }

    #[test]
    fn axis_display_names() {
        assert_eq!(QuantAxis::PerToken.to_string(), "per-token");
        assert_eq!(QuantAxis::PerChannel.to_string(), "per-channel");
    }
}
