//! Quantization error metrics.
//!
//! The evaluation harness uses these to quantify how much information each
//! KV-cache quantization policy destroys, both at the tensor level and at
//! the attention-output level.

use cocktail_tensor::Matrix;

/// Summary statistics of the difference between a reference tensor and its
/// quantized-then-dequantized reconstruction.
///
/// # Example
///
/// ```
/// use cocktail_quant::error::QuantErrorStats;
/// use cocktail_tensor::Matrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[vec![1.0, 2.0]])?;
/// let b = Matrix::from_rows(&[vec![1.1, 1.9]])?;
/// let stats = QuantErrorStats::between(&a, &b)?;
/// assert!(stats.mse > 0.0 && stats.max_abs < 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantErrorStats {
    /// Mean squared error.
    pub mse: f32,
    /// Maximum absolute element-wise error.
    pub max_abs: f32,
    /// Relative Frobenius-norm error `‖a − b‖_F / ‖a‖_F` (0 when `a` is 0).
    pub relative: f32,
    /// Signal-to-quantization-noise ratio in dB (∞ when the error is 0).
    pub sqnr_db: f32,
}

impl QuantErrorStats {
    /// Computes the statistics between a reference and a reconstruction.
    ///
    /// # Errors
    ///
    /// Returns a [`cocktail_tensor::ShapeError`] if the shapes differ.
    pub fn between(
        reference: &Matrix,
        reconstruction: &Matrix,
    ) -> Result<Self, cocktail_tensor::ShapeError> {
        let mse = reference.mse(reconstruction)?;
        let max_abs = reference.max_abs_diff(reconstruction)?;
        let diff = reference.sub(reconstruction)?;
        let ref_norm = reference.frobenius_norm();
        let relative = if ref_norm > 0.0 {
            diff.frobenius_norm() / ref_norm
        } else {
            0.0
        };
        let signal_power: f32 = if reference.is_empty() {
            0.0
        } else {
            reference.as_slice().iter().map(|v| v * v).sum::<f32>() / reference.len() as f32
        };
        let sqnr_db = if mse > 0.0 && signal_power > 0.0 {
            10.0 * (signal_power / mse).log10()
        } else {
            f32::INFINITY
        };
        Ok(Self {
            mse,
            max_abs,
            relative,
            sqnr_db,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bitwidth, QuantAxis, QuantConfig, QuantizedMatrix};
    use cocktail_tensor::rng;

    #[test]
    fn identical_matrices_have_zero_error_and_infinite_sqnr() {
        let a = rng::gaussian_matrix(4, 4, 1.0, 1);
        let stats = QuantErrorStats::between(&a, &a).unwrap();
        assert_eq!(stats.mse, 0.0);
        assert_eq!(stats.max_abs, 0.0);
        assert_eq!(stats.relative, 0.0);
        assert!(stats.sqnr_db.is_infinite());
    }

    #[test]
    fn sqnr_improves_with_more_bits() {
        let m = rng::gaussian_matrix(32, 64, 1.0, 2);
        let mut sqnrs = Vec::new();
        for bw in [Bitwidth::Int2, Bitwidth::Int4, Bitwidth::Int8] {
            let q = QuantizedMatrix::quantize(
                &m,
                &QuantConfig::new(bw, QuantAxis::PerToken, 32).unwrap(),
            )
            .unwrap();
            let stats = QuantErrorStats::between(&m, &q.dequantize()).unwrap();
            sqnrs.push(stats.sqnr_db);
        }
        assert!(sqnrs[0] < sqnrs[1] && sqnrs[1] < sqnrs[2], "{sqnrs:?}");
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(QuantErrorStats::between(&a, &b).is_err());
    }

    #[test]
    fn empty_matrices_are_fine() {
        let a = Matrix::zeros(0, 0);
        let stats = QuantErrorStats::between(&a, &a).unwrap();
        assert_eq!(stats.mse, 0.0);
        assert_eq!(stats.relative, 0.0);
    }
}
