//! The precision levels used by the Cocktail paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Storage precision of a KV-cache chunk.
///
/// The Cocktail search module assigns one of three precisions to every
/// context chunk — [`Bitwidth::Fp16`] for query-relevant chunks,
/// [`Bitwidth::Int4`] for the middle band and [`Bitwidth::Int2`] for
/// irrelevant chunks — while the uniform baselines (Atom, KIVI) use
/// [`Bitwidth::Int4`] everywhere and [`Bitwidth::Int8`] is provided for
/// completeness and ablations.
///
/// # Example
///
/// ```
/// use cocktail_quant::Bitwidth;
///
/// assert_eq!(Bitwidth::Int4.bits(), 4);
/// assert_eq!(Bitwidth::Int2.values_per_byte(), 4);
/// assert!(Bitwidth::Fp16.is_float());
/// assert!(Bitwidth::Int2 < Bitwidth::Fp16); // ordered by fidelity
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Bitwidth {
    /// 2-bit integers, 4 values per byte. Used for query-irrelevant chunks.
    Int2,
    /// 4-bit integers, 2 values per byte. The workhorse precision of all
    /// uniform-quantization baselines.
    Int4,
    /// 8-bit integers, 1 value per byte. Not used by the paper's headline
    /// configuration but needed for group-size and precision ablations.
    Int8,
    /// IEEE-754 half precision; no integer quantization is applied.
    Fp16,
}

impl Bitwidth {
    /// All variants in ascending fidelity order.
    pub const ALL: [Bitwidth; 4] = [
        Bitwidth::Int2,
        Bitwidth::Int4,
        Bitwidth::Int8,
        Bitwidth::Fp16,
    ];

    /// The three precisions Cocktail's search module can assign.
    pub const COCKTAIL_LEVELS: [Bitwidth; 3] = [Bitwidth::Int2, Bitwidth::Int4, Bitwidth::Fp16];

    /// Number of bits used to store one element.
    pub const fn bits(self) -> u32 {
        match self {
            Bitwidth::Int2 => 2,
            Bitwidth::Int4 => 4,
            Bitwidth::Int8 => 8,
            Bitwidth::Fp16 => 16,
        }
    }

    /// Number of quantized values that fit in one byte (1 for FP16, which is
    /// not packed).
    pub const fn values_per_byte(self) -> usize {
        match self {
            Bitwidth::Int2 => 4,
            Bitwidth::Int4 => 2,
            Bitwidth::Int8 => 1,
            Bitwidth::Fp16 => 0,
        }
    }

    /// Number of representable integer levels (`2^bits`); 0 for FP16.
    pub const fn levels(self) -> u32 {
        match self {
            Bitwidth::Int2 => 4,
            Bitwidth::Int4 => 16,
            Bitwidth::Int8 => 256,
            Bitwidth::Fp16 => 0,
        }
    }

    /// Largest quantized code (`levels - 1`); 0 for FP16.
    pub const fn max_code(self) -> u32 {
        match self {
            Bitwidth::Fp16 => 0,
            other => other.levels() - 1,
        }
    }

    /// Returns `true` for the floating-point pass-through precision.
    pub const fn is_float(self) -> bool {
        matches!(self, Bitwidth::Fp16)
    }

    /// Returns `true` for an integer precision.
    pub const fn is_integer(self) -> bool {
        !self.is_float()
    }

    /// Exact number of bytes needed to store `n` elements at this precision
    /// (excluding quantization parameters), rounding up to whole bytes per
    /// the packed layout.
    pub const fn payload_bytes(self, n: usize) -> usize {
        match self {
            Bitwidth::Fp16 => n * 2,
            Bitwidth::Int8 => n,
            Bitwidth::Int4 => n.div_ceil(2),
            Bitwidth::Int2 => n.div_ceil(4),
        }
    }

    /// Compression ratio relative to FP16 storage (e.g. 8.0 for INT2).
    pub fn compression_ratio(self) -> f64 {
        16.0 / self.bits() as f64
    }

    /// Short lowercase name used in experiment output (`"int2"`, `"fp16"`).
    pub const fn name(self) -> &'static str {
        match self {
            Bitwidth::Int2 => "int2",
            Bitwidth::Int4 => "int4",
            Bitwidth::Int8 => "int8",
            Bitwidth::Fp16 => "fp16",
        }
    }
}

impl fmt::Display for Bitwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_and_levels_are_consistent() {
        for bw in Bitwidth::ALL {
            if bw.is_integer() {
                assert_eq!(bw.levels(), 1 << bw.bits());
                assert_eq!(bw.max_code(), bw.levels() - 1);
            }
        }
    }

    #[test]
    fn fidelity_ordering_matches_bits() {
        assert!(Bitwidth::Int2 < Bitwidth::Int4);
        assert!(Bitwidth::Int4 < Bitwidth::Int8);
        assert!(Bitwidth::Int8 < Bitwidth::Fp16);
    }

    #[test]
    fn payload_bytes_rounds_up() {
        assert_eq!(Bitwidth::Int2.payload_bytes(5), 2);
        assert_eq!(Bitwidth::Int4.payload_bytes(5), 3);
        assert_eq!(Bitwidth::Int8.payload_bytes(5), 5);
        assert_eq!(Bitwidth::Fp16.payload_bytes(5), 10);
        assert_eq!(Bitwidth::Int2.payload_bytes(0), 0);
    }

    #[test]
    fn compression_ratio_relative_to_fp16() {
        assert_eq!(Bitwidth::Int2.compression_ratio(), 8.0);
        assert_eq!(Bitwidth::Int4.compression_ratio(), 4.0);
        assert_eq!(Bitwidth::Int8.compression_ratio(), 2.0);
        assert_eq!(Bitwidth::Fp16.compression_ratio(), 1.0);
    }

    #[test]
    fn display_matches_name() {
        for bw in Bitwidth::ALL {
            assert_eq!(bw.to_string(), bw.name());
        }
    }

    #[test]
    fn cocktail_levels_are_the_papers_three() {
        assert_eq!(
            Bitwidth::COCKTAIL_LEVELS,
            [Bitwidth::Int2, Bitwidth::Int4, Bitwidth::Fp16]
        );
    }

    #[test]
    fn values_per_byte_times_bits_is_eight() {
        for bw in [Bitwidth::Int2, Bitwidth::Int4, Bitwidth::Int8] {
            assert_eq!(bw.values_per_byte() as u32 * bw.bits(), 8);
        }
    }

    #[test]
    fn debug_formatting_is_nonempty() {
        for bw in Bitwidth::ALL {
            assert!(!format!("{bw:?}").is_empty());
        }
    }
}
