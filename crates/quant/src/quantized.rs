//! Asymmetric uniform group quantization of a dense matrix.

use crate::bitwidth::Bitwidth;
use crate::config::{QuantAxis, QuantConfig, QuantError};
use crate::packed::PackedInts;
use cocktail_tensor::{Matrix, F16};
use serde::{Deserialize, Serialize};

/// A matrix stored as bit-packed integer codes plus per-group scale and
/// zero-point parameters.
///
/// Quantization is *asymmetric uniform*: for each group the code of value
/// `x` is `round((x − zero) / scale)` clamped to the representable range,
/// with `zero = min(group)` and `scale = (max(group) − min(group)) / max_code`.
/// Quantization parameters are themselves rounded to FP16, which is how
/// real KV-cache quantization kernels store them.
///
/// The group layout follows [`QuantAxis`]: per-token groups run along rows
/// (one token's head dimensions), per-channel groups run down columns.
///
/// # Example
///
/// ```
/// use cocktail_quant::{Bitwidth, QuantAxis, QuantConfig, QuantizedMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let m = cocktail_tensor::rng::gaussian_matrix(16, 64, 1.0, 3);
/// let cfg = QuantConfig::new(Bitwidth::Int8, QuantAxis::PerToken, 32)?;
/// let q = QuantizedMatrix::quantize(&m, &cfg)?;
/// assert_eq!(q.shape(), (16, 64));
/// assert!(q.dequantize().max_abs_diff(&m)? < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    config: QuantConfig,
    codes: PackedInts,
    scales: Vec<f32>,
    zeros: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes a matrix according to `config`.
    ///
    /// # Errors
    ///
    /// Currently infallible for any non-degenerate configuration, but kept
    /// fallible so future layouts (e.g. NUQ codebooks) can report
    /// incompatibilities; the error type is [`QuantError`].
    pub fn quantize(matrix: &Matrix, config: &QuantConfig) -> Result<Self, QuantError> {
        let (rows, cols) = matrix.shape();
        let group = config.group_size();
        let max_code = config.bitwidth().max_code() as f32;

        let (group_count, elems) = match config.axis() {
            QuantAxis::PerToken => {
                let per_row = cols.div_ceil(group);
                (rows * per_row, rows * cols)
            }
            QuantAxis::PerChannel => {
                let per_col = rows.div_ceil(group);
                (cols * per_col, rows * cols)
            }
        };

        let mut scales = vec![1.0f32; group_count];
        let mut zeros = vec![0.0f32; group_count];
        let mut codes = vec![0u32; elems];

        // First pass: group statistics.
        let mut mins = vec![f32::INFINITY; group_count];
        let mut maxs = vec![f32::NEG_INFINITY; group_count];
        for r in 0..rows {
            for c in 0..cols {
                let g = Self::group_index_for(config, rows, cols, r, c);
                let v = matrix.get(r, c);
                if v < mins[g] {
                    mins[g] = v;
                }
                if v > maxs[g] {
                    maxs[g] = v;
                }
            }
        }
        for g in 0..group_count {
            if !mins[g].is_finite() {
                // Empty group (possible only when the matrix has zero rows
                // or columns); leave the identity parameters.
                mins[g] = 0.0;
                maxs[g] = 0.0;
            }
            let range = maxs[g] - mins[g];
            let scale = if range > 0.0 && max_code > 0.0 {
                range / max_code
            } else {
                1.0
            };
            // Quantization parameters are stored in FP16 by real kernels.
            scales[g] = F16::round_trip(scale).max(f32::MIN_POSITIVE);
            zeros[g] = F16::round_trip(mins[g]);
        }

        // Second pass: encode.
        for r in 0..rows {
            for c in 0..cols {
                let g = Self::group_index_for(config, rows, cols, r, c);
                let v = matrix.get(r, c);
                let code = ((v - zeros[g]) / scales[g]).round();
                let code = code.clamp(0.0, max_code) as u32;
                codes[r * cols + c] = code;
            }
        }

        Ok(Self {
            rows,
            cols,
            config: *config,
            codes: PackedInts::pack(&codes, config.bitwidth()),
            scales,
            zeros,
        })
    }

    #[inline]
    fn group_index_for(
        config: &QuantConfig,
        rows: usize,
        cols: usize,
        r: usize,
        c: usize,
    ) -> usize {
        let group = config.group_size();
        match config.axis() {
            QuantAxis::PerToken => {
                let per_row = cols.div_ceil(group);
                r * per_row + c / group
            }
            QuantAxis::PerChannel => {
                let per_col = rows.div_ceil(group);
                c * per_col + r / group
            }
        }
    }

    /// Number of rows of the original matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the original matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` of the original matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The configuration this matrix was quantized with.
    pub fn config(&self) -> &QuantConfig {
        &self.config
    }

    /// The storage bitwidth.
    pub fn bitwidth(&self) -> Bitwidth {
        self.config.bitwidth()
    }

    /// Number of (scale, zero-point) groups.
    pub fn group_count(&self) -> usize {
        self.scales.len()
    }

    /// Reconstructs element `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn dequantize_element(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let g = Self::group_index_for(&self.config, self.rows, self.cols, row, col);
        let code = self.codes.get(row * self.cols + col) as f32;
        code * self.scales[g] + self.zeros[g]
    }

    /// Reconstructs one row into the provided buffer.
    ///
    /// This is the inner primitive of the fused GEMM kernels in
    /// [`crate::gemm`]: a row (or a group of rows) is reconstructed into a
    /// small scratch buffer instead of materialising the whole matrix.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()` or `out.len() != cols()`.
    pub fn dequantize_row_into(&self, row: usize, out: &mut [f32]) {
        assert!(row < self.rows, "row out of bounds");
        assert_eq!(out.len(), self.cols, "output buffer length mismatch");
        for (c, slot) in out.iter_mut().enumerate() {
            *slot = self.dequantize_element(row, c);
        }
    }

    /// Reconstructs the full matrix.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            self.dequantize_row_into(r, out.row_mut(r));
        }
        out
    }

    /// Exact number of bytes occupied by the packed codes.
    pub fn payload_bytes(&self) -> usize {
        self.codes.byte_len()
    }

    /// Exact number of bytes occupied by quantization parameters (scale and
    /// zero-point stored as FP16 each).
    pub fn param_bytes(&self) -> usize {
        self.scales.len() * 2 + self.zeros.len() * 2
    }

    /// Total storage footprint in bytes (payload + parameters).
    pub fn storage_bytes(&self) -> usize {
        self.payload_bytes() + self.param_bytes()
    }

    /// Storage footprint of the same matrix kept in FP16, for comparison.
    pub fn fp16_reference_bytes(&self) -> usize {
        self.rows * self.cols * 2
    }

    /// Achieved compression ratio versus FP16 storage (>1 means smaller).
    pub fn compression_ratio(&self) -> f64 {
        if self.storage_bytes() == 0 {
            return 1.0;
        }
        self.fp16_reference_bytes() as f64 / self.storage_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_tensor::rng;
    use proptest::prelude::*;

    fn cfg(bw: Bitwidth, axis: QuantAxis, group: usize) -> QuantConfig {
        QuantConfig::new(bw, axis, group).expect("valid test config")
    }

    #[test]
    fn int8_reconstruction_error_is_small() {
        let m = rng::gaussian_matrix(32, 64, 1.0, 1);
        let q =
            QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int8, QuantAxis::PerToken, 32)).unwrap();
        let err = q.dequantize().max_abs_diff(&m).unwrap();
        assert!(err < 0.05, "int8 max error {err}");
    }

    #[test]
    fn error_grows_as_bits_shrink() {
        let m = rng::gaussian_matrix(32, 64, 1.0, 2);
        let mut errors = Vec::new();
        for bw in [Bitwidth::Int8, Bitwidth::Int4, Bitwidth::Int2] {
            let q = QuantizedMatrix::quantize(&m, &cfg(bw, QuantAxis::PerToken, 32)).unwrap();
            errors.push(q.dequantize().mse(&m).unwrap());
        }
        assert!(
            errors[0] < errors[1],
            "int8 {} < int4 {}",
            errors[0],
            errors[1]
        );
        assert!(
            errors[1] < errors[2],
            "int4 {} < int2 {}",
            errors[1],
            errors[2]
        );
    }

    #[test]
    fn constant_matrix_is_exact() {
        let m = Matrix::filled(8, 8, 3.25);
        let q =
            QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int2, QuantAxis::PerToken, 4)).unwrap();
        assert_eq!(q.dequantize().max_abs_diff(&m).unwrap(), 0.0);
    }

    #[test]
    fn group_extremes_are_exactly_representable() {
        // Min and max of every group must round-trip exactly (up to the FP16
        // rounding of the parameters themselves).
        let m = Matrix::from_rows(&[vec![-1.0, 0.5, 2.0, 4.0]]).unwrap();
        let q =
            QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int4, QuantAxis::PerToken, 4)).unwrap();
        let d = q.dequantize();
        assert!((d.get(0, 0) - -1.0).abs() < 1e-3);
        assert!((d.get(0, 3) - 4.0).abs() < 2e-3);
    }

    #[test]
    fn per_channel_groups_follow_columns() {
        // Build a matrix where each column has a wildly different scale; the
        // per-channel layout should adapt per column and beat per-token.
        let mut m = Matrix::zeros(16, 4);
        for r in 0..16 {
            for c in 0..4 {
                let scale = 10f32.powi(c as i32);
                m.set(r, c, (r as f32 / 16.0) * scale);
            }
        }
        let per_channel =
            QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int4, QuantAxis::PerChannel, 16)).unwrap();
        let per_token =
            QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int4, QuantAxis::PerToken, 4)).unwrap();
        let err_channel = per_channel.dequantize().mse(&m).unwrap();
        let err_token = per_token.dequantize().mse(&m).unwrap();
        assert!(
            err_channel < err_token,
            "per-channel {err_channel} should beat per-token {err_token} on channel-scaled data"
        );
    }

    #[test]
    fn storage_bytes_accounting() {
        let m = rng::uniform_matrix(64, 128, 1.0, 5);
        let q =
            QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int4, QuantAxis::PerToken, 32)).unwrap();
        // 64*128 values at 4 bits = 4096 bytes payload.
        assert_eq!(q.payload_bytes(), 64 * 128 / 2);
        // 128/32 = 4 groups per row, 64 rows = 256 groups, 4 bytes each.
        assert_eq!(q.param_bytes(), 256 * 4);
        assert_eq!(q.storage_bytes(), 4096 + 1024);
        assert!(q.compression_ratio() > 3.0);
    }

    #[test]
    fn ragged_group_sizes_are_handled() {
        // cols = 10 with group 4 → groups of 4, 4, 2 per row.
        let m = rng::uniform_matrix(3, 10, 1.0, 9);
        let q =
            QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int4, QuantAxis::PerToken, 4)).unwrap();
        assert_eq!(q.group_count(), 3 * 3);
        let err = q.dequantize().max_abs_diff(&m).unwrap();
        assert!(err < 0.2);
    }

    #[test]
    fn empty_matrix_quantizes_to_empty() {
        let m = Matrix::zeros(0, 0);
        let q =
            QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int2, QuantAxis::PerToken, 32)).unwrap();
        assert_eq!(q.shape(), (0, 0));
        assert_eq!(q.storage_bytes(), 0);
        assert_eq!(q.dequantize().shape(), (0, 0));
    }

    #[test]
    fn dequantize_element_matches_full_dequantize() {
        let m = rng::gaussian_matrix(8, 16, 2.0, 11);
        let q =
            QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int4, QuantAxis::PerChannel, 4)).unwrap();
        let full = q.dequantize();
        for r in 0..8 {
            for c in 0..16 {
                assert_eq!(q.dequantize_element(r, c), full.get(r, c));
            }
        }
    }

    #[test]
    fn compression_ratio_tracks_bitwidth() {
        let m = rng::uniform_matrix(128, 128, 1.0, 13);
        let r2 = QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int2, QuantAxis::PerToken, 32))
            .unwrap()
            .compression_ratio();
        let r4 = QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int4, QuantAxis::PerToken, 32))
            .unwrap()
            .compression_ratio();
        let r8 = QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int8, QuantAxis::PerToken, 32))
            .unwrap()
            .compression_ratio();
        assert!(r2 > r4 && r4 > r8 && r8 > 1.5, "r2={r2} r4={r4} r8={r8}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn reconstruction_error_is_bounded_by_group_range(
            rows in 1usize..12,
            cols in 1usize..24,
            seed in 0u64..500,
            group in 1usize..16,
        ) {
            let m = rng::uniform_matrix(rows, cols, 3.0, seed);
            let config = cfg(Bitwidth::Int4, QuantAxis::PerToken, group);
            let q = QuantizedMatrix::quantize(&m, &config).unwrap();
            let d = q.dequantize();
            // For asymmetric uniform quantization the max error is half a
            // step: (range / max_code) / 2, range ≤ 6.0 here. Allow slack for
            // the FP16 rounding of the parameters.
            let bound = 6.0 / 15.0 / 2.0 + 0.02;
            prop_assert!(d.max_abs_diff(&m).unwrap() <= bound);
        }

        #[test]
        fn quantization_is_deterministic(
            rows in 1usize..8,
            cols in 1usize..16,
            seed in 0u64..100,
        ) {
            let m = rng::gaussian_matrix(rows, cols, 1.0, seed);
            let config = cfg(Bitwidth::Int2, QuantAxis::PerToken, 8);
            let a = QuantizedMatrix::quantize(&m, &config).unwrap();
            let b = QuantizedMatrix::quantize(&m, &config).unwrap();
            prop_assert_eq!(a, b);
        }

        #[test]
        fn dequantized_values_stay_within_group_bounds(
            rows in 1usize..8,
            cols in 1usize..16,
            seed in 0u64..100,
        ) {
            let m = rng::uniform_matrix(rows, cols, 5.0, seed);
            let config = cfg(Bitwidth::Int4, QuantAxis::PerToken, 4);
            let q = QuantizedMatrix::quantize(&m, &config).unwrap();
            let d = q.dequantize();
            let lo = m.as_slice().iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = m.as_slice().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            for v in d.as_slice() {
                prop_assert!(*v >= lo - 0.05 && *v <= hi + 0.05, "v={v} lo={lo} hi={hi}");
            }
        }
    }
}
