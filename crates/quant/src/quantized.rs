//! Asymmetric uniform group quantization of a dense matrix.

use crate::bitwidth::Bitwidth;
use crate::config::{QuantAxis, QuantConfig, QuantError};
use crate::packed::PackedInts;
use cocktail_tensor::{Matrix, F16};
use serde::{Deserialize, Serialize};

/// A matrix stored as bit-packed integer codes plus per-group scale and
/// zero-point parameters.
///
/// Quantization is *asymmetric uniform*: for each group the code of value
/// `x` is `round((x − zero) / scale)` clamped to the representable range,
/// with `zero = min(group)` and `scale = (max(group) − min(group)) / max_code`.
/// Quantization parameters are themselves rounded to FP16, which is how
/// real KV-cache quantization kernels store them.
///
/// The group layout follows [`QuantAxis`]: per-token groups run along rows
/// (one token's head dimensions), per-channel groups run down columns.
///
/// # Example
///
/// ```
/// use cocktail_quant::{Bitwidth, QuantAxis, QuantConfig, QuantizedMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let m = cocktail_tensor::rng::gaussian_matrix(16, 64, 1.0, 3);
/// let cfg = QuantConfig::new(Bitwidth::Int8, QuantAxis::PerToken, 32)?;
/// let q = QuantizedMatrix::quantize(&m, &cfg)?;
/// assert_eq!(q.shape(), (16, 64));
/// assert!(q.dequantize().max_abs_diff(&m)? < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    config: QuantConfig,
    codes: PackedInts,
    scales: Vec<f32>,
    zeros: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes a matrix according to `config`.
    ///
    /// # Errors
    ///
    /// Currently infallible for any non-degenerate configuration, but kept
    /// fallible so future layouts (e.g. NUQ codebooks) can report
    /// incompatibilities; the error type is [`QuantError`].
    pub fn quantize(matrix: &Matrix, config: &QuantConfig) -> Result<Self, QuantError> {
        let (rows, cols) = matrix.shape();
        match config.axis() {
            QuantAxis::PerToken => {
                // Hot axis (every KV chunk takes it): group-aligned chunked
                // row scans, shared with the row-tiled parallel path in
                // [`crate::parallel`].
                let tile = quantize_rows_per_token(matrix, config, 0, rows);
                Ok(Self::assemble(
                    rows,
                    cols,
                    *config,
                    &tile.codes,
                    tile.scales,
                    tile.zeros,
                ))
            }
            QuantAxis::PerChannel => Ok(Self::quantize_per_channel(matrix, config)),
        }
    }

    /// Generic two-pass path for per-channel grouping, where groups run
    /// down columns and therefore span rows. Iteration order (row-major,
    /// per-element group lookup) matches the original scalar kernel.
    fn quantize_per_channel(matrix: &Matrix, config: &QuantConfig) -> Self {
        let (rows, cols) = matrix.shape();
        let group = config.group_size();
        let max_code = config.bitwidth().max_code() as f32;
        let per_col = rows.div_ceil(group);
        let group_count = cols * per_col;

        let mut scales = vec![1.0f32; group_count];
        let mut zeros = vec![0.0f32; group_count];
        let mut codes = vec![0u32; rows * cols];

        // First pass: group statistics.
        let mut mins = vec![f32::INFINITY; group_count];
        let mut maxs = vec![f32::NEG_INFINITY; group_count];
        for r in 0..rows {
            let row_group = r / group;
            for (c, &v) in matrix.row(r).iter().enumerate() {
                let g = c * per_col + row_group;
                if v < mins[g] {
                    mins[g] = v;
                }
                if v > maxs[g] {
                    maxs[g] = v;
                }
            }
        }
        for g in 0..group_count {
            if !mins[g].is_finite() {
                // Empty group (possible only when the matrix has zero rows
                // or columns); leave the identity parameters.
                mins[g] = 0.0;
                maxs[g] = 0.0;
            }
            let (scale, zero) = group_params(mins[g], maxs[g], max_code);
            scales[g] = scale;
            zeros[g] = zero;
        }

        // Second pass: encode.
        for r in 0..rows {
            let row_group = r / group;
            for (c, &v) in matrix.row(r).iter().enumerate() {
                let g = c * per_col + row_group;
                codes[r * cols + c] = encode(v, scales[g], zeros[g], max_code);
            }
        }

        Self::assemble(rows, cols, *config, &codes, scales, zeros)
    }

    /// Builds a matrix from already-computed parameters and unpacked codes
    /// (the stitch step of the row-tiled parallel quantizer).
    pub(crate) fn assemble(
        rows: usize,
        cols: usize,
        config: QuantConfig,
        codes: &[u32],
        scales: Vec<f32>,
        zeros: Vec<f32>,
    ) -> Self {
        debug_assert_eq!(codes.len(), rows * cols);
        debug_assert_eq!(scales.len(), zeros.len());
        Self {
            rows,
            cols,
            config,
            codes: PackedInts::pack(codes, config.bitwidth()),
            scales,
            zeros,
        }
    }

    #[inline]
    fn group_index_for(
        config: &QuantConfig,
        rows: usize,
        cols: usize,
        r: usize,
        c: usize,
    ) -> usize {
        let group = config.group_size();
        match config.axis() {
            QuantAxis::PerToken => {
                let per_row = cols.div_ceil(group);
                r * per_row + c / group
            }
            QuantAxis::PerChannel => {
                let per_col = rows.div_ceil(group);
                c * per_col + r / group
            }
        }
    }

    /// Number of rows of the original matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the original matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` of the original matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The configuration this matrix was quantized with.
    pub fn config(&self) -> &QuantConfig {
        &self.config
    }

    /// The storage bitwidth.
    pub fn bitwidth(&self) -> Bitwidth {
        self.config.bitwidth()
    }

    /// Number of (scale, zero-point) groups.
    pub fn group_count(&self) -> usize {
        self.scales.len()
    }

    /// Reconstructs element `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn dequantize_element(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let g = Self::group_index_for(&self.config, self.rows, self.cols, row, col);
        let code = self.codes.get(row * self.cols + col) as f32;
        code * self.scales[g] + self.zeros[g]
    }

    /// Reconstructs one row into the provided buffer.
    ///
    /// This is the inner primitive of the fused GEMM kernels in
    /// [`crate::gemm`]: a row (or a group of rows) is reconstructed into a
    /// small scratch buffer instead of materialising the whole matrix. The
    /// codes are unpacked in bulk and the affine step runs over
    /// group-aligned contiguous chunks, so the hot loops carry no
    /// per-element bounds checks.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()` or `out.len() != cols()`.
    pub fn dequantize_row_into(&self, row: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.cols, "output buffer length mismatch");
        self.dequantize_row_range_into(row, 0, out);
    }

    /// Reconstructs the column slice `[col_start, col_start + out.len())`
    /// of one row — the primitive behind the column-tiled value kernel in
    /// [`crate::parallel`].
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()` or the column range exceeds `cols()`.
    pub fn dequantize_row_range_into(&self, row: usize, col_start: usize, out: &mut [f32]) {
        assert!(row < self.rows, "row out of bounds");
        assert!(
            col_start + out.len() <= self.cols,
            "column range out of bounds"
        );
        if out.is_empty() {
            return;
        }
        self.codes.unpack_f32_into(row * self.cols + col_start, out);
        let group = self.config.group_size();
        match self.config.axis() {
            QuantAxis::PerToken => {
                // Groups are contiguous row slices: apply each group's
                // affine parameters to its whole chunk at once.
                let per_row = self.cols.div_ceil(group);
                let base = row * per_row;
                let mut col = col_start;
                let mut off = 0;
                while off < out.len() {
                    let group_in_row = col / group;
                    let group_end = ((group_in_row + 1) * group).min(self.cols);
                    let take = (group_end - col).min(out.len() - off);
                    let scale = self.scales[base + group_in_row];
                    let zero = self.zeros[base + group_in_row];
                    for v in &mut out[off..off + take] {
                        *v = *v * scale + zero;
                    }
                    col += take;
                    off += take;
                }
            }
            QuantAxis::PerChannel => {
                let per_col = self.rows.div_ceil(group);
                let row_group = row / group;
                for (i, v) in out.iter_mut().enumerate() {
                    let g = (col_start + i) * per_col + row_group;
                    *v = *v * self.scales[g] + self.zeros[g];
                }
            }
        }
    }

    /// Reconstructs the full matrix.
    pub fn dequantize(&self) -> Matrix {
        self.dequantize_rows(0, self.rows)
    }

    /// Reconstructs the row slice `[row_start, row_end)` as its own matrix
    /// — the tile primitive of the row-parallel dequantizer in
    /// [`crate::parallel`].
    pub(crate) fn dequantize_rows(&self, row_start: usize, row_end: usize) -> Matrix {
        let mut out = Matrix::zeros(row_end - row_start, self.cols);
        for r in row_start..row_end {
            self.dequantize_row_range_into(r, 0, out.row_mut(r - row_start));
        }
        out
    }

    /// Exact number of bytes occupied by the packed codes.
    pub fn payload_bytes(&self) -> usize {
        self.codes.byte_len()
    }

    /// Exact number of bytes occupied by quantization parameters (scale and
    /// zero-point stored as FP16 each).
    pub fn param_bytes(&self) -> usize {
        self.scales.len() * 2 + self.zeros.len() * 2
    }

    /// Total storage footprint in bytes (payload + parameters).
    pub fn storage_bytes(&self) -> usize {
        self.payload_bytes() + self.param_bytes()
    }

    /// Storage footprint of the same matrix kept in FP16, for comparison.
    pub fn fp16_reference_bytes(&self) -> usize {
        self.rows * self.cols * 2
    }

    /// Achieved compression ratio versus FP16 storage (>1 means smaller).
    pub fn compression_ratio(&self) -> f64 {
        if self.storage_bytes() == 0 {
            return 1.0;
        }
        self.fp16_reference_bytes() as f64 / self.storage_bytes() as f64
    }
}

/// Per-group parameters from group statistics — the one place the scale /
/// zero-point formula lives. FP16 rounding matches what real KV-cache
/// kernels store.
#[inline]
fn group_params(min: f32, max: f32, max_code: f32) -> (f32, f32) {
    let range = max - min;
    let scale = if range > 0.0 && max_code > 0.0 {
        range / max_code
    } else {
        1.0
    };
    (
        F16::round_trip(scale).max(f32::MIN_POSITIVE),
        F16::round_trip(min),
    )
}

/// Encodes one value against its group's affine parameters.
#[inline]
fn encode(v: f32, scale: f32, zero: f32, max_code: f32) -> u32 {
    ((v - zero) / scale).round().clamp(0.0, max_code) as u32
}

/// One row tile's worth of per-token quantization output: parameters and
/// (unpacked) codes for rows `[row_start, row_end)`, laid out exactly as
/// the corresponding slice of the full matrix. Tiles from adjacent row
/// ranges concatenate into the full layout, which is what makes the
/// row-parallel quantizer in [`crate::parallel`] bit-identical to the
/// scalar path.
pub(crate) struct PerTokenTile {
    pub(crate) scales: Vec<f32>,
    pub(crate) zeros: Vec<f32>,
    pub(crate) codes: Vec<u32>,
}

/// Quantizes rows `[row_start, row_end)` under per-token grouping.
///
/// Per-token groups never cross a row, so each row is processed as a
/// sequence of group-aligned contiguous chunks: one min/max scan and one
/// encode pass per chunk, no per-element group-index arithmetic and no
/// bounds checks inside the hot loops.
pub(crate) fn quantize_rows_per_token(
    matrix: &Matrix,
    config: &QuantConfig,
    row_start: usize,
    row_end: usize,
) -> PerTokenTile {
    let cols = matrix.cols();
    let group = config.group_size();
    let max_code = config.bitwidth().max_code() as f32;
    let per_row = cols.div_ceil(group);
    let rows = row_end - row_start;

    let mut scales = Vec::with_capacity(rows * per_row);
    let mut zeros = Vec::with_capacity(rows * per_row);
    let mut codes = Vec::with_capacity(rows * cols);

    for r in row_start..row_end {
        let row = matrix.row(r);
        for chunk in row.chunks(group) {
            // Same comparison pattern as the original two-pass kernel, so
            // the statistics (and therefore every parameter bit) match.
            let mut min = f32::INFINITY;
            let mut max = f32::NEG_INFINITY;
            for &v in chunk {
                if v < min {
                    min = v;
                }
                if v > max {
                    max = v;
                }
            }
            let (scale, zero) = group_params(min, max, max_code);
            scales.push(scale);
            zeros.push(zero);
            for &v in chunk {
                codes.push(encode(v, scale, zero, max_code));
            }
        }
    }
    PerTokenTile {
        scales,
        zeros,
        codes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_tensor::rng;
    use proptest::prelude::*;

    fn cfg(bw: Bitwidth, axis: QuantAxis, group: usize) -> QuantConfig {
        QuantConfig::new(bw, axis, group).expect("valid test config")
    }

    #[test]
    fn int8_reconstruction_error_is_small() {
        let m = rng::gaussian_matrix(32, 64, 1.0, 1);
        let q =
            QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int8, QuantAxis::PerToken, 32)).unwrap();
        let err = q.dequantize().max_abs_diff(&m).unwrap();
        assert!(err < 0.05, "int8 max error {err}");
    }

    #[test]
    fn error_grows_as_bits_shrink() {
        let m = rng::gaussian_matrix(32, 64, 1.0, 2);
        let mut errors = Vec::new();
        for bw in [Bitwidth::Int8, Bitwidth::Int4, Bitwidth::Int2] {
            let q = QuantizedMatrix::quantize(&m, &cfg(bw, QuantAxis::PerToken, 32)).unwrap();
            errors.push(q.dequantize().mse(&m).unwrap());
        }
        assert!(
            errors[0] < errors[1],
            "int8 {} < int4 {}",
            errors[0],
            errors[1]
        );
        assert!(
            errors[1] < errors[2],
            "int4 {} < int2 {}",
            errors[1],
            errors[2]
        );
    }

    #[test]
    fn constant_matrix_is_exact() {
        let m = Matrix::filled(8, 8, 3.25);
        let q =
            QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int2, QuantAxis::PerToken, 4)).unwrap();
        assert_eq!(q.dequantize().max_abs_diff(&m).unwrap(), 0.0);
    }

    #[test]
    fn group_extremes_are_exactly_representable() {
        // Min and max of every group must round-trip exactly (up to the FP16
        // rounding of the parameters themselves).
        let m = Matrix::from_rows(&[vec![-1.0, 0.5, 2.0, 4.0]]).unwrap();
        let q =
            QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int4, QuantAxis::PerToken, 4)).unwrap();
        let d = q.dequantize();
        assert!((d.get(0, 0) - -1.0).abs() < 1e-3);
        assert!((d.get(0, 3) - 4.0).abs() < 2e-3);
    }

    #[test]
    fn per_channel_groups_follow_columns() {
        // Build a matrix where each column has a wildly different scale; the
        // per-channel layout should adapt per column and beat per-token.
        let mut m = Matrix::zeros(16, 4);
        for r in 0..16 {
            for c in 0..4 {
                let scale = 10f32.powi(c as i32);
                m.set(r, c, (r as f32 / 16.0) * scale);
            }
        }
        let per_channel =
            QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int4, QuantAxis::PerChannel, 16)).unwrap();
        let per_token =
            QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int4, QuantAxis::PerToken, 4)).unwrap();
        let err_channel = per_channel.dequantize().mse(&m).unwrap();
        let err_token = per_token.dequantize().mse(&m).unwrap();
        assert!(
            err_channel < err_token,
            "per-channel {err_channel} should beat per-token {err_token} on channel-scaled data"
        );
    }

    #[test]
    fn storage_bytes_accounting() {
        let m = rng::uniform_matrix(64, 128, 1.0, 5);
        let q =
            QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int4, QuantAxis::PerToken, 32)).unwrap();
        // 64*128 values at 4 bits = 4096 bytes payload.
        assert_eq!(q.payload_bytes(), 64 * 128 / 2);
        // 128/32 = 4 groups per row, 64 rows = 256 groups, 4 bytes each.
        assert_eq!(q.param_bytes(), 256 * 4);
        assert_eq!(q.storage_bytes(), 4096 + 1024);
        assert!(q.compression_ratio() > 3.0);
    }

    #[test]
    fn ragged_group_sizes_are_handled() {
        // cols = 10 with group 4 → groups of 4, 4, 2 per row.
        let m = rng::uniform_matrix(3, 10, 1.0, 9);
        let q =
            QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int4, QuantAxis::PerToken, 4)).unwrap();
        assert_eq!(q.group_count(), 3 * 3);
        let err = q.dequantize().max_abs_diff(&m).unwrap();
        assert!(err < 0.2);
    }

    #[test]
    fn empty_matrix_quantizes_to_empty() {
        let m = Matrix::zeros(0, 0);
        let q =
            QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int2, QuantAxis::PerToken, 32)).unwrap();
        assert_eq!(q.shape(), (0, 0));
        assert_eq!(q.storage_bytes(), 0);
        assert_eq!(q.dequantize().shape(), (0, 0));
    }

    #[test]
    fn dequantize_element_matches_full_dequantize() {
        let m = rng::gaussian_matrix(8, 16, 2.0, 11);
        let q =
            QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int4, QuantAxis::PerChannel, 4)).unwrap();
        let full = q.dequantize();
        for r in 0..8 {
            for c in 0..16 {
                assert_eq!(q.dequantize_element(r, c), full.get(r, c));
            }
        }
    }

    #[test]
    fn compression_ratio_tracks_bitwidth() {
        let m = rng::uniform_matrix(128, 128, 1.0, 13);
        let r2 = QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int2, QuantAxis::PerToken, 32))
            .unwrap()
            .compression_ratio();
        let r4 = QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int4, QuantAxis::PerToken, 32))
            .unwrap()
            .compression_ratio();
        let r8 = QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int8, QuantAxis::PerToken, 32))
            .unwrap()
            .compression_ratio();
        assert!(r2 > r4 && r4 > r8 && r8 > 1.5, "r2={r2} r4={r4} r8={r8}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn reconstruction_error_is_bounded_by_group_range(
            rows in 1usize..12,
            cols in 1usize..24,
            seed in 0u64..500,
            group in 1usize..16,
        ) {
            let m = rng::uniform_matrix(rows, cols, 3.0, seed);
            let config = cfg(Bitwidth::Int4, QuantAxis::PerToken, group);
            let q = QuantizedMatrix::quantize(&m, &config).unwrap();
            let d = q.dequantize();
            // For asymmetric uniform quantization the max error is half a
            // step: (range / max_code) / 2, range ≤ 6.0 here. Allow slack for
            // the FP16 rounding of the parameters.
            let bound = 6.0 / 15.0 / 2.0 + 0.02;
            prop_assert!(d.max_abs_diff(&m).unwrap() <= bound);
        }

        #[test]
        fn quantization_is_deterministic(
            rows in 1usize..8,
            cols in 1usize..16,
            seed in 0u64..100,
        ) {
            let m = rng::gaussian_matrix(rows, cols, 1.0, seed);
            let config = cfg(Bitwidth::Int2, QuantAxis::PerToken, 8);
            let a = QuantizedMatrix::quantize(&m, &config).unwrap();
            let b = QuantizedMatrix::quantize(&m, &config).unwrap();
            prop_assert_eq!(a, b);
        }

        #[test]
        fn dequantized_values_stay_within_group_bounds(
            rows in 1usize..8,
            cols in 1usize..16,
            seed in 0u64..100,
        ) {
            let m = rng::uniform_matrix(rows, cols, 5.0, seed);
            let config = cfg(Bitwidth::Int4, QuantAxis::PerToken, 4);
            let q = QuantizedMatrix::quantize(&m, &config).unwrap();
            let d = q.dequantize();
            let lo = m.as_slice().iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = m.as_slice().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            for v in d.as_slice() {
                prop_assert!(*v >= lo - 0.05 && *v <= hi + 0.05, "v={v} lo={lo} hi={hi}");
            }
        }
    }
}
