//! Bit-packed storage for 2/4/8-bit integer codes.

use crate::bitwidth::Bitwidth;
use serde::{Deserialize, Serialize};

/// A sequence of unsigned integer codes packed `bits`-per-value into bytes.
///
/// INT2 stores four codes per byte, INT4 two and INT8 one, little-endian
/// within the byte (the first logical value occupies the least-significant
/// bits). This is the physical representation whose size the hardware model
/// accounts for.
///
/// # Example
///
/// ```
/// use cocktail_quant::{Bitwidth, PackedInts};
///
/// let packed = PackedInts::pack(&[3, 0, 1, 2, 3], Bitwidth::Int2);
/// assert_eq!(packed.len(), 5);
/// assert_eq!(packed.byte_len(), 2);
/// assert_eq!(packed.get(0), 3);
/// assert_eq!(packed.unpack(), vec![3, 0, 1, 2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedInts {
    bitwidth: Bitwidth,
    len: usize,
    bytes: Vec<u8>,
}

impl PackedInts {
    /// Packs a slice of codes at the given integer bitwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bitwidth` is [`Bitwidth::Fp16`] or any code exceeds
    /// [`Bitwidth::max_code`].
    pub fn pack(codes: &[u32], bitwidth: Bitwidth) -> Self {
        assert!(
            bitwidth.is_integer(),
            "packed storage requires an integer bitwidth"
        );
        let max = bitwidth.max_code();
        let per_byte = bitwidth.values_per_byte();
        let bits = bitwidth.bits();
        let mut bytes = vec![0u8; codes.len().div_ceil(per_byte)];
        for (i, &code) in codes.iter().enumerate() {
            assert!(code <= max, "code {code} exceeds max {max} for {bitwidth}");
            let byte = i / per_byte;
            let slot = (i % per_byte) as u32;
            bytes[byte] |= (code as u8) << (slot * bits);
        }
        Self {
            bitwidth,
            len: codes.len(),
            bytes,
        }
    }

    /// Creates an empty container for the given bitwidth.
    pub fn empty(bitwidth: Bitwidth) -> Self {
        Self::pack(&[], bitwidth)
    }

    /// Number of logical values stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of bytes of payload storage.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// The bitwidth the values are packed at.
    pub fn bitwidth(&self) -> Bitwidth {
        self.bitwidth
    }

    /// Raw packed bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Returns the `i`-th logical value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        assert!(i < self.len, "packed index out of bounds");
        let per_byte = self.bitwidth.values_per_byte();
        let bits = self.bitwidth.bits();
        let byte = self.bytes[i / per_byte];
        let slot = (i % per_byte) as u32;
        let mask = self.bitwidth.max_code() as u8;
        u32::from((byte >> (slot * bits)) & mask)
    }

    /// Decodes the logical values `[start, start + out.len())` into `out`
    /// as `f32` — the bulk primitive behind
    /// [`QuantizedMatrix::dequantize_row_into`](crate::QuantizedMatrix::dequantize_row_into).
    ///
    /// Unlike a [`PackedInts::get`] loop this runs one fixed-width decode
    /// loop per bitwidth over whole bytes (plus short unaligned head/tail
    /// fixups), with no per-element index arithmetic or bounds checks, so
    /// the autovectorizer can lift it.
    ///
    /// # Panics
    ///
    /// Panics if `start + out.len() > len()`.
    pub fn unpack_f32_into(&self, start: usize, out: &mut [f32]) {
        assert!(
            start
                .checked_add(out.len())
                .is_some_and(|end| end <= self.len),
            "packed range out of bounds"
        );
        if out.is_empty() {
            return;
        }
        match self.bitwidth {
            Bitwidth::Int8 => {
                let bytes = &self.bytes[start..start + out.len()];
                for (v, &b) in out.iter_mut().zip(bytes) {
                    *v = f32::from(b);
                }
            }
            Bitwidth::Int4 => {
                let mut i = start;
                let mut o = 0;
                if i % 2 == 1 {
                    out[0] = f32::from(self.bytes[i / 2] >> 4);
                    i += 1;
                    o += 1;
                }
                let bytes = &self.bytes[i / 2..];
                let rest = out.len() - o;
                let mut pairs = out[o..].chunks_exact_mut(2);
                for (pair, &b) in (&mut pairs).zip(bytes) {
                    pair[0] = f32::from(b & 0x0F);
                    pair[1] = f32::from(b >> 4);
                }
                let tail = pairs.into_remainder();
                if let [last] = tail {
                    *last = f32::from(bytes[rest / 2] & 0x0F);
                }
            }
            Bitwidth::Int2 => {
                let mut i = start;
                let mut o = 0;
                while o < out.len() && i % 4 != 0 {
                    out[o] = f32::from((self.bytes[i / 4] >> ((i % 4) * 2)) & 0x03);
                    i += 1;
                    o += 1;
                }
                let bytes = &self.bytes[i / 4..];
                let rest = out.len() - o;
                let mut quads = out[o..].chunks_exact_mut(4);
                for (quad, &b) in (&mut quads).zip(bytes) {
                    quad[0] = f32::from(b & 0x03);
                    quad[1] = f32::from((b >> 2) & 0x03);
                    quad[2] = f32::from((b >> 4) & 0x03);
                    quad[3] = f32::from(b >> 6);
                }
                let tail = quads.into_remainder();
                if !tail.is_empty() {
                    let b = bytes[rest / 4];
                    for (slot, v) in tail.iter_mut().enumerate() {
                        *v = f32::from((b >> (slot * 2)) & 0x03);
                    }
                }
            }
            Bitwidth::Fp16 => unreachable!("packed storage is integer-bitwidth only"),
        }
    }

    /// Unpacks every value into a `Vec<u32>`.
    pub fn unpack(&self) -> Vec<u32> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Iterator over the logical values.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn int2_packs_four_per_byte() {
        let p = PackedInts::pack(&[0, 1, 2, 3, 3, 2, 1, 0], Bitwidth::Int2);
        assert_eq!(p.byte_len(), 2);
        assert_eq!(p.unpack(), vec![0, 1, 2, 3, 3, 2, 1, 0]);
    }

    #[test]
    fn int4_packs_two_per_byte() {
        let p = PackedInts::pack(&[15, 0, 7], Bitwidth::Int4);
        assert_eq!(p.byte_len(), 2);
        assert_eq!(p.unpack(), vec![15, 0, 7]);
        assert_eq!(p.as_bytes()[0], 0x0F);
    }

    #[test]
    fn int8_is_one_per_byte() {
        let p = PackedInts::pack(&[255, 128, 0], Bitwidth::Int8);
        assert_eq!(p.byte_len(), 3);
        assert_eq!(p.unpack(), vec![255, 128, 0]);
    }

    #[test]
    fn empty_has_no_bytes() {
        let p = PackedInts::empty(Bitwidth::Int2);
        assert!(p.is_empty());
        assert_eq!(p.byte_len(), 0);
        assert_eq!(p.unpack(), Vec::<u32>::new());
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn pack_rejects_out_of_range_code() {
        PackedInts::pack(&[4], Bitwidth::Int2);
    }

    #[test]
    #[should_panic(expected = "integer bitwidth")]
    fn pack_rejects_fp16() {
        PackedInts::pack(&[0], Bitwidth::Fp16);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let p = PackedInts::pack(&[1, 2], Bitwidth::Int4);
        p.get(2);
    }

    #[test]
    fn iter_matches_unpack() {
        let codes = vec![1u32, 3, 0, 2, 1];
        let p = PackedInts::pack(&codes, Bitwidth::Int2);
        let collected: Vec<u32> = p.iter().collect();
        assert_eq!(collected, codes);
    }

    #[test]
    fn byte_len_matches_bitwidth_formula() {
        for bw in [Bitwidth::Int2, Bitwidth::Int4, Bitwidth::Int8] {
            for n in 0..20 {
                let codes: Vec<u32> = (0..n).map(|i| i as u32 % bw.levels()).collect();
                let p = PackedInts::pack(&codes, bw);
                assert_eq!(p.byte_len(), bw.payload_bytes(n), "{bw} n={n}");
            }
        }
    }

    #[test]
    fn unpack_f32_into_matches_get_for_every_range() {
        // Exhaustive over (start, len) for an awkward non-multiple length,
        // covering every head/body/tail alignment combination per bitwidth.
        for bw in [Bitwidth::Int2, Bitwidth::Int4, Bitwidth::Int8] {
            let codes: Vec<u32> = (0..37u32).map(|i| (i * 7 + 3) % bw.levels()).collect();
            let p = PackedInts::pack(&codes, bw);
            for start in 0..=codes.len() {
                for len in 0..=codes.len() - start {
                    let mut out = vec![f32::NAN; len];
                    p.unpack_f32_into(start, &mut out);
                    let expected: Vec<f32> =
                        (start..start + len).map(|i| p.get(i) as f32).collect();
                    assert_eq!(out, expected, "{bw} start={start} len={len}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "packed range out of bounds")]
    fn unpack_f32_into_rejects_out_of_range() {
        let p = PackedInts::pack(&[1, 2, 3], Bitwidth::Int4);
        let mut out = vec![0.0f32; 2];
        p.unpack_f32_into(2, &mut out);
    }

    proptest! {
        #[test]
        fn pack_unpack_round_trip_int2(codes in proptest::collection::vec(0u32..4, 0..128)) {
            let p = PackedInts::pack(&codes, Bitwidth::Int2);
            prop_assert_eq!(p.unpack(), codes);
        }

        #[test]
        fn pack_unpack_round_trip_int4(codes in proptest::collection::vec(0u32..16, 0..128)) {
            let p = PackedInts::pack(&codes, Bitwidth::Int4);
            prop_assert_eq!(p.unpack(), codes);
        }

        #[test]
        fn pack_unpack_round_trip_int8(codes in proptest::collection::vec(0u32..256, 0..128)) {
            let p = PackedInts::pack(&codes, Bitwidth::Int8);
            prop_assert_eq!(p.unpack(), codes);
        }
    }
}
