//! Threshold-gated data-parallel dispatch for the hot quantization kernels.
//!
//! This is the compute-kernel layer added by the SIMD/data-parallel PR: a
//! process-wide persistent [`KernelPool`] plus dispatcher wrappers around
//! the scalar kernels in [`crate::gemm`] and [`crate::QuantizedMatrix`].
//! Every dispatcher follows the same recipe:
//!
//! 1. **Threshold gate.** Small operands (anything below
//!    [`PARALLEL_THRESHOLD`] multiply-adds / elements — e.g. every
//!    single-token decode product) take the scalar fused kernel directly
//!    and pay zero dispatch overhead. The scalar kernels are themselves
//!    bit-identical to the `*_reference` paths, which therefore serve as
//!    the documented fallback of the whole dispatcher stack.
//! 2. **Deterministic tiling.** Large operands are cut into contiguous
//!    tiles by [`tile_ranges`]: tile `t` always owns the `t`-th contiguous
//!    slice of the output, independent of how many worker threads actually
//!    execute it.
//! 3. **Owned tiles, ordered stitch.** Each tile job owns its inputs
//!    (shared `Arc`s) and produces its own output block; the caller
//!    stitches blocks back together in ascending tile order. Work never
//!    migrates and no accumulation is reassociated, so the result is
//!    bit-identical to the scalar kernel for *every* thread count —
//!    including 1 — which is what the proptests in this module pin down.
//!
//! Thread count resolution order: the runtime override installed by
//! [`set_kernel_thread_override`] (used by experiments and tests to compare
//! scalar vs parallel in one process), else the [`KERNEL_THREADS_ENV`]
//! environment variable (read once), else `std::thread::available_parallelism`.

use crate::config::{QuantAxis, QuantConfig, QuantError};
use crate::gemm;
use crate::quantized::{self, QuantizedMatrix};
use cocktail_tensor::Matrix;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::thread::JoinHandle;

/// A boxed unit of work shipped to one pool worker. Jobs own everything
/// they touch (cloned `Arc`s, moved matrices) and report back through a
/// channel they capture, so no borrowed state crosses the thread boundary.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Minimum amount of kernel work (multiply-adds for the GEMMs, elements
/// for quantize/dequantize) before a dispatcher forks tiles onto the pool.
///
/// Below this the scalar fused kernel wins outright: a single-token decode
/// score product against a 256-token chunk is ~16k multiply-adds, well
/// under the gate, so decode never pays dispatch overhead.
pub const PARALLEL_THRESHOLD: usize = 64 * 1024;

/// Environment variable that pins the kernel thread count (read once per
/// process). Unset or unparsable values fall back to
/// `std::thread::available_parallelism`.
pub const KERNEL_THREADS_ENV: &str = "COCKTAIL_KERNEL_THREADS";

/// A fixed set of persistent worker threads with per-worker job channels.
///
/// The same deterministic design as the engine's `WorkerPool` (which is a
/// thin wrapper over this type since the kernel-parallelism PR): each
/// worker owns one job channel, callers assign work to workers by index,
/// jobs never migrate, and dropping the pool closes the channels and joins
/// every thread.
pub struct KernelPool {
    senders: Vec<mpsc::Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    spawned: usize,
}

impl KernelPool {
    /// Spawns `workers` threads (at least one), each looping over its own
    /// job channel until the pool is dropped.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        let mut spawned = 0usize;
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<Job>();
            spawned += 1;
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    job();
                }
            }));
            senders.push(tx);
        }
        Self {
            senders,
            handles,
            spawned,
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Total threads ever spawned by this pool. The pool never re-spawns,
    /// so this equals [`KernelPool::workers`] for the pool's whole
    /// lifetime — the invariant the persistence tests assert.
    pub fn spawn_count(&self) -> usize {
        self.spawned
    }

    /// Ships a job to worker `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range or the worker has died (a
    /// worker only exits when the pool is dropped, so a dead worker here
    /// means a previous job panicked).
    pub fn run_on(&self, index: usize, job: Job) {
        self.senders[index]
            .send(job)
            .expect("pool worker is alive until the pool drops");
    }
}

impl fmt::Debug for KernelPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelPool")
            .field("workers", &self.workers())
            .field("spawned", &self.spawned)
            .finish()
    }
}

impl Drop for KernelPool {
    fn drop(&mut self) {
        // Closing the channels ends the worker loops; join so no thread
        // outlives the pool owner.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

static KERNEL_POOL: OnceLock<KernelPool> = OnceLock::new();
static CONFIGURED_THREADS: OnceLock<usize> = OnceLock::new();
/// 0 means "no override"; any other value is the requested tile count.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn configured_threads() -> usize {
    *CONFIGURED_THREADS.get_or_init(|| {
        std::env::var(KERNEL_THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            })
    })
}

/// The kernel thread count dispatchers use by default: the runtime
/// override if one is installed, else [`KERNEL_THREADS_ENV`], else
/// `available_parallelism`.
///
/// Note this controls the *tile count*, not the pool size: tiling is a
/// pure function of (shape, thread count), so two runs with the same
/// value here produce bit-identical results regardless of how many pool
/// workers actually execute the tiles.
pub fn kernel_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => configured_threads(),
        n => n,
    }
}

/// Installs (`Some(n)`) or clears (`None`) a process-wide runtime override
/// of [`kernel_threads`]. `Some(0)` is clamped to 1.
///
/// Used by the `kernel_scaling` experiment and the bit-identity tests to
/// compare the scalar (`Some(1)`) and parallel paths within one process.
pub fn set_kernel_thread_override(threads: Option<usize>) {
    let value = threads.map_or(0, |t| t.max(1));
    THREAD_OVERRIDE.store(value, Ordering::Relaxed);
}

/// Threads spawned by the process-wide kernel pool so far (0 before the
/// first parallel dispatch). The pool spawns exactly once, so this value
/// is flat across dispatches — the invariant the `kernel_scaling`
/// experiment enforces.
pub fn pool_spawn_count() -> usize {
    KERNEL_POOL.get().map_or(0, KernelPool::spawn_count)
}

fn kernel_pool() -> &'static KernelPool {
    KERNEL_POOL.get_or_init(|| KernelPool::new(configured_threads()))
}

/// Returns `true` when a kernel doing `work` multiply-adds (or element
/// visits) should take the tiled parallel path under the current
/// [`kernel_threads`] setting.
pub fn should_parallelize(work: usize) -> bool {
    kernel_threads() > 1 && work >= PARALLEL_THRESHOLD
}

/// Cuts `n` items into at most `tiles` contiguous `(start, end)` ranges in
/// ascending order, the first `n % tiles` ranges one element longer.
///
/// This is the single tiling rule every dispatcher uses; it depends only
/// on `(n, tiles)`, never on pool size, which is what makes tiled results
/// reproducible across machines.
pub fn tile_ranges(n: usize, tiles: usize) -> Vec<(usize, usize)> {
    let tiles = tiles.min(n).max(1);
    let base = n / tiles;
    let extra = n % tiles;
    let mut ranges = Vec::with_capacity(tiles);
    let mut start = 0;
    for t in 0..tiles {
        let len = base + usize::from(t < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

/// Runs a batch of jobs on the persistent kernel pool and returns their
/// results **in job order** (job `i` runs on worker `i % workers`).
///
/// With one job, or a single-worker pool, the jobs run inline on the
/// caller's thread — same code, same order, no channel hops. Panics in a
/// job are surfaced after every other job has been drained.
///
/// # Panics
///
/// Panics if any job panicked on its worker.
pub fn run_jobs<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    if jobs.len() <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let pool = kernel_pool();
    let workers = pool.workers();
    if workers <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let mut receivers = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.into_iter().enumerate() {
        let (tx, rx) = mpsc::channel();
        receivers.push(rx);
        pool.run_on(
            i % workers,
            Box::new(move || {
                let _ = tx.send(job());
            }),
        );
    }
    let mut results = Vec::with_capacity(receivers.len());
    let mut lost = 0usize;
    for rx in receivers {
        match rx.recv() {
            Ok(value) => results.push(value),
            Err(_) => lost += 1,
        }
    }
    assert!(
        lost == 0,
        "{lost} kernel job(s) panicked on the worker pool"
    );
    results
}

fn stitch_cols(parts: &[Matrix]) -> Matrix {
    let refs: Vec<&Matrix> = parts.iter().collect();
    Matrix::concat_cols(&refs).expect("tiles share the row count by construction")
}

/// Threshold-gated parallel version of
/// [`gemm::fp_matmul_quant_transposed`]: `a · bqᵀ` with tiles over the
/// rows of `bq` (columns of the output), stitched in tile order.
///
/// Bit-identical to the scalar kernel (and therefore to
/// [`gemm::fp_matmul_quant_transposed_reference`]) at every thread count.
///
/// # Errors
///
/// Returns [`QuantError::Incompatible`] if the inner dimensions differ.
pub fn fp_matmul_quant_transposed(a: &Matrix, bq: &QuantizedMatrix) -> Result<Matrix, QuantError> {
    fp_matmul_quant_transposed_with_threads(a, bq, kernel_threads())
}

/// [`fp_matmul_quant_transposed`] with an explicit thread (tile) count.
///
/// # Errors
///
/// Returns [`QuantError::Incompatible`] if the inner dimensions differ.
pub fn fp_matmul_quant_transposed_with_threads(
    a: &Matrix,
    bq: &QuantizedMatrix,
    threads: usize,
) -> Result<Matrix, QuantError> {
    gemm::check_transposed_shapes(a, bq)?;
    let work = a.rows() * bq.rows() * a.cols();
    if threads <= 1 || work < PARALLEL_THRESHOLD || bq.rows() < 2 {
        return gemm::fp_matmul_quant_transposed(a, bq);
    }
    let tiles = tile_ranges(bq.rows(), threads);
    let a_shared = Arc::new(a.clone());
    let bq_shared = Arc::new(bq.clone());
    let jobs: Vec<_> = tiles
        .iter()
        .map(|&(j0, j1)| {
            let a = Arc::clone(&a_shared);
            let bq = Arc::clone(&bq_shared);
            move || gemm::transposed_tile(&a, &bq, j0, j1)
        })
        .collect();
    Ok(stitch_cols(&run_jobs(jobs)))
}

/// Threshold-gated parallel version of [`gemm::fp_matmul_quant`]:
/// `a · bq` with tiles over the columns of `bq` (columns of the output),
/// stitched in tile order.
///
/// Bit-identical to the scalar kernel (and therefore to
/// [`gemm::fp_matmul_quant_reference`]) at every thread count.
///
/// # Errors
///
/// Returns [`QuantError::Incompatible`] if the inner dimensions differ.
pub fn fp_matmul_quant(a: &Matrix, bq: &QuantizedMatrix) -> Result<Matrix, QuantError> {
    fp_matmul_quant_with_threads(a, bq, kernel_threads())
}

/// [`fp_matmul_quant`] with an explicit thread (tile) count.
///
/// # Errors
///
/// Returns [`QuantError::Incompatible`] if the inner dimensions differ.
pub fn fp_matmul_quant_with_threads(
    a: &Matrix,
    bq: &QuantizedMatrix,
    threads: usize,
) -> Result<Matrix, QuantError> {
    gemm::check_shapes(a, bq)?;
    let work = a.rows() * a.cols() * bq.cols();
    if threads <= 1 || work < PARALLEL_THRESHOLD || bq.cols() < 2 {
        return gemm::fp_matmul_quant(a, bq);
    }
    let tiles = tile_ranges(bq.cols(), threads);
    let a_shared = Arc::new(a.clone());
    let bq_shared = Arc::new(bq.clone());
    let jobs: Vec<_> = tiles
        .iter()
        .map(|&(c0, c1)| {
            let a = Arc::clone(&a_shared);
            let bq = Arc::clone(&bq_shared);
            move || gemm::value_tile(&a, &bq, c0, c1)
        })
        .collect();
    Ok(stitch_cols(&run_jobs(jobs)))
}

/// Threshold-gated parallel version of [`QuantizedMatrix::quantize`].
///
/// Per-token groups never cross a row, so row tiles own disjoint slices of
/// the (scale, zero, code) arrays and concatenating them in tile order
/// reproduces the scalar layout exactly. Per-channel grouping spans rows
/// and stays on the scalar path (the documented fallback).
///
/// # Errors
///
/// Propagates [`QuantError`] from [`QuantizedMatrix::quantize`].
pub fn quantize(matrix: &Matrix, config: &QuantConfig) -> Result<QuantizedMatrix, QuantError> {
    quantize_with_threads(matrix, config, kernel_threads())
}

/// [`quantize`] with an explicit thread (tile) count.
///
/// # Errors
///
/// Propagates [`QuantError`] from [`QuantizedMatrix::quantize`].
pub fn quantize_with_threads(
    matrix: &Matrix,
    config: &QuantConfig,
    threads: usize,
) -> Result<QuantizedMatrix, QuantError> {
    let (rows, cols) = matrix.shape();
    if threads <= 1
        || rows * cols < PARALLEL_THRESHOLD
        || rows < 2
        || config.axis() != QuantAxis::PerToken
    {
        return QuantizedMatrix::quantize(matrix, config);
    }
    let tiles = tile_ranges(rows, threads);
    let shared = Arc::new(matrix.clone());
    let cfg = *config;
    let jobs: Vec<_> = tiles
        .iter()
        .map(|&(r0, r1)| {
            let m = Arc::clone(&shared);
            move || quantized::quantize_rows_per_token(&m, &cfg, r0, r1)
        })
        .collect();
    let parts = run_jobs(jobs);
    let mut scales = Vec::new();
    let mut zeros = Vec::new();
    let mut codes = Vec::with_capacity(rows * cols);
    for part in parts {
        scales.extend(part.scales);
        zeros.extend(part.zeros);
        codes.extend(part.codes);
    }
    Ok(QuantizedMatrix::assemble(
        rows, cols, *config, &codes, scales, zeros,
    ))
}

/// Threshold-gated parallel version of [`QuantizedMatrix::dequantize`]:
/// row tiles reconstructed independently and stitched with
/// [`Matrix::concat_rows`] in tile order.
pub fn dequantize(bq: &QuantizedMatrix) -> Matrix {
    dequantize_with_threads(bq, kernel_threads())
}

/// [`dequantize`] with an explicit thread (tile) count.
pub fn dequantize_with_threads(bq: &QuantizedMatrix, threads: usize) -> Matrix {
    if threads <= 1 || bq.rows() * bq.cols() < PARALLEL_THRESHOLD || bq.rows() < 2 {
        return bq.dequantize();
    }
    let tiles = tile_ranges(bq.rows(), threads);
    let shared = Arc::new(bq.clone());
    let jobs: Vec<_> = tiles
        .iter()
        .map(|&(r0, r1)| {
            let bq = Arc::clone(&shared);
            move || bq.dequantize_rows(r0, r1)
        })
        .collect();
    let parts = run_jobs(jobs);
    let refs: Vec<&Matrix> = parts.iter().collect();
    Matrix::concat_rows(&refs).expect("tiles share the column count by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bitwidth;
    use cocktail_tensor::rng;
    use proptest::prelude::*;

    fn cfg(bw: Bitwidth, axis: QuantAxis, group: usize) -> QuantConfig {
        QuantConfig::new(bw, axis, group).expect("valid test config")
    }

    #[test]
    fn tile_ranges_cover_contiguously() {
        for n in [0usize, 1, 2, 7, 16, 100] {
            for tiles in [1usize, 2, 3, 8, 200] {
                let ranges = tile_ranges(n, tiles);
                assert!(!ranges.is_empty());
                assert_eq!(ranges[0].0, 0);
                assert_eq!(ranges.last().unwrap().1, n);
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].1, pair[1].0, "n={n} tiles={tiles}");
                }
            }
        }
    }

    #[test]
    fn run_jobs_preserves_job_order() {
        let jobs: Vec<_> = (0..17usize).map(|i| move || i * 3).collect();
        let out = run_jobs(jobs);
        assert_eq!(out, (0..17).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn pool_spawns_at_most_once() {
        // Force a parallel dispatch, then another; the process-wide pool
        // must not grow between them.
        let a = rng::gaussian_matrix(8, 64, 1.0, 1);
        let b = rng::gaussian_matrix(256, 64, 1.0, 2);
        let bq =
            QuantizedMatrix::quantize(&b, &cfg(Bitwidth::Int4, QuantAxis::PerToken, 32)).unwrap();
        let _ = fp_matmul_quant_transposed_with_threads(&a, &bq, 4).unwrap();
        let first = pool_spawn_count();
        let _ = fp_matmul_quant_transposed_with_threads(&a, &bq, 4).unwrap();
        assert_eq!(pool_spawn_count(), first);
    }

    #[test]
    fn large_transposed_product_is_bit_identical_across_thread_counts() {
        let a = rng::gaussian_matrix(8, 64, 1.0, 3);
        let b = rng::gaussian_matrix(512, 64, 1.0, 4);
        let bq =
            QuantizedMatrix::quantize(&b, &cfg(Bitwidth::Int4, QuantAxis::PerToken, 32)).unwrap();
        let reference = gemm::fp_matmul_quant_transposed_reference(&a, &bq).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let tiled = fp_matmul_quant_transposed_with_threads(&a, &bq, threads).unwrap();
            assert_eq!(tiled.as_slice(), reference.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn large_value_product_is_bit_identical_across_thread_counts() {
        let a = rng::uniform_matrix(8, 512, 1.0, 5);
        let b = rng::gaussian_matrix(512, 96, 1.0, 6);
        let bq =
            QuantizedMatrix::quantize(&b, &cfg(Bitwidth::Int8, QuantAxis::PerToken, 32)).unwrap();
        let reference = gemm::fp_matmul_quant_reference(&a, &bq).unwrap();
        for threads in [1usize, 2, 5, 8] {
            let tiled = fp_matmul_quant_with_threads(&a, &bq, threads).unwrap();
            assert_eq!(tiled.as_slice(), reference.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn parallel_quantize_equals_scalar_quantize() {
        let m = rng::gaussian_matrix(512, 160, 1.0, 7);
        let config = cfg(Bitwidth::Int4, QuantAxis::PerToken, 32);
        let scalar = QuantizedMatrix::quantize(&m, &config).unwrap();
        for threads in [1usize, 2, 3, 7] {
            let parallel = quantize_with_threads(&m, &config, threads).unwrap();
            assert_eq!(parallel, scalar, "threads={threads}");
        }
    }

    #[test]
    fn per_channel_quantize_falls_back_to_scalar() {
        let m = rng::gaussian_matrix(512, 160, 1.0, 8);
        let config = cfg(Bitwidth::Int4, QuantAxis::PerChannel, 32);
        let scalar = QuantizedMatrix::quantize(&m, &config).unwrap();
        let parallel = quantize_with_threads(&m, &config, 4).unwrap();
        assert_eq!(parallel, scalar);
    }

    #[test]
    fn parallel_dequantize_equals_scalar_dequantize() {
        let m = rng::gaussian_matrix(512, 160, 1.0, 9);
        for axis in [QuantAxis::PerToken, QuantAxis::PerChannel] {
            let q = QuantizedMatrix::quantize(&m, &cfg(Bitwidth::Int2, axis, 32)).unwrap();
            let scalar = q.dequantize();
            for threads in [1usize, 2, 4, 9] {
                let parallel = dequantize_with_threads(&q, threads);
                assert_eq!(parallel.as_slice(), scalar.as_slice(), "threads={threads}");
            }
        }
    }

    #[test]
    fn small_operands_stay_on_the_scalar_path_and_agree() {
        // Below the threshold the dispatcher must not touch the pool, and
        // must still return the exact scalar result.
        let a = rng::gaussian_matrix(1, 16, 1.0, 10);
        let b = rng::gaussian_matrix(4, 16, 1.0, 11);
        let bq =
            QuantizedMatrix::quantize(&b, &cfg(Bitwidth::Int4, QuantAxis::PerToken, 8)).unwrap();
        let scalar = gemm::fp_matmul_quant_transposed(&a, &bq).unwrap();
        let dispatched = fp_matmul_quant_transposed_with_threads(&a, &bq, 8).unwrap();
        assert_eq!(dispatched.as_slice(), scalar.as_slice());
        assert!(!should_parallelize(a.rows() * bq.rows() * a.cols()) || kernel_threads() > 1);
    }

    #[test]
    fn override_round_trips() {
        set_kernel_thread_override(Some(3));
        assert_eq!(kernel_threads(), 3);
        set_kernel_thread_override(Some(0));
        assert_eq!(kernel_threads(), 1);
        set_kernel_thread_override(None);
        // Back to the configured default, whatever it is on this host.
        assert!(kernel_threads() >= 1);
    }

    #[test]
    fn shape_mismatch_is_still_an_error() {
        let a = Matrix::zeros(2, 8);
        let b = rng::gaussian_matrix(4, 16, 1.0, 12);
        let bq =
            QuantizedMatrix::quantize(&b, &cfg(Bitwidth::Int4, QuantAxis::PerToken, 8)).unwrap();
        assert!(fp_matmul_quant_transposed_with_threads(&a, &bq, 4).is_err());
        let a2 = Matrix::zeros(2, 3);
        assert!(fp_matmul_quant_with_threads(&a2, &bq, 4).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        // The central bit-identity property of the PR: for arbitrary
        // shapes, bitwidths, group sizes and thread counts (including 1),
        // the tiled kernels reproduce the scalar reference bit for bit.
        // Shapes this small sit below PARALLEL_THRESHOLD, so in addition
        // to the dispatcher (whose gate may legitimately pick the scalar
        // path) we stitch the actual tile helpers by hand — the exact
        // machinery the above-threshold path runs.
        #[test]
        fn tiled_kernels_are_bit_identical_to_reference(
            m in 1usize..5,
            n in 1usize..40,
            d in 1usize..40,
            group in 1usize..16,
            bw_pick in 0usize..3,
            threads in 1usize..9,
            seed in 0u64..500,
        ) {
            let bw = [Bitwidth::Int2, Bitwidth::Int4, Bitwidth::Int8][bw_pick];
            let a = rng::gaussian_matrix(m, d, 1.0, seed);
            let b = rng::gaussian_matrix(n, d, 1.0, seed + 1);
            let bq = QuantizedMatrix::quantize(&b, &cfg(bw, QuantAxis::PerToken, group)).unwrap();
            let reference = gemm::fp_matmul_quant_transposed_reference(&a, &bq).unwrap();
            let dispatched = fp_matmul_quant_transposed_with_threads(&a, &bq, threads).unwrap();
            prop_assert_eq!(dispatched.as_slice(), reference.as_slice());
            let parts: Vec<Matrix> = tile_ranges(bq.rows(), threads)
                .iter()
                .map(|&(j0, j1)| gemm::transposed_tile(&a, &bq, j0, j1))
                .collect();
            prop_assert_eq!(stitch_cols(&parts).as_slice(), reference.as_slice());

            let p = rng::uniform_matrix(m, n, 1.0, seed + 2);
            let reference2 = gemm::fp_matmul_quant_reference(&p, &bq).unwrap();
            let dispatched2 = fp_matmul_quant_with_threads(&p, &bq, threads).unwrap();
            prop_assert_eq!(dispatched2.as_slice(), reference2.as_slice());
            let parts2: Vec<Matrix> = tile_ranges(bq.cols(), threads)
                .iter()
                .map(|&(c0, c1)| gemm::value_tile(&p, &bq, c0, c1))
                .collect();
            prop_assert_eq!(stitch_cols(&parts2).as_slice(), reference2.as_slice());
        }

        #[test]
        fn tiled_quantize_and_dequantize_are_bit_identical(
            rows in 1usize..48,
            cols in 1usize..48,
            group in 1usize..16,
            bw_pick in 0usize..3,
            axis_pick in 0usize..2,
            threads in 1usize..9,
            seed in 0u64..500,
        ) {
            let bw = [Bitwidth::Int2, Bitwidth::Int4, Bitwidth::Int8][bw_pick];
            let axis = [QuantAxis::PerToken, QuantAxis::PerChannel][axis_pick];
            let m = rng::gaussian_matrix(rows, cols, 1.0, seed);
            let config = cfg(bw, axis, group);
            let scalar = QuantizedMatrix::quantize(&m, &config).unwrap();
            let parallel = quantize_with_threads(&m, &config, threads).unwrap();
            prop_assert_eq!(&parallel, &scalar);
            if axis == QuantAxis::PerToken {
                // Hand-stitched row tiles through the real per-token tile
                // helper, exactly as the above-threshold path would run.
                let mut scales = Vec::new();
                let mut zeros = Vec::new();
                let mut codes = Vec::new();
                for &(r0, r1) in &tile_ranges(rows, threads) {
                    let part = quantized::quantize_rows_per_token(&m, &config, r0, r1);
                    scales.extend(part.scales);
                    zeros.extend(part.zeros);
                    codes.extend(part.codes);
                }
                let stitched = QuantizedMatrix::assemble(rows, cols, config, &codes, scales, zeros);
                prop_assert_eq!(&stitched, &scalar);
            }
            let d_scalar = scalar.dequantize();
            let d_parallel = dequantize_with_threads(&parallel, threads);
            prop_assert_eq!(d_parallel.as_slice(), d_scalar.as_slice());
            let row_parts: Vec<Matrix> = tile_ranges(rows, threads)
                .iter()
                .map(|&(r0, r1)| scalar.dequantize_rows(r0, r1))
                .collect();
            let refs: Vec<&Matrix> = row_parts.iter().collect();
            let d_stitched = Matrix::concat_rows(&refs).unwrap();
            prop_assert_eq!(d_stitched.as_slice(), d_scalar.as_slice());
        }
    }
}
