//! The KVQuant baseline: token-level mixed-precision quantization.

use crate::policy::{CachePolicy, PolicyContext, PolicyError, PolicyReport, SearchGranularity};
use cocktail_kvcache::ChunkedLayerCache;
use cocktail_quant::{Bitwidth, QuantConfig};

/// KVQuant-style token-level mixed precision: a per-token importance scan
/// identifies the small fraction of tokens whose keys carry outlier
/// magnitudes, keeps those tokens' KV at FP16 (a dense-and-sparse
/// decomposition), and quantizes everything else to INT4.
///
/// The importance scan touches every cached token in every layer, which is
/// the "token-level quantization search" the paper identifies as slow; the
/// [`PolicyReport::search`] field records it as
/// [`SearchGranularity::TokenLevel`] so the hardware model can charge for
/// it.
///
/// # Example
///
/// ```
/// use cocktail_baselines::{CachePolicy, KvQuantPolicy, PolicyContext};
/// use cocktail_kvcache::{ChunkSegmentation, ChunkedLayerCache};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let k = cocktail_tensor::rng::gaussian_matrix(128, 16, 1.0, 1);
/// let v = cocktail_tensor::rng::gaussian_matrix(128, 16, 1.0, 2);
/// let seg = ChunkSegmentation::new(128, 32)?;
/// let mut cache = ChunkedLayerCache::from_prefill(&k, &v, &seg)?;
/// let report = KvQuantPolicy::default().apply_layer(&mut cache, &PolicyContext::empty())?;
/// assert!(report.outlier_tokens >= 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvQuantPolicy {
    bitwidth: Bitwidth,
    group_size: usize,
    outlier_fraction: f32,
}

impl KvQuantPolicy {
    /// Creates the policy.
    ///
    /// `outlier_fraction` is the fraction of context tokens (per layer,
    /// per KV head) whose KV stays at FP16; the paper uses 1 %.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::InvalidInput`] for an FP16 bitwidth, a zero
    /// group size, or an outlier fraction outside `[0, 1]`.
    pub fn new(
        bitwidth: Bitwidth,
        group_size: usize,
        outlier_fraction: f32,
    ) -> Result<Self, PolicyError> {
        if bitwidth.is_float() {
            return Err(PolicyError::InvalidInput(
                "KVQuant requires an integer bitwidth".into(),
            ));
        }
        if group_size == 0 {
            return Err(PolicyError::InvalidInput(
                "group size must be nonzero".into(),
            ));
        }
        if !(0.0..=1.0).contains(&outlier_fraction) {
            return Err(PolicyError::InvalidInput(format!(
                "outlier fraction {outlier_fraction} must be in [0, 1]"
            )));
        }
        Ok(Self {
            bitwidth,
            group_size,
            outlier_fraction,
        })
    }

    /// The quantization bitwidth of non-outlier tokens.
    pub fn bitwidth(&self) -> Bitwidth {
        self.bitwidth
    }

    /// The quantization group size.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Fraction of tokens kept at FP16.
    pub fn outlier_fraction(&self) -> f32 {
        self.outlier_fraction
    }

    /// The token-level importance scan: scores every context token by the
    /// infinity norm of its key vector (the outlier signal KVQuant keys on)
    /// and returns the indices of the top `outlier_fraction` tokens,
    /// grouped per chunk.
    fn find_outliers(&self, cache: &ChunkedLayerCache) -> Vec<Vec<usize>> {
        let chunk_count = cache.chunk_count();
        let mut scored: Vec<(f32, usize, usize)> = Vec::new(); // (score, chunk, row)
        for (chunk_idx, chunk) in cache.chunks().iter().enumerate() {
            let k = chunk.key_matrix();
            for row in 0..k.rows() {
                let score = k.row(row).iter().fold(0.0f32, |m, v| m.max(v.abs()));
                scored.push((score, chunk_idx, row));
            }
        }
        let total_tokens = scored.len();
        let keep =
            ((total_tokens as f32 * self.outlier_fraction).ceil() as usize).min(total_tokens);
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut per_chunk = vec![Vec::new(); chunk_count];
        for &(_, chunk_idx, row) in scored.iter().take(keep) {
            per_chunk[chunk_idx].push(row);
        }
        per_chunk
    }
}

impl Default for KvQuantPolicy {
    /// The paper's configuration: INT4, default group size, 1 % outliers.
    fn default() -> Self {
        Self {
            bitwidth: Bitwidth::Int4,
            group_size: QuantConfig::DEFAULT_GROUP_SIZE,
            outlier_fraction: 0.01,
        }
    }
}

impl CachePolicy for KvQuantPolicy {
    fn name(&self) -> &'static str {
        "KVQuant"
    }

    fn apply_layer(
        &self,
        cache: &mut ChunkedLayerCache,
        _ctx: &PolicyContext,
    ) -> Result<PolicyReport, PolicyError> {
        let outliers = self.find_outliers(cache);
        let scanned_tokens: usize = cache.chunks().iter().map(|c| c.token_len()).sum();
        let mut outlier_total = 0usize;
        for (chunk_idx, rows) in outliers.iter().enumerate() {
            cache.quantize_chunk_with_outliers(chunk_idx, self.bitwidth, self.group_size, rows)?;
            outlier_total += cache.chunks()[chunk_idx].outlier_count();
        }
        let mut report = PolicyReport::new(
            self.name(),
            SearchGranularity::TokenLevel {
                tokens: scanned_tokens,
            },
        );
        report.record_chunks(self.bitwidth, cache.chunk_count());
        report.outlier_tokens = outlier_total;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_kvcache::ChunkSegmentation;
    use cocktail_tensor::rng;

    fn cache(tokens: usize, chunk: usize, seed: u64) -> ChunkedLayerCache {
        let k = rng::gaussian_matrix(tokens, 16, 1.0, seed);
        let v = rng::gaussian_matrix(tokens, 16, 1.0, seed + 1);
        let seg = ChunkSegmentation::new(tokens, chunk).unwrap();
        ChunkedLayerCache::from_prefill(&k, &v, &seg).unwrap()
    }

    #[test]
    fn keeps_roughly_one_percent_of_tokens_fp16() {
        let mut c = cache(256, 32, 1);
        let report = KvQuantPolicy::default()
            .apply_layer(&mut c, &PolicyContext::empty())
            .unwrap();
        // ceil(256 * 0.01) = 3 outlier tokens.
        assert_eq!(report.outlier_tokens, 3);
        assert_eq!(report.search, SearchGranularity::TokenLevel { tokens: 256 });
    }

    #[test]
    fn outliers_are_the_largest_magnitude_tokens() {
        let mut k = rng::gaussian_matrix(64, 8, 0.1, 2);
        // Plant a huge outlier at token 17.
        for c in 0..8 {
            k.set(17, c, 100.0);
        }
        let v = rng::gaussian_matrix(64, 8, 0.1, 3);
        let seg = ChunkSegmentation::new(64, 32).unwrap();
        let mut cache = ChunkedLayerCache::from_prefill(&k, &v, &seg).unwrap();
        let policy = KvQuantPolicy::new(Bitwidth::Int4, 32, 0.02).unwrap();
        policy
            .apply_layer(&mut cache, &PolicyContext::empty())
            .unwrap();
        // Token 17 lives in chunk 0, row 17; it must be in the outlier patch.
        let chunk0 = &cache.chunks()[0];
        assert!(chunk0.outliers().unwrap().rows.contains(&17));
        // And its key must be reconstructed exactly.
        assert_eq!(chunk0.key_matrix().get(17, 0), 100.0);
    }

    #[test]
    fn accuracy_sits_between_atom_and_fp16() {
        // Mixed precision with outliers must reconstruct keys at least as
        // well as plain uniform INT4.
        let c_ref = cache(128, 32, 5);
        let reference_k = c_ref.full_key_matrix();

        let mut kvq = c_ref.clone();
        KvQuantPolicy::new(Bitwidth::Int4, 32, 0.05)
            .unwrap()
            .apply_layer(&mut kvq, &PolicyContext::empty())
            .unwrap();
        let mut atom = c_ref.clone();
        crate::AtomPolicy::default()
            .apply_layer(&mut atom, &PolicyContext::empty())
            .unwrap();

        let err_kvq = kvq.full_key_matrix().mse(&reference_k).unwrap();
        let err_atom = atom.full_key_matrix().mse(&reference_k).unwrap();
        assert!(err_kvq <= err_atom, "kvquant {err_kvq} vs atom {err_atom}");
        assert!(err_kvq > 0.0);
    }

    #[test]
    fn memory_is_slightly_above_atom() {
        let c_ref = cache(128, 32, 9);
        let mut kvq = c_ref.clone();
        KvQuantPolicy::default()
            .apply_layer(&mut kvq, &PolicyContext::empty())
            .unwrap();
        let mut atom = c_ref.clone();
        crate::AtomPolicy::default()
            .apply_layer(&mut atom, &PolicyContext::empty())
            .unwrap();
        assert!(kvq.storage_bytes() >= atom.storage_bytes());
        assert!(kvq.storage_bytes() < c_ref.storage_bytes());
    }

    #[test]
    fn rejects_invalid_configuration() {
        assert!(KvQuantPolicy::new(Bitwidth::Fp16, 32, 0.01).is_err());
        assert!(KvQuantPolicy::new(Bitwidth::Int4, 0, 0.01).is_err());
        assert!(KvQuantPolicy::new(Bitwidth::Int4, 32, 1.5).is_err());
        assert!(KvQuantPolicy::new(Bitwidth::Int4, 32, -0.1).is_err());
    }

    #[test]
    fn zero_outlier_fraction_is_plain_uniform() {
        let mut c = cache(64, 32, 11);
        let report = KvQuantPolicy::new(Bitwidth::Int4, 32, 0.0)
            .unwrap()
            .apply_layer(&mut c, &PolicyContext::empty())
            .unwrap();
        // ceil(64 * 0) = 0.
        assert_eq!(report.outlier_tokens, 0);
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(KvQuantPolicy::default().name(), "KVQuant");
        assert_eq!(KvQuantPolicy::default().outlier_fraction(), 0.01);
    }
}
