//! The Atom baseline: uniform per-token group quantization.

use crate::policy::{CachePolicy, PolicyContext, PolicyError, PolicyReport, SearchGranularity};
use cocktail_kvcache::ChunkedLayerCache;
use cocktail_quant::{Bitwidth, QuantAxis, QuantConfig};

/// Uniform group quantization of the whole context KV cache, the behaviour
/// of Atom's KV-cache path (the paper disables Atom's weight/activation
/// quantization for a fair comparison and quantizes the KV cache to INT4).
///
/// # Example
///
/// ```
/// use cocktail_baselines::{AtomPolicy, CachePolicy, PolicyContext};
/// use cocktail_kvcache::{ChunkSegmentation, ChunkedLayerCache};
/// use cocktail_quant::Bitwidth;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let k = cocktail_tensor::rng::gaussian_matrix(64, 16, 1.0, 1);
/// let v = cocktail_tensor::rng::gaussian_matrix(64, 16, 1.0, 2);
/// let seg = ChunkSegmentation::new(64, 32)?;
/// let mut cache = ChunkedLayerCache::from_prefill(&k, &v, &seg)?;
/// AtomPolicy::default().apply_layer(&mut cache, &PolicyContext::empty())?;
/// assert!(cache.chunks().iter().all(|c| c.bitwidth() == Bitwidth::Int4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomPolicy {
    bitwidth: Bitwidth,
    group_size: usize,
}

impl AtomPolicy {
    /// Creates the policy with an explicit bitwidth and group size.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::InvalidInput`] if the bitwidth is FP16 or the
    /// group size is zero.
    pub fn new(bitwidth: Bitwidth, group_size: usize) -> Result<Self, PolicyError> {
        if bitwidth.is_float() {
            return Err(PolicyError::InvalidInput(
                "uniform quantization requires an integer bitwidth".into(),
            ));
        }
        if group_size == 0 {
            return Err(PolicyError::InvalidInput(
                "group size must be nonzero".into(),
            ));
        }
        Ok(Self {
            bitwidth,
            group_size,
        })
    }

    /// The quantization bitwidth.
    pub fn bitwidth(&self) -> Bitwidth {
        self.bitwidth
    }

    /// The quantization group size.
    pub fn group_size(&self) -> usize {
        self.group_size
    }
}

impl Default for AtomPolicy {
    /// The paper's configuration: INT4 with the default group size.
    fn default() -> Self {
        Self {
            bitwidth: Bitwidth::Int4,
            group_size: QuantConfig::DEFAULT_GROUP_SIZE,
        }
    }
}

impl CachePolicy for AtomPolicy {
    fn name(&self) -> &'static str {
        "Atom"
    }

    fn apply_layer(
        &self,
        cache: &mut ChunkedLayerCache,
        _ctx: &PolicyContext,
    ) -> Result<PolicyReport, PolicyError> {
        cache.quantize_all(
            self.bitwidth,
            QuantAxis::PerToken,
            QuantAxis::PerToken,
            self.group_size,
        )?;
        let mut report = PolicyReport::new(self.name(), SearchGranularity::None);
        report.record_chunks(self.bitwidth, cache.chunk_count());
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_kvcache::ChunkSegmentation;
    use cocktail_tensor::rng;

    fn cache(tokens: usize, chunk: usize) -> ChunkedLayerCache {
        let k = rng::gaussian_matrix(tokens, 16, 1.0, 3);
        let v = rng::gaussian_matrix(tokens, 16, 1.0, 4);
        let seg = ChunkSegmentation::new(tokens, chunk).unwrap();
        ChunkedLayerCache::from_prefill(&k, &v, &seg).unwrap()
    }

    #[test]
    fn quantizes_every_chunk_uniformly() {
        let mut c = cache(96, 32);
        let report = AtomPolicy::default()
            .apply_layer(&mut c, &PolicyContext::empty())
            .unwrap();
        assert!(c.chunks().iter().all(|ch| ch.bitwidth() == Bitwidth::Int4));
        assert_eq!(report.chunks_at(Bitwidth::Int4), 3);
        assert_eq!(report.outlier_tokens, 0);
    }

    #[test]
    fn compression_is_close_to_4x_on_chunked_portion() {
        // Use a realistic head dimension (64) so the per-group parameter
        // overhead is small relative to the payload.
        let k = rng::gaussian_matrix(128, 64, 1.0, 30);
        let v = rng::gaussian_matrix(128, 64, 1.0, 31);
        let seg = ChunkSegmentation::new(128, 32).unwrap(); // no remainder
        let mut c = ChunkedLayerCache::from_prefill(&k, &v, &seg).unwrap();
        AtomPolicy::default()
            .apply_layer(&mut c, &PolicyContext::empty())
            .unwrap();
        let ratio = c.fp16_reference_bytes() as f64 / c.storage_bytes() as f64;
        assert!(ratio > 3.0 && ratio < 4.5, "ratio = {ratio}");
    }

    #[test]
    fn rejects_invalid_configuration() {
        assert!(AtomPolicy::new(Bitwidth::Fp16, 32).is_err());
        assert!(AtomPolicy::new(Bitwidth::Int4, 0).is_err());
        let custom = AtomPolicy::new(Bitwidth::Int8, 64).unwrap();
        assert_eq!(custom.bitwidth(), Bitwidth::Int8);
        assert_eq!(custom.group_size(), 64);
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(AtomPolicy::default().name(), "Atom");
    }
}
