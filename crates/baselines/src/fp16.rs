//! The uncompressed FP16 baseline.

use crate::policy::{CachePolicy, PolicyContext, PolicyError, PolicyReport, SearchGranularity};
use cocktail_kvcache::ChunkedLayerCache;
use cocktail_quant::Bitwidth;

/// Leaves the KV cache in FP16 — the "FP16" row of every table in the
/// paper, and the accuracy/memory/latency reference all methods are
/// compared against.
///
/// # Example
///
/// ```
/// use cocktail_baselines::{CachePolicy, Fp16Policy, PolicyContext};
/// use cocktail_kvcache::{ChunkSegmentation, ChunkedLayerCache};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let k = cocktail_tensor::rng::gaussian_matrix(32, 8, 1.0, 1);
/// let v = cocktail_tensor::rng::gaussian_matrix(32, 8, 1.0, 2);
/// let seg = ChunkSegmentation::new(32, 16)?;
/// let mut cache = ChunkedLayerCache::from_prefill(&k, &v, &seg)?;
/// let before = cache.storage_bytes();
/// Fp16Policy::new().apply_layer(&mut cache, &PolicyContext::empty())?;
/// assert_eq!(cache.storage_bytes(), before);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fp16Policy;

impl Fp16Policy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl CachePolicy for Fp16Policy {
    fn name(&self) -> &'static str {
        "FP16"
    }

    fn apply_layer(
        &self,
        cache: &mut ChunkedLayerCache,
        _ctx: &PolicyContext,
    ) -> Result<PolicyReport, PolicyError> {
        let mut report = PolicyReport::new(self.name(), SearchGranularity::None);
        report.record_chunks(Bitwidth::Fp16, cache.chunk_count());
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_kvcache::ChunkSegmentation;
    use cocktail_tensor::rng;

    #[test]
    fn fp16_policy_is_a_noop() {
        let k = rng::gaussian_matrix(48, 8, 1.0, 1);
        let v = rng::gaussian_matrix(48, 8, 1.0, 2);
        let seg = ChunkSegmentation::new(48, 16).unwrap();
        let mut cache = ChunkedLayerCache::from_prefill(&k, &v, &seg).unwrap();
        let reference = cache.clone();
        let report = Fp16Policy::new()
            .apply_layer(&mut cache, &PolicyContext::empty())
            .unwrap();
        assert_eq!(cache, reference);
        assert_eq!(report.chunks_at(Bitwidth::Fp16), 3);
        assert_eq!(report.search, SearchGranularity::None);
        assert_eq!(report.policy, "FP16");
    }
}
