//! The cache-policy interface shared by the baselines and Cocktail.

use cocktail_kvcache::{ChunkedKvCache, ChunkedLayerCache, KvCacheError};
use cocktail_quant::Bitwidth;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Error raised while applying a cache policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// The underlying KV cache rejected an operation.
    Cache(String),
    /// The policy was given an invalid configuration or context.
    InvalidInput(String),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::Cache(d) => write!(f, "cache operation failed: {d}"),
            PolicyError::InvalidInput(d) => write!(f, "invalid policy input: {d}"),
        }
    }
}

impl Error for PolicyError {}

impl From<KvCacheError> for PolicyError {
    fn from(err: KvCacheError) -> Self {
        PolicyError::Cache(err.to_string())
    }
}

/// How much work the policy's bitwidth search performed — the quantity
/// behind the paper's claim that chunk-level search is cheaper than
/// KVQuant's token-level search (Figure 6 discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchGranularity {
    /// No search at all (uniform quantization and FP16).
    None,
    /// One encoder pass per chunk plus one for the query.
    ChunkLevel {
        /// Number of chunks scored.
        chunks: usize,
    },
    /// A scan over every cached token in every layer.
    TokenLevel {
        /// Number of token positions examined.
        tokens: usize,
    },
}

/// What the query/context looked like when the policy ran.
///
/// Uniform policies ignore it entirely; Cocktail needs the chunk texts and
/// the query (or precomputed scores); KVQuant only needs the cache itself.
#[derive(Debug, Clone, Default)]
pub struct PolicyContext {
    /// Text of each context chunk, aligned with the cache's logical chunk
    /// order.
    pub chunk_texts: Vec<String>,
    /// The user query.
    pub query: String,
    /// Precomputed chunk relevance scores (one per chunk). When present,
    /// score-driven policies use these instead of re-running their encoder.
    pub chunk_scores: Option<Vec<f32>>,
}

impl PolicyContext {
    /// A context carrying no information (sufficient for the uniform
    /// baselines).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Creates a context from chunk texts and a query.
    pub fn new(chunk_texts: Vec<String>, query: impl Into<String>) -> Self {
        Self {
            chunk_texts,
            query: query.into(),
            chunk_scores: None,
        }
    }

    /// Attaches precomputed chunk scores.
    pub fn with_scores(mut self, scores: Vec<f32>) -> Self {
        self.chunk_scores = Some(scores);
        self
    }
}

/// Summary of what a policy did to a cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyReport {
    /// Policy name.
    pub policy: String,
    /// Number of chunks left at / converted to each bitwidth.
    pub chunk_bitwidths: BTreeMap<Bitwidth, usize>,
    /// Total number of tokens kept at FP16 through outlier patches
    /// (KVQuant-style), across all chunks and layers touched.
    pub outlier_tokens: usize,
    /// Search work performed.
    pub search: SearchGranularity,
}

impl PolicyReport {
    /// Creates an empty report for the given policy name.
    pub fn new(policy: impl Into<String>, search: SearchGranularity) -> Self {
        Self {
            policy: policy.into(),
            chunk_bitwidths: BTreeMap::new(),
            outlier_tokens: 0,
            search,
        }
    }

    /// Records `count` chunks at `bitwidth`.
    pub fn record_chunks(&mut self, bitwidth: Bitwidth, count: usize) {
        *self.chunk_bitwidths.entry(bitwidth).or_insert(0) += count;
    }

    /// Number of chunks recorded at the given bitwidth.
    pub fn chunks_at(&self, bitwidth: Bitwidth) -> usize {
        self.chunk_bitwidths.get(&bitwidth).copied().unwrap_or(0)
    }

    /// Total chunks recorded.
    pub fn total_chunks(&self) -> usize {
        self.chunk_bitwidths.values().sum()
    }

    /// Merges another report (e.g. per-layer reports into a model-level
    /// one). The search granularity of `other` is ignored; the receiver's
    /// is kept.
    pub fn merge(&mut self, other: &PolicyReport) {
        for (&bw, &count) in &other.chunk_bitwidths {
            self.record_chunks(bw, count);
        }
        self.outlier_tokens += other.outlier_tokens;
    }
}

/// A KV-cache quantization policy: given a freshly prefetched FP16 chunked
/// cache and the query/context, rewrite the cache in place (quantizing,
/// reordering, patching outliers) and report what was done.
pub trait CachePolicy {
    /// Human-readable policy name as used in the paper's tables
    /// (`"FP16"`, `"Atom"`, `"KIVI"`, `"KVQuant"`, `"Cocktail"`).
    fn name(&self) -> &'static str;

    /// Applies the policy to the cache of a single (layer, KV-head) pair.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError`] if a cache or quantization operation fails.
    fn apply_layer(
        &self,
        cache: &mut ChunkedLayerCache,
        ctx: &PolicyContext,
    ) -> Result<PolicyReport, PolicyError>;

    /// Applies the policy to every populated slot of a whole-model cache.
    ///
    /// The default implementation loops over the slots and merges the
    /// per-layer reports; the search cost is counted once (the paper's
    /// chunk-level search runs once per request, not once per layer).
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError`] if any slot fails.
    fn apply(
        &self,
        cache: &mut ChunkedKvCache,
        ctx: &PolicyContext,
    ) -> Result<PolicyReport, PolicyError> {
        let mut combined: Option<PolicyReport> = None;
        let mut failure: Option<PolicyError> = None;
        cache
            .try_for_each_mut(|_, _, layer| {
                if failure.is_some() {
                    return Ok(());
                }
                match self.apply_layer(layer, ctx) {
                    Ok(report) => {
                        match &mut combined {
                            Some(c) => c.merge(&report),
                            None => combined = Some(report),
                        }
                        Ok(())
                    }
                    Err(err) => {
                        failure = Some(err);
                        Ok(())
                    }
                }
            })
            .map_err(PolicyError::from)?;
        if let Some(err) = failure {
            return Err(err);
        }
        Ok(combined.unwrap_or_else(|| PolicyReport::new(self.name(), SearchGranularity::None)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates_chunk_counts() {
        let mut r = PolicyReport::new("test", SearchGranularity::None);
        r.record_chunks(Bitwidth::Int2, 3);
        r.record_chunks(Bitwidth::Int2, 2);
        r.record_chunks(Bitwidth::Fp16, 1);
        assert_eq!(r.chunks_at(Bitwidth::Int2), 5);
        assert_eq!(r.chunks_at(Bitwidth::Int4), 0);
        assert_eq!(r.total_chunks(), 6);
    }

    #[test]
    fn merge_sums_counts_and_outliers() {
        let mut a = PolicyReport::new("a", SearchGranularity::ChunkLevel { chunks: 4 });
        a.record_chunks(Bitwidth::Int4, 2);
        a.outlier_tokens = 3;
        let mut b = PolicyReport::new("b", SearchGranularity::None);
        b.record_chunks(Bitwidth::Int4, 1);
        b.record_chunks(Bitwidth::Fp16, 1);
        b.outlier_tokens = 2;
        a.merge(&b);
        assert_eq!(a.chunks_at(Bitwidth::Int4), 3);
        assert_eq!(a.chunks_at(Bitwidth::Fp16), 1);
        assert_eq!(a.outlier_tokens, 5);
        assert_eq!(a.search, SearchGranularity::ChunkLevel { chunks: 4 });
    }

    #[test]
    fn context_builders_work() {
        let ctx = PolicyContext::new(vec!["a".into(), "b".into()], "q").with_scores(vec![0.1, 0.9]);
        assert_eq!(ctx.chunk_texts.len(), 2);
        assert_eq!(ctx.query, "q");
        assert_eq!(ctx.chunk_scores.as_deref(), Some(&[0.1, 0.9][..]));
        assert!(PolicyContext::empty().chunk_texts.is_empty());
    }

    #[test]
    fn policy_error_display() {
        assert!(PolicyError::Cache("boom".into())
            .to_string()
            .contains("boom"));
        assert!(PolicyError::InvalidInput("alpha".into())
            .to_string()
            .contains("alpha"));
        let err: PolicyError = KvCacheError::ZeroChunkSize.into();
        assert!(matches!(err, PolicyError::Cache(_)));
    }
}
