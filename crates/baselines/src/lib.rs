//! Baseline KV-cache quantization policies.
//!
//! The Cocktail paper compares against three representative state-of-the-art
//! quantization methods plus the uncompressed FP16 cache. This crate
//! implements all four behind a common [`CachePolicy`] trait so they plug
//! into the same inference pipeline as Cocktail itself (which implements
//! the trait in `cocktail-core`):
//!
//! | Policy | Paper baseline | Behaviour |
//! |---|---|---|
//! | [`Fp16Policy`] | FP16 | keeps the cache untouched |
//! | [`AtomPolicy`] | Atom | uniform per-token group quantization to INT4 |
//! | [`KiviPolicy`] | KIVI | per-channel key / per-token value INT4 |
//! | [`KvQuantPolicy`] | KVQuant | token-level mixed precision: ~1 % outlier tokens stay FP16, the rest INT4 |
//!
//! # Example
//!
//! ```
//! use cocktail_baselines::{AtomPolicy, CachePolicy, PolicyContext};
//! use cocktail_kvcache::{ChunkSegmentation, ChunkedLayerCache};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let k = cocktail_tensor::rng::gaussian_matrix(64, 16, 1.0, 1);
//! let v = cocktail_tensor::rng::gaussian_matrix(64, 16, 1.0, 2);
//! let seg = ChunkSegmentation::new(64, 32)?;
//! let mut cache = ChunkedLayerCache::from_prefill(&k, &v, &seg)?;
//!
//! let policy = AtomPolicy::default();
//! let report = policy.apply_layer(&mut cache, &PolicyContext::empty())?;
//! assert_eq!(report.chunks_at(cocktail_quant::Bitwidth::Int4), 2);
//! assert!(cache.storage_bytes() < cache.fp16_reference_bytes());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atom;
mod fp16;
mod kivi;
mod kvquant;
mod policy;

pub use atom::AtomPolicy;
pub use fp16::Fp16Policy;
pub use kivi::KiviPolicy;
pub use kvquant::KvQuantPolicy;
pub use policy::{CachePolicy, PolicyContext, PolicyError, PolicyReport, SearchGranularity};
