//! The KIVI baseline: per-channel key / per-token value quantization.

use crate::policy::{CachePolicy, PolicyContext, PolicyError, PolicyReport, SearchGranularity};
use cocktail_kvcache::ChunkedLayerCache;
use cocktail_quant::{Bitwidth, QuantAxis, QuantConfig};

/// KIVI observes that key-cache outliers concentrate in a few channels
/// while value-cache magnitudes vary per token, and therefore quantizes the
/// key cache *per channel* and the value cache *per token*. The paper's
/// comparison runs KIVI at INT4.
///
/// # Example
///
/// ```
/// use cocktail_baselines::{CachePolicy, KiviPolicy, PolicyContext};
/// use cocktail_kvcache::{ChunkSegmentation, ChunkedLayerCache};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let k = cocktail_tensor::rng::gaussian_matrix(64, 16, 1.0, 1);
/// let v = cocktail_tensor::rng::gaussian_matrix(64, 16, 1.0, 2);
/// let seg = ChunkSegmentation::new(64, 32)?;
/// let mut cache = ChunkedLayerCache::from_prefill(&k, &v, &seg)?;
/// let report = KiviPolicy::default().apply_layer(&mut cache, &PolicyContext::empty())?;
/// assert_eq!(report.total_chunks(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KiviPolicy {
    bitwidth: Bitwidth,
    group_size: usize,
}

impl KiviPolicy {
    /// Creates the policy with an explicit bitwidth and group size.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::InvalidInput`] if the bitwidth is FP16 or the
    /// group size is zero.
    pub fn new(bitwidth: Bitwidth, group_size: usize) -> Result<Self, PolicyError> {
        if bitwidth.is_float() {
            return Err(PolicyError::InvalidInput(
                "KIVI requires an integer bitwidth".into(),
            ));
        }
        if group_size == 0 {
            return Err(PolicyError::InvalidInput(
                "group size must be nonzero".into(),
            ));
        }
        Ok(Self {
            bitwidth,
            group_size,
        })
    }

    /// The quantization bitwidth.
    pub fn bitwidth(&self) -> Bitwidth {
        self.bitwidth
    }

    /// The quantization group size.
    pub fn group_size(&self) -> usize {
        self.group_size
    }
}

impl Default for KiviPolicy {
    /// The paper's configuration: INT4 with the default group size.
    fn default() -> Self {
        Self {
            bitwidth: Bitwidth::Int4,
            group_size: QuantConfig::DEFAULT_GROUP_SIZE,
        }
    }
}

impl CachePolicy for KiviPolicy {
    fn name(&self) -> &'static str {
        "KIVI"
    }

    fn apply_layer(
        &self,
        cache: &mut ChunkedLayerCache,
        _ctx: &PolicyContext,
    ) -> Result<PolicyReport, PolicyError> {
        cache.quantize_all(
            self.bitwidth,
            QuantAxis::PerChannel,
            QuantAxis::PerToken,
            self.group_size,
        )?;
        let mut report = PolicyReport::new(self.name(), SearchGranularity::None);
        report.record_chunks(self.bitwidth, cache.chunk_count());
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_kvcache::ChunkSegmentation;
    use cocktail_tensor::{rng, Matrix};

    fn cache_from(k: &Matrix, v: &Matrix, chunk: usize) -> ChunkedLayerCache {
        let seg = ChunkSegmentation::new(k.rows(), chunk).unwrap();
        ChunkedLayerCache::from_prefill(k, v, &seg).unwrap()
    }

    #[test]
    fn quantizes_all_chunks_to_int4() {
        let k = rng::gaussian_matrix(64, 16, 1.0, 1);
        let v = rng::gaussian_matrix(64, 16, 1.0, 2);
        let mut cache = cache_from(&k, &v, 16);
        KiviPolicy::default()
            .apply_layer(&mut cache, &PolicyContext::empty())
            .unwrap();
        assert!(cache
            .chunks()
            .iter()
            .all(|c| c.bitwidth() == Bitwidth::Int4));
    }

    #[test]
    fn per_channel_keys_beat_atom_on_channel_outliers() {
        // Construct keys with strong per-channel scale differences (the
        // pattern KIVI is designed for) and values without structure.
        let rows = 64usize;
        let dim = 16usize;
        let mut k = rng::gaussian_matrix(rows, dim, 1.0, 7);
        for r in 0..rows {
            for c in 0..dim {
                let boost = if c < 2 { 50.0 } else { 1.0 };
                k.set(r, c, k.get(r, c) * boost);
            }
        }
        let v = rng::gaussian_matrix(rows, dim, 1.0, 8);

        let mut kivi_cache = cache_from(&k, &v, 32);
        KiviPolicy::default()
            .apply_layer(&mut kivi_cache, &PolicyContext::empty())
            .unwrap();
        let mut atom_cache = cache_from(&k, &v, 32);
        crate::AtomPolicy::default()
            .apply_layer(&mut atom_cache, &PolicyContext::empty())
            .unwrap();

        let kivi_err: f32 = kivi_cache
            .chunks()
            .iter()
            .map(|c| {
                let reference = k.slice_rows(
                    c.logical_index() * 32,
                    c.logical_index() * 32 + c.token_len(),
                );
                c.key_matrix().mse(&reference).unwrap()
            })
            .sum();
        let atom_err: f32 = atom_cache
            .chunks()
            .iter()
            .map(|c| {
                let reference = k.slice_rows(
                    c.logical_index() * 32,
                    c.logical_index() * 32 + c.token_len(),
                );
                c.key_matrix().mse(&reference).unwrap()
            })
            .sum();
        assert!(
            kivi_err < atom_err,
            "per-channel key quantization ({kivi_err}) should beat per-token ({atom_err}) on channel-outlier keys"
        );
    }

    #[test]
    fn rejects_invalid_configuration() {
        assert!(KiviPolicy::new(Bitwidth::Fp16, 32).is_err());
        assert!(KiviPolicy::new(Bitwidth::Int2, 0).is_err());
        assert_eq!(
            KiviPolicy::new(Bitwidth::Int2, 16).unwrap().bitwidth(),
            Bitwidth::Int2
        );
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(KiviPolicy::default().name(), "KIVI");
        assert_eq!(KiviPolicy::default().group_size(), 32);
    }
}
