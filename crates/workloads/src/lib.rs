//! Synthetic LongBench-style workloads and the accuracy evaluation harness.
//!
//! The paper evaluates on eight LongBench datasets (Table I). Those corpora
//! are not shipped with this reproduction, so this crate generates
//! *synthetic* tasks with the same shapes — single-document QA,
//! summarization, few-shot learning and code completion — in which the
//! answer-bearing content sits in known positions of a long filler context.
//! That preserves the property the paper's method exploits (only a few
//! chunks are relevant to the query) while making every experiment
//! deterministic and self-contained.
//!
//! * [`TaskGenerator`] / [`WorkloadConfig`] — one generator per LongBench
//!   task family, producing [`TaskInstance`]s.
//! * [`metrics`] — token-level F1, ROUGE-1/2/L, classification accuracy and
//!   edit similarity, the metrics listed in the paper's Table I.
//! * [`eval`] — the accuracy harness: an induction-head extraction model
//!   reads the answer out of a (quantized) KV cache through real attention
//!   arithmetic, so the damage each quantization policy does to
//!   answer-bearing chunks shows up directly in the task metric.
//!
//! # Example
//!
//! ```
//! use cocktail_workloads::{TaskGenerator, TaskKind, WorkloadConfig};
//!
//! let task = TaskGenerator::new(TaskKind::Qasper, WorkloadConfig::tiny()).generate(7);
//! assert!(task.context.split_whitespace().count() > 50);
//! assert!(!task.query.is_empty());
//! assert!(!task.reference.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
mod generators;
pub mod metrics;
mod task;
mod text;
mod traffic;

pub use generators::{TaskGenerator, WorkloadConfig};
pub use task::{Metric, TaskInstance, TaskKind};
pub use traffic::{ChatSpec, ChatTurn, TrafficConfig, TrafficGenerator, TrafficRequest};
