//! The accuracy evaluation harness.
//!
//! The paper measures model accuracy on LongBench with pretrained 7B/13B
//! checkpoints. This reproduction cannot run those models, so accuracy is
//! measured with an *induction-head extraction model*: a single attention
//! head whose keys encode the previous token and whose values encode the
//! current token, built over the same chunked KV cache the quantization
//! policies rewrite. Reading an answer out of the context then requires
//! real attention arithmetic over the (quantized) cache:
//!
//! 1. the query names a unique *anchor* token that also appears in the
//!    context right before the answer span;
//! 2. the extractor attends with the anchor's embedding, which matches the
//!    key of the token following the anchor — provided that chunk's keys
//!    survived quantization;
//! 3. the attention output is decoded to the nearest vocabulary embedding,
//!    which reproduces the answer token — provided that chunk's values
//!    survived quantization — and the process repeats autoregressively.
//!
//! Quantizing an answer-bearing chunk to INT2 corrupts both the match and
//! the read-out, so the task metric drops; quantizing irrelevant chunks is
//! harmless. This is precisely the causal chain Cocktail exploits, realised
//! with the same quantized-attention kernels the rest of the system uses.

use crate::task::TaskInstance;
use cocktail_baselines::{CachePolicy, PolicyContext, PolicyReport};
use cocktail_kvcache::{ChunkSegmentation, ChunkedLayerCache, KvCacheError};
use cocktail_retrieval::chunking;
use cocktail_tensor::rng::{derive_seed, seeded_rng};
use cocktail_tensor::Matrix;
use rand::Rng;
use std::collections::HashMap;
use std::collections::HashSet;

/// Configuration of the extraction-based evaluator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalConfig {
    /// Context chunk size in tokens (must match the policy's chunk size).
    pub chunk_size: usize,
    /// Dimension of the word embeddings used for keys, values and queries.
    /// Smaller dimensions make the read-out more sensitive to quantization
    /// noise, mimicking how error accumulates in a deep model.
    pub embed_dim: usize,
    /// Softmax sharpness (the scale applied to attention logits).
    pub sharpness: f32,
    /// Minimum cosine similarity between the attention output and the best
    /// vocabulary embedding for a token to be emitted. Below the threshold
    /// the extractor emits `<unk>`, modelling how a real model's decoding
    /// goes off-answer once the retrieved context features are too
    /// corrupted to decode confidently.
    pub confidence_threshold: f32,
    /// Seed for the embedding table.
    pub embedding_seed: u64,
}

impl EvalConfig {
    /// The default evaluator configuration used by the experiment
    /// harnesses: chunk size 32 (the paper's default), 16-dimensional
    /// embeddings, a softmax sharpness of 20 and a decoding-confidence
    /// threshold of 0.85.
    ///
    /// The confidence threshold is what makes the harness sensitive to KV
    /// quantization: when the answer-bearing chunk's keys/values are
    /// heavily quantized, the retrieved representation falls below the
    /// threshold and the extraction goes off-answer, exactly as a real
    /// model's long-context recall degrades; noise on irrelevant chunks
    /// leaves the margin intact.
    pub fn new(chunk_size: usize) -> Self {
        Self {
            chunk_size,
            embed_dim: 16,
            sharpness: 20.0,
            confidence_threshold: 0.93,
            embedding_seed: 0x00E3_7A11,
        }
    }
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self::new(32)
    }
}

/// The result of evaluating one policy on one task instance.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// Task score on the paper's 0–100 scale.
    pub score: f64,
    /// The extracted prediction text.
    pub prediction: String,
    /// What the policy did to the cache.
    pub report: PolicyReport,
    /// KV-cache bytes after the policy ran (extraction cache, single head).
    pub cache_bytes: usize,
    /// KV-cache bytes of the same cache in FP16.
    pub fp16_cache_bytes: usize,
}

/// The induction-head extraction evaluator.
///
/// # Example
///
/// ```
/// use cocktail_baselines::Fp16Policy;
/// use cocktail_workloads::eval::{EvalConfig, Evaluator};
/// use cocktail_workloads::{TaskGenerator, TaskKind, WorkloadConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let task = TaskGenerator::new(TaskKind::Qasper, WorkloadConfig::tiny()).generate(3);
/// let evaluator = Evaluator::new(EvalConfig::new(16));
/// let outcome = evaluator.evaluate(&task, &Fp16Policy::new())?;
/// assert!(outcome.score > 50.0); // FP16 cache: the answer is read out almost verbatim
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator {
    config: EvalConfig,
}

impl Evaluator {
    /// Creates an evaluator.
    pub fn new(config: EvalConfig) -> Self {
        Self { config }
    }

    /// The evaluator configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Deterministic unit-norm embedding of a word.
    pub fn word_embedding(&self, word: &str) -> Vec<f32> {
        let seed = derive_seed(self.config.embedding_seed, word);
        let mut rng = seeded_rng(seed);
        let mut v: Vec<f32> = (0..self.config.embed_dim)
            .map(|_| {
                let sum: f32 = (0..12).map(|_| rng.gen::<f32>()).sum();
                sum - 6.0
            })
            .collect();
        let norm = cocktail_tensor::l2_norm(&v).max(1e-6);
        for x in &mut v {
            *x /= norm;
        }
        v
    }

    /// Builds the induction-head KV cache for a context: key of position
    /// `i` is the embedding of token `i − 1` (the "previous token" feature a
    /// real induction head computes), value of position `i` is the
    /// embedding of token `i` itself.
    pub fn build_cache(&self, context_words: &[String]) -> Result<ChunkedLayerCache, KvCacheError> {
        let dim = self.config.embed_dim;
        let n = context_words.len();
        let mut k = Matrix::zeros(n, dim);
        let mut v = Matrix::zeros(n, dim);
        for i in 0..n {
            let prev = if i == 0 {
                "<bos>"
            } else {
                &context_words[i - 1]
            };
            k.row_mut(i).copy_from_slice(&self.word_embedding(prev));
            v.row_mut(i)
                .copy_from_slice(&self.word_embedding(&context_words[i]));
        }
        let seg = ChunkSegmentation::new(n, self.config.chunk_size)?;
        ChunkedLayerCache::from_prefill(&k, &v, &seg)
    }

    /// The anchors the extractor will follow: query words that occur in the
    /// context exactly once (everything else is either filler vocabulary or
    /// absent). This needs no ground-truth knowledge of the task.
    pub fn find_anchors(&self, context_words: &[String], query: &str) -> Vec<String> {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for w in context_words {
            *counts.entry(w.as_str()).or_insert(0) += 1;
        }
        let mut seen = HashSet::new();
        chunking::split_words(query)
            .into_iter()
            .filter(|w| counts.get(w.as_str()) == Some(&1) && seen.insert(w.clone()))
            .collect()
    }

    /// Extracts a continuation starting after `anchor` by repeated
    /// attention over the cache and nearest-embedding read-out, until
    /// `content_words` non-punctuation tokens have been produced (with a
    /// small step budget so a derailed extraction terminates).
    fn extract_span(
        &self,
        cache: &ChunkedLayerCache,
        vocabulary: &[(String, Vec<f32>)],
        anchor: &str,
        content_words: usize,
    ) -> Result<Vec<String>, KvCacheError> {
        let mut produced = Vec::new();
        let mut prev = anchor.to_string();
        let max_steps = content_words + 3;
        let mut content = 0usize;
        for _ in 0..max_steps {
            if content >= content_words {
                break;
            }
            let q = Matrix::from_vec(1, self.config.embed_dim, self.word_embedding(&prev))
                .expect("embedding length matches dim");
            let attention = cache.attend(&q, self.config.sharpness)?;
            let output = attention.output.row(0);
            let output_norm = cocktail_tensor::l2_norm(output).max(1e-6);
            let mut best_word = "";
            let mut best_score = f32::NEG_INFINITY;
            for (word, embedding) in vocabulary {
                let score = cocktail_tensor::dot(output, embedding) / output_norm;
                if score > best_score {
                    best_score = score;
                    best_word = word;
                }
            }
            // Decode only when the retrieved representation is clean enough;
            // otherwise the extraction goes off-answer (an <unk> token).
            let emitted = if best_score >= self.config.confidence_threshold {
                best_word.to_string()
            } else {
                "<unk>".to_string()
            };
            prev = emitted.clone();
            if is_content_word(&emitted) {
                produced.push(emitted);
                content += 1;
            }
        }
        Ok(produced)
    }

    /// Evaluates one policy on one task instance.
    ///
    /// # Errors
    ///
    /// Returns a [`KvCacheError`] if the cache construction or attention
    /// fails, or a boxed policy error if the policy rejects the cache.
    pub fn evaluate(
        &self,
        task: &TaskInstance,
        policy: &dyn CachePolicy,
    ) -> Result<EvalOutcome, Box<dyn std::error::Error>> {
        let context_words = chunking::split_words(&task.context);
        let mut cache = self.build_cache(&context_words)?;
        let fp16_cache_bytes = cache.fp16_reference_bytes();

        let chunk_texts = chunking::chunk_words(&task.context, self.config.chunk_size);
        let ctx = PolicyContext::new(chunk_texts, task.query.clone());
        let report = policy.apply_layer(&mut cache, &ctx)?;
        let cache_bytes = cache.storage_bytes();

        // Vocabulary for the read-out: every distinct context word.
        let mut vocabulary: Vec<(String, Vec<f32>)> = Vec::new();
        let mut seen = HashSet::new();
        for w in &context_words {
            if seen.insert(w.clone()) {
                vocabulary.push((w.clone(), self.word_embedding(w)));
            }
        }

        let anchors = self.find_anchors(&context_words, &task.query);
        let reference_words = chunking::split_words(&task.reference).len().max(1);
        let per_anchor = if anchors.is_empty() {
            0
        } else {
            reference_words.div_ceil(anchors.len())
        };

        let mut predicted = Vec::new();
        for anchor in &anchors {
            predicted.extend(self.extract_span(&cache, &vocabulary, anchor, per_anchor)?);
        }
        let prediction = predicted.join(" ");
        Ok(EvalOutcome {
            score: task.score(&prediction),
            prediction,
            report,
            cache_bytes,
            fp16_cache_bytes,
        })
    }

    /// Evaluates a policy over a batch of task instances and returns the
    /// mean score (0–100).
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation error.
    pub fn mean_score(
        &self,
        tasks: &[TaskInstance],
        policy: &dyn CachePolicy,
    ) -> Result<f64, Box<dyn std::error::Error>> {
        if tasks.is_empty() {
            return Ok(0.0);
        }
        let mut total = 0.0;
        for task in tasks {
            total += self.evaluate(task, policy)?.score;
        }
        Ok(total / tasks.len() as f64)
    }
}

/// A token counts as content if it contains at least one alphanumeric
/// character (punctuation connectors like `":"` or `"="` do not).
fn is_content_word(word: &str) -> bool {
    word.chars().any(|c| c.is_alphanumeric())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TaskGenerator, TaskKind, WorkloadConfig};
    use cocktail_baselines::{AtomPolicy, Fp16Policy, KvQuantPolicy};
    use cocktail_quant::Bitwidth;

    fn evaluator() -> Evaluator {
        Evaluator::new(EvalConfig::new(16))
    }

    fn tasks(kind: TaskKind, count: usize) -> Vec<TaskInstance> {
        TaskGenerator::new(kind, WorkloadConfig::small()).generate_batch(40, count)
    }

    #[test]
    fn embeddings_are_deterministic_unit_norm() {
        let eval = evaluator();
        let a = eval.word_embedding("crimson");
        let b = eval.word_embedding("crimson");
        let c = eval.word_embedding("falcon");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!((cocktail_tensor::l2_norm(&a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn anchors_are_query_words_unique_in_context() {
        let eval = evaluator();
        let task = TaskGenerator::qasper(WorkloadConfig::tiny()).generate(7);
        let words = chunking::split_words(&task.context);
        let anchors = eval.find_anchors(&words, &task.query);
        assert_eq!(anchors.len(), task.needles.len());
        for needle in &task.needles {
            assert!(anchors.contains(&needle.anchor));
        }
    }

    #[test]
    fn fp16_cache_reads_the_answer_out_almost_verbatim() {
        let eval = evaluator();
        let task = TaskGenerator::qasper(WorkloadConfig::small()).generate(51);
        let outcome = eval.evaluate(&task, &Fp16Policy::new()).unwrap();
        assert!(
            outcome.score > 60.0,
            "FP16 extraction should be nearly perfect, got {} ({})",
            outcome.score,
            outcome.prediction
        );
        for answer in &task.needles[0].answer_words {
            assert!(
                outcome.prediction.contains(answer),
                "prediction {:?} should contain {answer}",
                outcome.prediction
            );
        }
    }

    #[test]
    fn uniform_int2_hurts_accuracy_much_more_than_fp16() {
        let eval = evaluator();
        let batch = tasks(TaskKind::Qasper, 4);
        let fp16 = eval.mean_score(&batch, &Fp16Policy::new()).unwrap();
        let int2 = eval
            .mean_score(&batch, &AtomPolicy::new(Bitwidth::Int2, 32).unwrap())
            .unwrap();
        assert!(
            fp16 - int2 > 10.0,
            "uniform INT2 should lose noticeable accuracy: fp16={fp16:.1} int2={int2:.1}"
        );
    }

    #[test]
    fn int4_sits_between_fp16_and_int2() {
        let eval = evaluator();
        let batch = tasks(TaskKind::TriviaQa, 4);
        let fp16 = eval.mean_score(&batch, &Fp16Policy::new()).unwrap();
        let int4 = eval.mean_score(&batch, &AtomPolicy::default()).unwrap();
        let int2 = eval
            .mean_score(&batch, &AtomPolicy::new(Bitwidth::Int2, 32).unwrap())
            .unwrap();
        assert!(fp16 >= int4 - 1e-9, "fp16={fp16:.1} int4={int4:.1}");
        assert!(int4 >= int2 - 5.0, "int4={int4:.1} int2={int2:.1}");
    }

    #[test]
    fn kvquant_outliers_do_not_hurt_memory_much() {
        let eval = evaluator();
        let task = TaskGenerator::qasper(WorkloadConfig::small()).generate(60);
        let atom = eval.evaluate(&task, &AtomPolicy::default()).unwrap();
        let kvq = eval.evaluate(&task, &KvQuantPolicy::default()).unwrap();
        assert!(kvq.cache_bytes >= atom.cache_bytes);
        assert!(kvq.cache_bytes < kvq.fp16_cache_bytes);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let eval = evaluator();
        let task = TaskGenerator::qmsum(WorkloadConfig::tiny()).generate(9);
        let a = eval.evaluate(&task, &AtomPolicy::default()).unwrap();
        let b = eval.evaluate(&task, &AtomPolicy::default()).unwrap();
        assert_eq!(a.score, b.score);
        assert_eq!(a.prediction, b.prediction);
    }

    #[test]
    fn empty_task_batch_scores_zero() {
        let eval = evaluator();
        assert_eq!(eval.mean_score(&[], &Fp16Policy::new()).unwrap(), 0.0);
    }
}
