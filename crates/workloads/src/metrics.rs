//! Text-similarity metrics used by the LongBench-style evaluation
//! (Table I of the paper): token F1, ROUGE, classification accuracy and
//! edit similarity. All metrics return a value in `[0, 1]`.

use std::collections::HashMap;

fn tokens(text: &str) -> Vec<String> {
    text.split_whitespace()
        .map(|w| {
            w.chars()
                .filter(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
                .collect::<String>()
                .to_lowercase()
        })
        .filter(|w| !w.is_empty())
        .collect()
}

/// Token-level F1 between a prediction and a reference (the metric of
/// Qasper and TriviaQA).
///
/// # Example
///
/// ```
/// let f1 = cocktail_workloads::metrics::token_f1("the red fox", "a red fox");
/// assert!(f1 > 0.6 && f1 < 1.0);
/// assert_eq!(cocktail_workloads::metrics::token_f1("same words", "same words"), 1.0);
/// ```
pub fn token_f1(prediction: &str, reference: &str) -> f64 {
    let pred = tokens(prediction);
    let reference = tokens(reference);
    if pred.is_empty() || reference.is_empty() {
        return if pred.is_empty() && reference.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let mut ref_counts: HashMap<&str, usize> = HashMap::new();
    for t in &reference {
        *ref_counts.entry(t.as_str()).or_insert(0) += 1;
    }
    let mut overlap = 0usize;
    for t in &pred {
        if let Some(count) = ref_counts.get_mut(t.as_str()) {
            if *count > 0 {
                *count -= 1;
                overlap += 1;
            }
        }
    }
    if overlap == 0 {
        return 0.0;
    }
    let precision = overlap as f64 / pred.len() as f64;
    let recall = overlap as f64 / reference.len() as f64;
    2.0 * precision * recall / (precision + recall)
}

/// ROUGE-N F-measure (n-gram overlap), used for the summarization tasks.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn rouge_n(prediction: &str, reference: &str, n: usize) -> f64 {
    assert!(n > 0, "ROUGE-N requires n >= 1");
    let pred = tokens(prediction);
    let reference = tokens(reference);
    if pred.len() < n || reference.len() < n {
        return if pred.is_empty() && reference.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let grams = |toks: &[String]| -> HashMap<Vec<String>, usize> {
        let mut map = HashMap::new();
        for w in toks.windows(n) {
            *map.entry(w.to_vec()).or_insert(0) += 1;
        }
        map
    };
    let pred_grams = grams(&pred);
    let ref_grams = grams(&reference);
    let overlap: usize = ref_grams
        .iter()
        .map(|(g, &count)| count.min(pred_grams.get(g).copied().unwrap_or(0)))
        .sum();
    if overlap == 0 {
        return 0.0;
    }
    let pred_total: usize = pred_grams.values().sum();
    let ref_total: usize = ref_grams.values().sum();
    let precision = overlap as f64 / pred_total as f64;
    let recall = overlap as f64 / ref_total as f64;
    2.0 * precision * recall / (precision + recall)
}

/// ROUGE-L F-measure based on the longest common subsequence of tokens.
pub fn rouge_l(prediction: &str, reference: &str) -> f64 {
    let pred = tokens(prediction);
    let reference = tokens(reference);
    if pred.is_empty() || reference.is_empty() {
        return if pred.is_empty() && reference.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let lcs = lcs_length(&pred, &reference);
    if lcs == 0 {
        return 0.0;
    }
    let precision = lcs as f64 / pred.len() as f64;
    let recall = lcs as f64 / reference.len() as f64;
    2.0 * precision * recall / (precision + recall)
}

fn lcs_length(a: &[String], b: &[String]) -> usize {
    let mut prev = vec![0usize; b.len() + 1];
    let mut current = vec![0usize; b.len() + 1];
    for x in a {
        for (j, y) in b.iter().enumerate() {
            current[j + 1] = if x == y {
                prev[j] + 1
            } else {
                prev[j + 1].max(current[j])
            };
        }
        std::mem::swap(&mut prev, &mut current);
    }
    prev[b.len()]
}

/// Classification accuracy: 1.0 when the predicted label matches the
/// reference label (compared as the first token of each, case-insensitive),
/// 0.0 otherwise. Used for TREC.
pub fn classification_score(prediction: &str, reference: &str) -> f64 {
    let pred = tokens(prediction);
    let reference = tokens(reference);
    match (pred.first(), reference.first()) {
        (Some(p), Some(r)) if p == r => 1.0,
        (None, None) => 1.0,
        _ => 0.0,
    }
}

/// Normalised edit similarity `1 − levenshtein / max_len` over characters,
/// the metric LongBench uses for the code-completion tasks.
pub fn edit_similarity(prediction: &str, reference: &str) -> f64 {
    let a: Vec<char> = prediction.trim().chars().collect();
    let b: Vec<char> = reference.trim().chars().collect();
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(&a, &b) as f64 / max_len as f64
}

fn levenshtein(a: &[char], b: &[char]) -> usize {
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            current[j + 1] = (prev[j + 1] + 1).min(current[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut current);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn f1_exact_match_is_one() {
        assert_eq!(token_f1("alpha beta gamma", "alpha beta gamma"), 1.0);
    }

    #[test]
    fn f1_disjoint_is_zero() {
        assert_eq!(token_f1("alpha beta", "gamma delta"), 0.0);
    }

    #[test]
    fn f1_is_order_insensitive() {
        let a = token_f1("beta alpha", "alpha beta");
        assert_eq!(a, 1.0);
    }

    #[test]
    fn f1_partial_overlap() {
        let f1 = token_f1("alpha beta", "alpha gamma");
        assert!((f1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn f1_empty_handling() {
        assert_eq!(token_f1("", ""), 1.0);
        assert_eq!(token_f1("word", ""), 0.0);
        assert_eq!(token_f1("", "word"), 0.0);
    }

    #[test]
    fn rouge_1_matches_unigram_overlap() {
        let r = rouge_n("the cat sat", "the cat ran", 1);
        assert!((r - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn rouge_2_requires_bigram_overlap() {
        assert_eq!(rouge_n("a b c", "b a c", 2), 0.0);
        assert!(rouge_n("a b c", "a b d", 2) > 0.0);
    }

    #[test]
    fn rouge_l_rewards_in_order_subsequences() {
        let in_order = rouge_l("the quick brown fox jumped", "the brown fox jumped high");
        let shuffled = rouge_l("jumped fox brown the quick", "the brown fox jumped high");
        assert!(in_order > shuffled);
    }

    #[test]
    fn rouge_l_exact_match_is_one() {
        assert_eq!(rouge_l("summary of results", "summary of results"), 1.0);
    }

    #[test]
    fn classification_uses_first_token() {
        assert_eq!(classification_score("Location", "location"), 1.0);
        assert_eq!(
            classification_score("location of the city", "location"),
            1.0
        );
        assert_eq!(classification_score("number", "location"), 0.0);
    }

    #[test]
    fn edit_similarity_bounds() {
        assert_eq!(edit_similarity("let x = 5;", "let x = 5;"), 1.0);
        assert!(edit_similarity("let x = 5;", "let y = 6;") > 0.5);
        assert!(edit_similarity("abc", "xyz") < 0.1);
        assert_eq!(edit_similarity("", ""), 1.0);
    }

    #[test]
    fn punctuation_is_ignored_by_token_metrics() {
        assert_eq!(token_f1("alpha, beta!", "alpha beta"), 1.0);
        assert_eq!(classification_score("location.", "location"), 1.0);
    }

    proptest! {
        #[test]
        fn all_metrics_are_bounded(a in "[a-d ]{0,40}", b in "[a-d ]{0,40}") {
            for v in [
                token_f1(&a, &b),
                rouge_n(&a, &b, 1),
                rouge_n(&a, &b, 2),
                rouge_l(&a, &b),
                classification_score(&a, &b),
                edit_similarity(&a, &b),
            ] {
                prop_assert!((0.0..=1.0).contains(&v), "metric out of range: {v}");
            }
        }

        #[test]
        fn metrics_are_maximal_on_identical_inputs(a in "[a-d]{1,10}( [a-d]{1,10}){0,8}") {
            prop_assert_eq!(token_f1(&a, &a), 1.0);
            prop_assert_eq!(rouge_l(&a, &a), 1.0);
            prop_assert_eq!(edit_similarity(&a, &a), 1.0);
            prop_assert_eq!(classification_score(&a, &a), 1.0);
        }

        #[test]
        fn f1_and_rouge_are_symmetric_enough(a in "[a-c ]{0,30}", b in "[a-c ]{0,30}") {
            // F1 is symmetric by construction; check it holds numerically.
            prop_assert!((token_f1(&a, &b) - token_f1(&b, &a)).abs() < 1e-9);
            prop_assert!((rouge_l(&a, &b) - rouge_l(&b, &a)).abs() < 1e-9);
        }
    }
}
