//! Multi-request serving traffic: mixed task families with staggered
//! arrivals.
//!
//! The single-request generators in [`crate::TaskGenerator`] model one
//! LongBench-style task at a time. A serving engine needs *traffic*: many
//! requests of different families arriving over time. [`TrafficGenerator`]
//! produces a deterministic arrival schedule in which every request draws
//! its task content and its arrival step from its own per-request seed, so
//! a trace can be regenerated request-by-request (and stays stable when the
//! request count changes: request `i` is the same regardless of how many
//! follow it).

use crate::generators::{TaskGenerator, WorkloadConfig};
use crate::task::{TaskInstance, TaskKind};
use crate::text;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Shape of a generated traffic trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Number of requests in the trace.
    pub requests: usize,
    /// Arrival steps are drawn uniformly from `0..arrival_window_steps`
    /// (one step = one serving-engine step). Zero means all requests
    /// arrive up front.
    pub arrival_window_steps: usize,
    /// Generation budget of every request.
    pub max_new_tokens: usize,
    /// Size of each request's context/needles.
    pub workload: WorkloadConfig,
    /// Task families cycled through by consecutive requests.
    pub kinds: Vec<TaskKind>,
    /// Number of shared-prefix groups; `0` disables the shared-prefix
    /// mode. Request `i` belongs to group `i % prefix_groups` and its
    /// context opens with that group's preamble, so serving-side prefix
    /// caches see realistic shared-context traffic. Group membership and
    /// preambles depend only on the base seed and the group index, so they
    /// are stable when the trace grows.
    pub prefix_groups: usize,
    /// Number of words in each group's shared preamble.
    pub prefix_words: usize,
    /// Number of words in each request's *branch segment*, inserted
    /// between the group preamble and the task context; `0` disables the
    /// branching mode. Each branch segment is drawn from its request's own
    /// seed and opens with a request-unique tag, so requests of one group
    /// share their preamble tokens exactly and then *diverge immediately*
    /// — the traffic shape a trie-structured prefix cache deduplicates and
    /// a whole-sequence cache stores redundantly.
    pub branch_words: usize,
    /// Zipf exponent of the hot-tenant skew, in thousandths (`1200`
    /// means s = 1.2); `0` disables the skew. When enabled, request `i`'s
    /// prefix group is no longer `i % prefix_groups` but a weighted draw
    /// from the request's own seed with group `g` weighted
    /// `(g + 1)^-s` — group 0 is the hot tenant. The draw depends only on
    /// the request seed and this exponent, so group membership is stable
    /// when the trace grows.
    pub tenant_skew_milli: u32,
    /// Out of 1000, the probability that a request is cancelled
    /// client-side mid-decode (a disconnecting user); `0` disables the
    /// cancellation mode. A cancelled request carries
    /// [`TrafficRequest::cancel_after_tokens`], the number of streamed
    /// tokens after which the client gives up — always strictly below the
    /// request's generation budget. Drawn from each request's own seed, so
    /// who cancels (and when) is stable when the trace grows.
    pub cancel_per_mille: u32,
    /// Stop strings cycled across requests (request `i` gets entry
    /// `i % len`); empty disables early text stopping.
    pub stop_strings: Vec<String>,
    /// When set, the request at this position of the arrival-sorted trace
    /// carries [`TrafficRequest::restart_before`]: the serving harness
    /// should snapshot the engine, tear it down, and restore a fresh one
    /// before submitting that request (the warm-restart drill). `None`
    /// disables the restart mode.
    pub restart_after_requests: Option<usize>,
    /// Multi-turn chat mode; `None` keeps the single-shot trace. When
    /// set, the trace becomes `requests` *conversations* of
    /// [`ChatSpec::turns`] turns each: every turn is its own
    /// [`TrafficRequest`] whose context is the conversation transcript so
    /// far (preamble + every earlier user message and canned assistant
    /// reply), so each turn strictly *extends* the previous turn's
    /// context — the trie-extension traffic a prefix cache was built for.
    /// Overrides the shared-prefix/branching modes.
    pub chat: Option<ChatSpec>,
}

/// Shape of the multi-turn chat mode (see [`TrafficConfig::chat`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChatSpec {
    /// Turns per conversation; each turn is one request.
    pub turns: usize,
    /// Words in each user message, canned assistant reply, and (in the
    /// tool-loop variant) tool-result segment.
    pub words_per_turn: usize,
    /// Words in the per-conversation preamble (system prompt / pasted
    /// document). The builders default this to 12x the per-turn
    /// transcript increment, so from the second turn on the reusable
    /// prior transcript is at least 12/13 ≈ 92% of the context.
    pub preamble_words: usize,
    /// Agentic tool-call-loop variant: each completed turn appends a
    /// fixed tool-result segment between the user message and the
    /// assistant reply, as an agent interleaving tool output would.
    pub tool_loop: bool,
}

impl ChatSpec {
    /// Words a completed turn appends to the transcript: the user
    /// message, the tool-result segment (tool-loop only), and the canned
    /// assistant reply.
    pub fn turn_increment_words(&self) -> usize {
        let segments = if self.tool_loop { 3 } else { 2 };
        segments * self.words_per_turn
    }
}

/// Chat-turn coordinates of one request (see [`TrafficConfig::chat`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChatTurn {
    /// Which conversation this turn belongs to.
    pub conversation: usize,
    /// Zero-based turn within the conversation.
    pub turn: usize,
    /// Total turns of the conversation.
    pub turns: usize,
}

impl TrafficConfig {
    /// A small mixed-family trace suitable for tests and examples.
    pub fn small(requests: usize) -> Self {
        Self {
            requests,
            arrival_window_steps: 8,
            max_new_tokens: 8,
            workload: WorkloadConfig::tiny(),
            kinds: vec![TaskKind::Qasper, TaskKind::QmSum, TaskKind::TriviaQa],
            prefix_groups: 0,
            prefix_words: 0,
            branch_words: 0,
            tenant_skew_milli: 0,
            cancel_per_mille: 0,
            stop_strings: Vec::new(),
            restart_after_requests: None,
            chat: None,
        }
    }

    /// Returns a copy with a different arrival window.
    pub fn with_arrival_window(mut self, steps: usize) -> Self {
        self.arrival_window_steps = steps;
        self
    }

    /// Returns a copy with a different per-request generation budget.
    pub fn with_max_new_tokens(mut self, tokens: usize) -> Self {
        self.max_new_tokens = tokens;
        self
    }

    /// Returns a copy with shared-prefix traffic: `groups` preambles of
    /// `words` words each, cycled over the requests.
    pub fn with_shared_prefix(mut self, groups: usize, words: usize) -> Self {
        self.prefix_groups = groups;
        self.prefix_words = words;
        self
    }

    /// Returns a copy with *branching* shared-prefix traffic: `groups`
    /// preambles of `words` words cycled over the requests (as in
    /// [`TrafficConfig::with_shared_prefix`]), with every request
    /// additionally inserting its own `branch_words`-word branch segment
    /// between the preamble and its task context. Requests of one group
    /// therefore share their leading tokens exactly and then diverge
    /// immediately — the divergent-branch traffic a trie-structured prefix
    /// cache stores once per shared run while a whole-sequence cache
    /// duplicates the preamble per branch.
    pub fn with_branching_prefix(
        mut self,
        groups: usize,
        words: usize,
        branch_words: usize,
    ) -> Self {
        self.prefix_groups = groups;
        self.prefix_words = words;
        self.branch_words = branch_words;
        self
    }

    /// Returns a copy with Zipf-ish hot-tenant skew over the prefix
    /// groups: group membership becomes a per-request weighted draw with
    /// group `g` weighted `(g + 1)^-s`, where `s` is
    /// `exponent_milli / 1000`. Group 0 is the hot tenant. Only
    /// meaningful together with [`TrafficConfig::with_shared_prefix`] or
    /// [`TrafficConfig::with_branching_prefix`]; `0` restores the uniform
    /// `i % prefix_groups` cycling.
    pub fn with_tenant_skew(mut self, exponent_milli: u32) -> Self {
        self.tenant_skew_milli = exponent_milli;
        self
    }

    /// Returns a copy in which roughly `per_mille`/1000 of the requests
    /// are cancelled client-side mid-decode (clamped to 1000).
    pub fn with_cancellations(mut self, per_mille: u32) -> Self {
        self.cancel_per_mille = per_mille.min(1000);
        self
    }

    /// Returns a copy with stop strings cycled across the requests.
    pub fn with_stop_strings(mut self, stops: Vec<String>) -> Self {
        self.stop_strings = stops;
        self
    }

    /// Returns a copy with a serving-restart point: the request at
    /// position `after_requests` of the arrival-sorted trace is marked
    /// [`TrafficRequest::restart_before`], telling the harness to
    /// snapshot, tear down, and restore the engine before submitting it.
    /// Positions past the end of the trace mark nothing.
    pub fn with_restart_point(mut self, after_requests: usize) -> Self {
        self.restart_after_requests = Some(after_requests);
        self
    }

    /// Returns a copy in multi-turn chat mode: `requests` conversations
    /// of `turns` turns, each turn a request whose context is the
    /// transcript of every earlier turn (and whose query is that turn's
    /// user message of `words_per_turn` words). The per-conversation
    /// preamble defaults to 12x the per-turn transcript increment, so
    /// turns ≥ 2 can reuse ≥ 92% of their context from the trie; override
    /// with [`TrafficConfig::with_chat_preamble`].
    pub fn with_chat_turns(mut self, turns: usize, words_per_turn: usize) -> Self {
        let spec = ChatSpec {
            turns,
            words_per_turn,
            preamble_words: 0,
            tool_loop: false,
        };
        self.chat = Some(ChatSpec {
            preamble_words: 12 * spec.turn_increment_words(),
            ..spec
        });
        self
    }

    /// Returns a copy in the agentic tool-call-loop chat variant: as
    /// [`TrafficConfig::with_chat_turns`], but each completed turn also
    /// appends a fixed `words_per_turn`-word tool-result segment to the
    /// transcript between the user message and the assistant reply.
    pub fn with_chat_tool_loop(mut self, turns: usize, words_per_turn: usize) -> Self {
        let spec = ChatSpec {
            turns,
            words_per_turn,
            preamble_words: 0,
            tool_loop: true,
        };
        self.chat = Some(ChatSpec {
            preamble_words: 12 * spec.turn_increment_words(),
            ..spec
        });
        self
    }

    /// Overrides the chat preamble length (words). Only meaningful after
    /// [`TrafficConfig::with_chat_turns`] or
    /// [`TrafficConfig::with_chat_tool_loop`].
    pub fn with_chat_preamble(mut self, words: usize) -> Self {
        if let Some(spec) = self.chat.as_mut() {
            spec.preamble_words = words;
        }
        self
    }
}

/// One request of a traffic trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficRequest {
    /// Position of the request in the trace (also its tiebreak order for
    /// equal arrival steps).
    pub index: usize,
    /// Serving-engine step at which the request arrives.
    pub arrival_step: usize,
    /// The seed this request's content and arrival were drawn from.
    pub seed: u64,
    /// Generation budget.
    pub max_new_tokens: usize,
    /// The shared-prefix group this request belongs to (`None` when the
    /// shared-prefix mode is disabled).
    pub prefix_group: Option<usize>,
    /// When set, the client disconnects after streaming this many tokens
    /// (strictly below `max_new_tokens`): the serving driver should cancel
    /// the request at that point.
    pub cancel_after_tokens: Option<usize>,
    /// The stop string this request asks the server to end generation on
    /// (`None` when the stop-string mode is disabled).
    pub stop_string: Option<String>,
    /// `true` when the serving harness should snapshot the engine and
    /// restore it into a fresh process *before* submitting this request —
    /// the warm-restart drill of
    /// [`TrafficConfig::with_restart_point`]. At most one request of a
    /// trace carries the marker.
    pub restart_before: bool,
    /// Chat-turn coordinates (`None` outside chat mode). Turn `t > 0` of
    /// a conversation must be submitted after turn `t - 1` completed.
    pub chat: Option<ChatTurn>,
    /// The task (context, query, reference answer). In shared-prefix mode
    /// the context opens with the group preamble.
    pub task: TaskInstance,
}

/// Deterministic generator of mixed-arrival serving traffic.
///
/// # Example
///
/// ```
/// use cocktail_workloads::{TrafficConfig, TrafficGenerator};
///
/// let traffic = TrafficGenerator::new(TrafficConfig::small(5), 42).generate();
/// assert_eq!(traffic.len(), 5);
/// // Sorted by arrival, deterministic per seed.
/// assert!(traffic.windows(2).all(|w| w[0].arrival_step <= w[1].arrival_step));
/// let again = TrafficGenerator::new(TrafficConfig::small(5), 42).generate();
/// assert_eq!(traffic, again);
/// ```
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    config: TrafficConfig,
    base_seed: u64,
}

impl TrafficGenerator {
    /// Creates a generator for the given trace shape and base seed.
    pub fn new(config: TrafficConfig, base_seed: u64) -> Self {
        Self { config, base_seed }
    }

    /// The trace configuration.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// Per-request seed: a SplitMix-style mix of the base seed and the
    /// request index, so each request's randomness is independent of the
    /// trace length.
    fn request_seed(&self, index: usize) -> u64 {
        let mut z = self
            .base_seed
            .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The shared preamble of one prefix group: a fixed-length word
    /// sequence drawn from the base seed and the group index only, so every
    /// request of the group — in any trace length — opens with identical
    /// tokens.
    pub fn group_preamble(&self, group: usize) -> String {
        let words = self.config.prefix_words;
        if words == 0 {
            return String::new();
        }
        let mut rng = text::text_rng(
            self.base_seed ^ (group as u64).wrapping_mul(0xA076_1D64_78BD_642F) ^ 0x5_11A_12E,
        );
        // The group tag comes first so even a 1-word preamble still
        // distinguishes groups.
        let mut collected: Vec<String> = vec![format!("channel{group}"), "briefing".to_string()];
        while collected.len() < words {
            let sentence = text::filler_sentence(&mut rng);
            collected.extend(sentence.split_whitespace().map(str::to_string));
        }
        collected.truncate(words);
        collected.join(" ")
    }

    /// The prefix group of one request: the uniform `index % groups`
    /// cycle by default, or — with [`TrafficConfig::with_tenant_skew`] —
    /// a Zipf-ish weighted draw from the request's own seed, so hot
    /// tenants issue most of the branching traffic. Depends only on the
    /// request's index/seed and the config, never on the trace length.
    pub fn prefix_group_of(&self, index: usize, seed: u64) -> Option<usize> {
        let groups = self.config.prefix_groups;
        if groups == 0 {
            return None;
        }
        if self.config.tenant_skew_milli == 0 {
            return Some(index % groups);
        }
        let s = f64::from(self.config.tenant_skew_milli) / 1000.0;
        let weights: Vec<f64> = (0..groups).map(|g| ((g + 1) as f64).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7E2A_4A57);
        let mut draw = rng.gen_range(0.0..total);
        for (g, weight) in weights.iter().enumerate() {
            if draw < *weight {
                return Some(g);
            }
            draw -= weight;
        }
        Some(groups - 1)
    }

    /// The branch segment of one request in branching-prefix mode: a
    /// request-unique tag word followed by filler drawn from the request's
    /// seed, so the request diverges from its group's preamble at its very
    /// first post-preamble token and stays stable under trace growth.
    /// `None` when the branching mode is disabled.
    pub fn branch_segment(&self, index: usize, seed: u64) -> Option<String> {
        let words = self.config.branch_words;
        if words == 0 {
            return None;
        }
        let mut rng = text::text_rng(seed ^ 0xB8A2_C41F);
        // The unique tag comes first so even a 1-word branch diverges.
        let mut collected: Vec<String> = vec![format!("fork{index}")];
        while collected.len() < words {
            let sentence = text::filler_sentence(&mut rng);
            collected.extend(sentence.split_whitespace().map(str::to_string));
        }
        collected.truncate(words);
        Some(collected.join(" "))
    }

    /// A fixed-length word run for one chat segment: the distinguishing
    /// tag words first, then filler drawn from `seed`.
    fn chat_words(seed: u64, tags: Vec<String>, words: usize) -> String {
        let mut rng = text::text_rng(seed);
        let mut collected = tags;
        while collected.len() < words {
            let sentence = text::filler_sentence(&mut rng);
            collected.extend(sentence.split_whitespace().map(str::to_string));
        }
        collected.truncate(words);
        collected.join(" ")
    }

    /// Per-(conversation, turn, role) seed for chat text, independent of
    /// the trace length and turn count.
    fn chat_seed(&self, conversation: usize, turn: usize, salt: u64) -> u64 {
        let mut z = self.base_seed
            ^ (conversation as u64).wrapping_mul(0xA076_1D64_78BD_642F)
            ^ (turn as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ salt;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The per-conversation chat preamble (system prompt / pasted
    /// document): fixed words drawn from the base seed and the
    /// conversation index only, so every turn of the conversation opens
    /// with identical tokens. Empty outside chat mode.
    pub fn chat_preamble(&self, conversation: usize) -> String {
        let Some(spec) = &self.config.chat else {
            return String::new();
        };
        if spec.preamble_words == 0 {
            return String::new();
        }
        Self::chat_words(
            self.chat_seed(conversation, 0, 0xC0A7),
            vec![format!("chat{conversation}"), "session".to_string()],
            spec.preamble_words,
        )
    }

    /// Turn `turn`'s user message (the request's query; earlier turns'
    /// messages are part of the transcript). Empty outside chat mode.
    pub fn chat_user_message(&self, conversation: usize, turn: usize) -> String {
        let Some(spec) = &self.config.chat else {
            return String::new();
        };
        Self::chat_words(
            self.chat_seed(conversation, turn, 0x05E7),
            vec![format!("turn{turn}"), "question".to_string()],
            spec.words_per_turn,
        )
    }

    /// The canned assistant reply appended to the transcript once turn
    /// `turn` completes. A deterministic stand-in for the served answer,
    /// so greedy and sampled runs of the same trace share their
    /// transcripts token-for-token. Empty outside chat mode.
    pub fn chat_assistant_segment(&self, conversation: usize, turn: usize) -> String {
        let Some(spec) = &self.config.chat else {
            return String::new();
        };
        Self::chat_words(
            self.chat_seed(conversation, turn, 0xA551),
            vec![format!("reply{turn}"), "answer".to_string()],
            spec.words_per_turn,
        )
    }

    /// The fixed tool-result segment the tool-loop variant interleaves
    /// between turn `turn`'s user message and assistant reply. `None`
    /// outside the tool-loop chat mode.
    pub fn chat_tool_segment(&self, conversation: usize, turn: usize) -> Option<String> {
        let spec = self.config.chat.as_ref()?;
        if !spec.tool_loop {
            return None;
        }
        Some(Self::chat_words(
            self.chat_seed(conversation, turn, 0x7001),
            vec![format!("toolresult{turn}"), "output".to_string()],
            spec.words_per_turn,
        ))
    }

    /// The conversation transcript turn `turn` conditions on: the
    /// preamble plus every earlier turn's user message, tool result
    /// (tool-loop only), and assistant reply. Turn `t`'s transcript is a
    /// strict word-level extension of turn `t - 1`'s, so each turn hits
    /// the prefix trie on its entire prior transcript.
    pub fn chat_transcript(&self, conversation: usize, turn: usize) -> String {
        let mut parts = vec![self.chat_preamble(conversation)];
        for earlier in 0..turn {
            parts.push(self.chat_user_message(conversation, earlier));
            if let Some(tool) = self.chat_tool_segment(conversation, earlier) {
                parts.push(tool);
            }
            parts.push(self.chat_assistant_segment(conversation, earlier));
        }
        parts.retain(|p| !p.is_empty());
        parts.join(" ")
    }

    /// The chat-mode trace: one request per (conversation, turn), indexed
    /// `conversation * turns + turn` so conversations keep their identity
    /// when more are appended. Arrivals are turn-major (turn `t` arrives
    /// at step `t`): same-turn requests of different conversations batch
    /// together, and a turn never arrives before its predecessor.
    fn chat_requests(&self, spec: &ChatSpec) -> Vec<TrafficRequest> {
        let kinds = if self.config.kinds.is_empty() {
            vec![TaskKind::Qasper]
        } else {
            self.config.kinds.clone()
        };
        let turns = spec.turns.max(1);
        let mut requests = Vec::with_capacity(self.config.requests * turns);
        for conversation in 0..self.config.requests {
            for turn in 0..turns {
                let index = conversation * turns + turn;
                let seed = self.request_seed(index);
                let task = TaskInstance {
                    kind: kinds[conversation % kinds.len()],
                    context: self.chat_transcript(conversation, turn),
                    query: self.chat_user_message(conversation, turn),
                    reference: String::new(),
                    needles: Vec::new(),
                    seed,
                };
                requests.push(TrafficRequest {
                    index,
                    arrival_step: turn,
                    seed,
                    max_new_tokens: self.config.max_new_tokens,
                    prefix_group: None,
                    cancel_after_tokens: self.cancel_draw(seed),
                    stop_string: self.stop_string_for(index),
                    restart_before: false,
                    chat: Some(ChatTurn {
                        conversation,
                        turn,
                        turns,
                    }),
                    task,
                });
            }
        }
        requests
    }

    /// The client-side cancellation draw of one request (see
    /// [`TrafficConfig::with_cancellations`]).
    fn cancel_draw(&self, seed: u64) -> Option<usize> {
        if self.config.cancel_per_mille > 0 && self.config.max_new_tokens > 1 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xCA9C_E11E);
            (rng.gen_range(0..1000) < self.config.cancel_per_mille)
                .then(|| rng.gen_range(1..self.config.max_new_tokens))
        } else {
            None
        }
    }

    /// The stop string cycled onto one request, if the mode is enabled.
    fn stop_string_for(&self, index: usize) -> Option<String> {
        (!self.config.stop_strings.is_empty())
            .then(|| self.config.stop_strings[index % self.config.stop_strings.len()].clone())
    }

    /// Generates the trace, sorted by arrival step (ties keep submission
    /// order by index).
    pub fn generate(&self) -> Vec<TrafficRequest> {
        if let Some(spec) = self.config.chat {
            let mut requests = self.chat_requests(&spec);
            requests.sort_by_key(|r| (r.arrival_step, r.index));
            if let Some(point) = self.config.restart_after_requests {
                if let Some(request) = requests.get_mut(point) {
                    request.restart_before = true;
                }
            }
            return requests;
        }
        let kinds = if self.config.kinds.is_empty() {
            vec![TaskKind::Qasper]
        } else {
            self.config.kinds.clone()
        };
        let mut requests: Vec<TrafficRequest> = (0..self.config.requests)
            .map(|index| {
                let seed = self.request_seed(index);
                let kind = kinds[index % kinds.len()];
                let arrival_step = if self.config.arrival_window_steps == 0 {
                    0
                } else {
                    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0A22_17A1);
                    rng.gen_range(0..self.config.arrival_window_steps)
                };
                let mut task = TaskGenerator::new(kind, self.config.workload).generate(seed);
                let prefix_group = if let Some(group) = self.prefix_group_of(index, seed) {
                    let branch = self.branch_segment(index, seed);
                    task.context = match branch {
                        Some(branch) => format!(
                            "{} . {branch} . {}",
                            self.group_preamble(group),
                            task.context
                        ),
                        None => format!("{} . {}", self.group_preamble(group), task.context),
                    };
                    Some(group)
                } else {
                    None
                };
                TrafficRequest {
                    index,
                    arrival_step,
                    seed,
                    max_new_tokens: self.config.max_new_tokens,
                    prefix_group,
                    cancel_after_tokens: self.cancel_draw(seed),
                    stop_string: self.stop_string_for(index),
                    restart_before: false,
                    chat: None,
                    task,
                }
            })
            .collect();
        requests.sort_by_key(|r| (r.arrival_step, r.index));
        // The restart point is positional in the *served* (arrival) order:
        // "restart after N requests have been submitted".
        if let Some(point) = self.config.restart_after_requests {
            if let Some(request) = requests.get_mut(point) {
                request.restart_before = true;
            }
        }
        requests
    }

    /// The requests arriving at exactly `step`, in submission order.
    pub fn arrivals_at(&self, trace: &[TrafficRequest], step: usize) -> Vec<TrafficRequest> {
        trace
            .iter()
            .filter(|r| r.arrival_step == step)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_seed_sensitive() {
        let a = TrafficGenerator::new(TrafficConfig::small(6), 1).generate();
        let b = TrafficGenerator::new(TrafficConfig::small(6), 1).generate();
        let c = TrafficGenerator::new(TrafficConfig::small(6), 2).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn request_identity_is_stable_under_trace_growth() {
        let short = TrafficGenerator::new(TrafficConfig::small(3), 7).generate();
        let long = TrafficGenerator::new(TrafficConfig::small(8), 7).generate();
        for request in &short {
            let twin = long
                .iter()
                .find(|r| r.index == request.index)
                .expect("request present in longer trace");
            assert_eq!(request, twin);
        }
    }

    #[test]
    fn kinds_cycle_and_arrivals_stay_in_window() {
        let config = TrafficConfig::small(9).with_arrival_window(5);
        let trace = TrafficGenerator::new(config.clone(), 3).generate();
        for request in &trace {
            assert!(request.arrival_step < 5);
            let expected = config.kinds[request.index % config.kinds.len()];
            assert_eq!(request.task.kind, expected);
        }
        // All three families appear.
        for kind in &config.kinds {
            assert!(trace.iter().any(|r| r.task.kind == *kind));
        }
    }

    #[test]
    fn zero_window_means_everything_arrives_up_front() {
        let config = TrafficConfig::small(4).with_arrival_window(0);
        let generator = TrafficGenerator::new(config, 11);
        let trace = generator.generate();
        assert!(trace.iter().all(|r| r.arrival_step == 0));
        assert_eq!(generator.arrivals_at(&trace, 0).len(), 4);
        assert!(generator.arrivals_at(&trace, 1).is_empty());
    }

    #[test]
    fn shared_prefix_groups_share_their_preamble_word_for_word() {
        let config = TrafficConfig::small(9).with_shared_prefix(3, 24);
        let generator = TrafficGenerator::new(config, 17);
        let trace = generator.generate();
        for request in &trace {
            let group = request.prefix_group.expect("prefix mode is on");
            assert_eq!(group, request.index % 3);
            let preamble = generator.group_preamble(group);
            assert_eq!(preamble.split_whitespace().count(), 24);
            assert!(
                request.task.context.starts_with(&preamble),
                "request {} does not open with its group preamble",
                request.index
            );
        }
        // Distinct groups have distinct preambles.
        assert_ne!(generator.group_preamble(0), generator.group_preamble(1));
        assert_ne!(generator.group_preamble(1), generator.group_preamble(2));
        // Even a one-word preamble keeps the groups distinguishable.
        let one_word = TrafficGenerator::new(TrafficConfig::small(2).with_shared_prefix(2, 1), 17);
        assert_ne!(one_word.group_preamble(0), one_word.group_preamble(1));
    }

    #[test]
    fn shared_prefix_requests_stay_stable_under_trace_growth() {
        let config = |n| TrafficConfig::small(n).with_shared_prefix(2, 16);
        let short = TrafficGenerator::new(config(4), 23).generate();
        let long = TrafficGenerator::new(config(10), 23).generate();
        for request in &short {
            let twin = long
                .iter()
                .find(|r| r.index == request.index)
                .expect("request present in longer trace");
            assert_eq!(
                request, twin,
                "shared-prefix request changed as the trace grew"
            );
        }
    }

    #[test]
    fn branching_prefix_shares_the_preamble_then_diverges_immediately() {
        let config = TrafficConfig::small(6).with_branching_prefix(2, 24, 8);
        let generator = TrafficGenerator::new(config, 19);
        let trace = generator.generate();
        for request in &trace {
            let group = request.prefix_group.expect("branching mode is on");
            let preamble = generator.group_preamble(group);
            let branch = generator
                .branch_segment(request.index, request.seed)
                .expect("branching mode is on");
            assert_eq!(branch.split_whitespace().count(), 8);
            assert!(
                branch.starts_with(&format!("fork{}", request.index)),
                "branch must open with the request-unique tag"
            );
            assert!(
                request
                    .task
                    .context
                    .starts_with(&format!("{preamble} . {branch} . ")),
                "request {} does not open with preamble + its own branch",
                request.index
            );
        }
        // Same group, different requests: identical preamble words, then a
        // divergent first post-preamble word.
        let (a, b) = (
            trace.iter().find(|r| r.index == 0).unwrap(),
            trace.iter().find(|r| r.index == 2).unwrap(),
        );
        assert_eq!(a.prefix_group, b.prefix_group);
        let preamble = generator.group_preamble(0);
        let tail = |r: &TrafficRequest| {
            r.task.context[preamble.len() + 3..]
                .split_whitespace()
                .next()
                .unwrap()
                .to_string()
        };
        assert_ne!(tail(a), tail(b), "branches must diverge at the first word");
    }

    #[test]
    fn branching_prefix_requests_stay_stable_under_trace_growth() {
        let config = |n| TrafficConfig::small(n).with_branching_prefix(2, 16, 6);
        let short = TrafficGenerator::new(config(4), 29).generate();
        let long = TrafficGenerator::new(config(9), 29).generate();
        for request in &short {
            let twin = long
                .iter()
                .find(|r| r.index == request.index)
                .expect("request present in longer trace");
            assert_eq!(request, twin, "branching request changed as the trace grew");
        }
    }

    #[test]
    fn disabled_branching_mode_adds_no_segment() {
        let generator = TrafficGenerator::new(TrafficConfig::small(3).with_shared_prefix(2, 12), 7);
        let trace = generator.generate();
        assert!(generator.branch_segment(0, trace[0].seed).is_none());
        for request in &trace {
            assert!(!request.task.context.contains("fork"));
        }
    }

    #[test]
    fn disabled_prefix_mode_leaves_contexts_untouched() {
        let plain = TrafficGenerator::new(TrafficConfig::small(3), 7).generate();
        assert!(plain.iter().all(|r| r.prefix_group.is_none()));
        let prefixed =
            TrafficGenerator::new(TrafficConfig::small(3).with_shared_prefix(1, 12), 7).generate();
        for (a, b) in plain.iter().zip(&prefixed) {
            assert!(b.task.context.ends_with(&a.task.context));
            assert_ne!(a.task.context, b.task.context);
        }
    }

    #[test]
    fn cancellations_are_deterministic_bounded_and_stable_under_growth() {
        let config = |n| {
            TrafficConfig::small(n)
                .with_max_new_tokens(12)
                .with_cancellations(500)
        };
        let trace = TrafficGenerator::new(config(20), 31).generate();
        let cancelled: Vec<&TrafficRequest> = trace
            .iter()
            .filter(|r| r.cancel_after_tokens.is_some())
            .collect();
        assert!(!cancelled.is_empty(), "500/1000 over 20 requests must hit");
        assert!(cancelled.len() < trace.len(), "and must not hit everyone");
        for request in &cancelled {
            let after = request.cancel_after_tokens.unwrap();
            assert!(
                (1..request.max_new_tokens).contains(&after),
                "cancel point {after} outside 1..{}",
                request.max_new_tokens
            );
        }
        // Same seed, longer trace: request identity (incl. cancel draw)
        // is unchanged.
        let long = TrafficGenerator::new(config(30), 31).generate();
        for request in &trace {
            let twin = long.iter().find(|r| r.index == request.index).unwrap();
            assert_eq!(request.cancel_after_tokens, twin.cancel_after_tokens);
        }
        // Disabled by default.
        let plain = TrafficGenerator::new(TrafficConfig::small(5), 31).generate();
        assert!(plain.iter().all(|r| r.cancel_after_tokens.is_none()));
    }

    #[test]
    fn tenant_skew_concentrates_traffic_on_the_hot_tenant() {
        let config = TrafficConfig::small(60)
            .with_branching_prefix(4, 16, 6)
            .with_tenant_skew(1200);
        let generator = TrafficGenerator::new(config, 41);
        let trace = generator.generate();
        let mut counts = [0usize; 4];
        for request in &trace {
            let group = request.prefix_group.expect("prefix mode is on");
            counts[group] += 1;
            // The context still opens with the drawn group's preamble.
            assert!(request
                .task
                .context
                .starts_with(&generator.group_preamble(group)));
        }
        // Group 0 is the hot tenant: it must dominate every other group
        // strictly, and every group still appears.
        for (group, &count) in counts.iter().enumerate().skip(1) {
            assert!(
                counts[0] > count,
                "hot tenant {} not dominant over group {group} ({count})",
                counts[0]
            );
            assert!(count > 0, "group {group} never appears");
        }
        assert!(
            counts[0] * 3 > trace.len(),
            "hot tenant holds under a third of the traffic: {counts:?}"
        );
    }

    #[test]
    fn tenant_skew_is_deterministic_and_stable_under_trace_growth() {
        let config = |n| {
            TrafficConfig::small(n)
                .with_branching_prefix(3, 12, 4)
                .with_tenant_skew(900)
        };
        let short = TrafficGenerator::new(config(6), 43).generate();
        let again = TrafficGenerator::new(config(6), 43).generate();
        let long = TrafficGenerator::new(config(18), 43).generate();
        assert_eq!(short, again);
        for request in &short {
            let twin = long
                .iter()
                .find(|r| r.index == request.index)
                .expect("request present in longer trace");
            assert_eq!(request, twin, "skewed request changed as the trace grew");
        }
        // Different seeds draw different group sequences.
        let other = TrafficGenerator::new(config(18), 44).generate();
        assert!(short.iter().any(|r| other
            .iter()
            .any(|o| o.index == r.index && o.prefix_group != r.prefix_group)));
    }

    #[test]
    fn zero_tenant_skew_restores_the_uniform_group_cycle() {
        let skewless = TrafficGenerator::new(
            TrafficConfig::small(8)
                .with_shared_prefix(3, 8)
                .with_tenant_skew(0),
            13,
        )
        .generate();
        let plain =
            TrafficGenerator::new(TrafficConfig::small(8).with_shared_prefix(3, 8), 13).generate();
        assert_eq!(skewless, plain);
        for request in &plain {
            assert_eq!(request.prefix_group, Some(request.index % 3));
        }
    }

    #[test]
    fn stop_strings_cycle_across_requests() {
        let stops = vec!["alpha".to_string(), "beta".to_string()];
        let config = TrafficConfig::small(5).with_stop_strings(stops.clone());
        let trace = TrafficGenerator::new(config, 7).generate();
        for request in &trace {
            assert_eq!(
                request.stop_string.as_deref(),
                Some(stops[request.index % 2].as_str())
            );
        }
        let plain = TrafficGenerator::new(TrafficConfig::small(3), 7).generate();
        assert!(plain.iter().all(|r| r.stop_string.is_none()));
    }

    #[test]
    fn restart_point_marks_exactly_one_request_in_arrival_order() {
        let config = TrafficConfig::small(6).with_restart_point(3);
        let trace = TrafficGenerator::new(config, 9).generate();
        let marked: Vec<usize> = trace
            .iter()
            .enumerate()
            .filter(|(_, r)| r.restart_before)
            .map(|(position, _)| position)
            .collect();
        assert_eq!(marked, vec![3], "the marker is positional in arrival order");
        // Out-of-range restart points mark nothing.
        let short = TrafficGenerator::new(TrafficConfig::small(3).with_restart_point(10), 9);
        assert!(short.generate().iter().all(|r| !r.restart_before));
        // Disabled by default.
        let plain = TrafficGenerator::new(TrafficConfig::small(3), 9).generate();
        assert!(plain.iter().all(|r| !r.restart_before));
    }

    #[test]
    fn chat_turns_extend_the_prior_transcript_word_for_word() {
        let config = TrafficConfig::small(2).with_chat_turns(3, 8);
        let generator = TrafficGenerator::new(config, 37);
        let trace = generator.generate();
        assert_eq!(trace.len(), 2 * 3, "one request per (conversation, turn)");
        for request in &trace {
            let chat = request.chat.expect("chat mode is on");
            assert_eq!(request.index, chat.conversation * 3 + chat.turn);
            assert_eq!(request.arrival_step, chat.turn);
            // The query is this turn's user message; the context opens
            // with the conversation preamble.
            assert_eq!(
                request.task.query,
                generator.chat_user_message(chat.conversation, chat.turn)
            );
            assert!(request
                .task
                .context
                .starts_with(&generator.chat_preamble(chat.conversation)));
            // Turn t's context is a strict extension of turn t-1's.
            if chat.turn > 0 {
                let prior = generator.chat_transcript(chat.conversation, chat.turn - 1);
                assert!(
                    request.task.context.starts_with(&prior),
                    "turn {} does not extend turn {}'s transcript",
                    chat.turn,
                    chat.turn - 1
                );
                assert!(request.task.context.len() > prior.len());
                // The extension is exactly one turn increment.
                let spec = generator.config().chat.unwrap();
                let grown = request.task.context.split_whitespace().count()
                    - prior.split_whitespace().count();
                assert_eq!(grown, spec.turn_increment_words());
            }
        }
        // Distinct conversations have distinct preambles.
        assert_ne!(generator.chat_preamble(0), generator.chat_preamble(1));
    }

    #[test]
    fn chat_preamble_dominates_the_transcript_from_the_second_turn() {
        let generator = TrafficGenerator::new(TrafficConfig::small(1).with_chat_turns(3, 8), 5);
        for turn in 1..3 {
            let prior = generator
                .chat_transcript(0, turn - 1)
                .split_whitespace()
                .count();
            let now = generator
                .chat_transcript(0, turn)
                .split_whitespace()
                .count();
            assert!(
                (prior as f64) / (now as f64) >= 0.9,
                "turn {turn}: reusable prior transcript {prior}/{now} below 90%"
            );
        }
    }

    #[test]
    fn chat_tool_loop_interleaves_fixed_tool_results() {
        let config = TrafficConfig::small(1).with_chat_tool_loop(3, 6);
        let generator = TrafficGenerator::new(config, 53);
        let trace = generator.generate();
        // Turn 1's transcript holds turn 0's user message, tool result,
        // and assistant reply, in that order.
        let second = trace.iter().find(|r| r.chat.unwrap().turn == 1).unwrap();
        let user = generator.chat_user_message(0, 0);
        let tool = generator.chat_tool_segment(0, 0).expect("tool loop is on");
        let reply = generator.chat_assistant_segment(0, 0);
        assert!(tool.starts_with("toolresult0"));
        let context = &second.task.context;
        let user_at = context.find(&user).expect("user message in transcript");
        let tool_at = context.find(&tool).expect("tool result in transcript");
        let reply_at = context.find(&reply).expect("assistant reply in transcript");
        assert!(user_at < tool_at && tool_at < reply_at);
        // The plain chat mode has no tool segments.
        let plain = TrafficGenerator::new(TrafficConfig::small(1).with_chat_turns(2, 6), 53);
        assert!(plain.chat_tool_segment(0, 0).is_none());
        assert!(!plain.chat_transcript(0, 1).contains("toolresult"));
    }

    #[test]
    fn chat_traces_are_deterministic_and_stable_under_conversation_growth() {
        let config = |n| TrafficConfig::small(n).with_chat_turns(3, 8);
        let short = TrafficGenerator::new(config(2), 61).generate();
        let again = TrafficGenerator::new(config(2), 61).generate();
        let long = TrafficGenerator::new(config(5), 61).generate();
        assert_eq!(short, again);
        for request in &short {
            let twin = long
                .iter()
                .find(|r| r.index == request.index)
                .expect("request present in longer trace");
            assert_eq!(request, twin, "chat request changed as the trace grew");
        }
        // Different seeds draw different transcripts.
        let other = TrafficGenerator::new(config(2), 62).generate();
        assert_ne!(short, other);
    }

    #[test]
    fn chat_mode_composes_with_cancellations_stops_and_restart_points() {
        let config = TrafficConfig::small(4)
            .with_chat_turns(2, 6)
            .with_max_new_tokens(10)
            .with_cancellations(500)
            .with_stop_strings(vec!["alpha".into()])
            .with_restart_point(3);
        let trace = TrafficGenerator::new(config, 71).generate();
        assert_eq!(trace.len(), 8);
        assert!(trace.iter().any(|r| r.cancel_after_tokens.is_some()));
        assert!(trace
            .iter()
            .all(|r| r.stop_string.as_deref() == Some("alpha")));
        let marked: Vec<usize> = trace
            .iter()
            .enumerate()
            .filter(|(_, r)| r.restart_before)
            .map(|(position, _)| position)
            .collect();
        assert_eq!(marked, vec![3]);
        for request in trace.iter().filter(|r| r.cancel_after_tokens.is_some()) {
            let after = request.cancel_after_tokens.unwrap();
            assert!((1..request.max_new_tokens).contains(&after));
        }
    }

    #[test]
    fn empty_kind_list_falls_back_to_qasper() {
        let mut config = TrafficConfig::small(2);
        config.kinds.clear();
        let trace = TrafficGenerator::new(config, 5).generate();
        assert!(trace.iter().all(|r| r.task.kind == TaskKind::Qasper));
    }
}
