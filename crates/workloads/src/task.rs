//! Task kinds, metrics and task instances.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The eight LongBench task families used in the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Single-document QA (Qasper).
    Qasper,
    /// Query-based meeting summarization (QMSum).
    QmSum,
    /// Multi-document news summarization (MultiNews).
    MultiNews,
    /// Few-shot question-type classification (TREC).
    Trec,
    /// Few-shot reading-comprehension QA (TriviaQA).
    TriviaQa,
    /// Few-shot dialogue summarization (SAMSum).
    SamSum,
    /// Long-context code completion (LCC).
    Lcc,
    /// Repository-level code completion (RepoBench-P).
    RepoBenchP,
}

impl TaskKind {
    /// All task kinds in the column order of the paper's Table II.
    pub const ALL: [TaskKind; 8] = [
        TaskKind::Qasper,
        TaskKind::QmSum,
        TaskKind::MultiNews,
        TaskKind::Trec,
        TaskKind::TriviaQa,
        TaskKind::SamSum,
        TaskKind::Lcc,
        TaskKind::RepoBenchP,
    ];

    /// Dataset name as printed in the paper.
    pub const fn name(self) -> &'static str {
        match self {
            TaskKind::Qasper => "Qasper",
            TaskKind::QmSum => "QMSum",
            TaskKind::MultiNews => "MultiNews",
            TaskKind::Trec => "TREC",
            TaskKind::TriviaQa => "TriviaQA",
            TaskKind::SamSum => "SAMSum",
            TaskKind::Lcc => "LCC",
            TaskKind::RepoBenchP => "RepoBench-P",
        }
    }

    /// The evaluation metric the paper uses for this dataset (Table I).
    pub const fn metric(self) -> Metric {
        match self {
            TaskKind::Qasper | TaskKind::TriviaQa => Metric::F1,
            TaskKind::QmSum | TaskKind::MultiNews | TaskKind::SamSum => Metric::Rouge,
            TaskKind::Trec => Metric::Classification,
            TaskKind::Lcc | TaskKind::RepoBenchP => Metric::EditSimilarity,
        }
    }

    /// Broad task family, as listed in Table I.
    pub const fn family(self) -> &'static str {
        match self {
            TaskKind::Qasper => "Single-Document QA",
            TaskKind::QmSum | TaskKind::MultiNews => "Summarization",
            TaskKind::Trec | TaskKind::TriviaQa | TaskKind::SamSum => "Few-shot Learning",
            TaskKind::Lcc | TaskKind::RepoBenchP => "Code Completion",
        }
    }
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The scoring functions used across the benchmark (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Token-level F1 between prediction and reference.
    F1,
    /// ROUGE score (this reproduction reports ROUGE-L F-measure).
    Rouge,
    /// Exact-match classification accuracy.
    Classification,
    /// Normalised edit similarity (for code completion).
    EditSimilarity,
}

impl Metric {
    /// Metric name as printed in experiment output.
    pub const fn name(self) -> &'static str {
        match self {
            Metric::F1 => "F1",
            Metric::Rouge => "ROUGE",
            Metric::Classification => "Accuracy",
            Metric::EditSimilarity => "EditSim",
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One needle of answer-bearing content planted in the context.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Needle {
    /// Word offset of the needle sentence within the context.
    pub word_offset: usize,
    /// The distinctive anchor word that precedes the answer span (the cue an
    /// induction head locks onto).
    pub anchor: String,
    /// The answer words that follow the anchor in the context.
    pub answer_words: Vec<String>,
}

/// One evaluation example: a long context, a query, the reference answer
/// and the ground-truth location of the answer-bearing content.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskInstance {
    /// The task family this instance belongs to.
    pub kind: TaskKind,
    /// The long context (the part of the prompt whose KV cache is chunked
    /// and quantized).
    pub context: String,
    /// The query appended after the context.
    pub query: String,
    /// The reference answer.
    pub reference: String,
    /// The planted needles (answer-bearing spans), in context order.
    pub needles: Vec<Needle>,
    /// The seed the instance was generated from.
    pub seed: u64,
}

impl TaskInstance {
    /// Number of words in the context.
    pub fn context_words(&self) -> usize {
        self.context.split_whitespace().count()
    }

    /// The chunk indices (for a given chunk size) that contain at least one
    /// needle word — the ground-truth "relevant chunks".
    pub fn relevant_chunks(&self, chunk_size: usize) -> Vec<usize> {
        assert!(chunk_size > 0, "chunk size must be nonzero");
        let mut chunks: Vec<usize> = self
            .needles
            .iter()
            .flat_map(|n| {
                let start = n.word_offset;
                let end = n.word_offset + n.answer_words.len() + 1;
                (start / chunk_size)..=(end.saturating_sub(1) / chunk_size)
            })
            .collect();
        chunks.sort_unstable();
        chunks.dedup();
        chunks
    }

    /// Scores a prediction against the reference with the task's metric,
    /// on the paper's 0–100 scale.
    pub fn score(&self, prediction: &str) -> f64 {
        let raw = match self.kind.metric() {
            Metric::F1 => crate::metrics::token_f1(prediction, &self.reference),
            Metric::Rouge => crate::metrics::rouge_l(prediction, &self.reference),
            Metric::Classification => {
                crate::metrics::classification_score(prediction, &self.reference)
            }
            Metric::EditSimilarity => crate::metrics::edit_similarity(prediction, &self.reference),
        };
        raw * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_tasks_in_table_order() {
        let names: Vec<&str> = TaskKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "Qasper",
                "QMSum",
                "MultiNews",
                "TREC",
                "TriviaQA",
                "SAMSum",
                "LCC",
                "RepoBench-P"
            ]
        );
    }

    #[test]
    fn metrics_match_table_one() {
        assert_eq!(TaskKind::Qasper.metric(), Metric::F1);
        assert_eq!(TaskKind::QmSum.metric(), Metric::Rouge);
        assert_eq!(TaskKind::Trec.metric(), Metric::Classification);
        assert_eq!(TaskKind::Lcc.metric(), Metric::EditSimilarity);
        assert_eq!(TaskKind::TriviaQa.metric(), Metric::F1);
    }

    #[test]
    fn families_match_table_one() {
        assert_eq!(TaskKind::Qasper.family(), "Single-Document QA");
        assert_eq!(TaskKind::MultiNews.family(), "Summarization");
        assert_eq!(TaskKind::SamSum.family(), "Few-shot Learning");
        assert_eq!(TaskKind::RepoBenchP.family(), "Code Completion");
    }

    #[test]
    fn relevant_chunks_cover_needles() {
        let instance = TaskInstance {
            kind: TaskKind::Qasper,
            context: "w ".repeat(100).trim().to_string(),
            query: "q".into(),
            reference: "a b".into(),
            needles: vec![Needle {
                word_offset: 40,
                anchor: "anchor".into(),
                answer_words: vec!["a".into(), "b".into()],
            }],
            seed: 0,
        };
        assert_eq!(instance.relevant_chunks(32), vec![1]);
        assert_eq!(instance.relevant_chunks(8), vec![5]);
    }

    #[test]
    fn score_uses_the_task_metric() {
        let instance = TaskInstance {
            kind: TaskKind::Trec,
            context: "c".into(),
            query: "q".into(),
            reference: "location".into(),
            needles: vec![],
            seed: 0,
        };
        assert_eq!(instance.score("location"), 100.0);
        assert_eq!(instance.score("number"), 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Metric::Rouge.to_string(), "ROUGE");
        assert_eq!(TaskKind::RepoBenchP.to_string(), "RepoBench-P");
    }
}
