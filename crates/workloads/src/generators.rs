//! Generators for the eight LongBench-style task families.

use crate::task::{Needle, TaskInstance, TaskKind};
use crate::text;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Size parameters of a generated workload.
///
/// # Example
///
/// ```
/// use cocktail_workloads::WorkloadConfig;
///
/// let cfg = WorkloadConfig::tiny();
/// assert!(cfg.context_words < WorkloadConfig::paper_scale().context_words);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Approximate number of words in the generated context.
    pub context_words: usize,
    /// Number of answer words per needle.
    pub answer_words: usize,
    /// Number of needles (answer-bearing spans) planted in the context.
    pub needles: usize,
}

impl WorkloadConfig {
    /// A very small configuration for unit tests and doc examples
    /// (~200-word context).
    pub fn tiny() -> Self {
        Self {
            context_words: 200,
            answer_words: 3,
            needles: 1,
        }
    }

    /// A small configuration suitable for fast accuracy sweeps
    /// (~640-word context).
    pub fn small() -> Self {
        Self {
            context_words: 640,
            answer_words: 4,
            needles: 2,
        }
    }

    /// The configuration used by the experiment harnesses: a ~2 000-word
    /// context, mirroring (at reduced scale) the long-context regime of the
    /// LongBench datasets.
    pub fn paper_scale() -> Self {
        Self {
            context_words: 2048,
            answer_words: 4,
            needles: 3,
        }
    }

    /// Returns a copy with a different context length.
    pub fn with_context_words(mut self, words: usize) -> Self {
        self.context_words = words;
        self
    }

    /// Returns a copy with a different needle count.
    pub fn with_needles(mut self, needles: usize) -> Self {
        self.needles = needles;
        self
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// Generates [`TaskInstance`]s for one task family.
///
/// # Example
///
/// ```
/// use cocktail_workloads::{TaskGenerator, TaskKind, WorkloadConfig};
///
/// let generator = TaskGenerator::new(TaskKind::Trec, WorkloadConfig::tiny());
/// let a = generator.generate(1);
/// let b = generator.generate(1);
/// assert_eq!(a, b); // fully deterministic per seed
/// assert_eq!(a.kind, TaskKind::Trec);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskGenerator {
    kind: TaskKind,
    config: WorkloadConfig,
}

impl TaskGenerator {
    /// Creates a generator for the given task family and size.
    pub fn new(kind: TaskKind, config: WorkloadConfig) -> Self {
        Self { kind, config }
    }

    /// Convenience constructor for the Qasper-like single-document QA task.
    pub fn qasper(config: WorkloadConfig) -> Self {
        Self::new(TaskKind::Qasper, config)
    }

    /// Convenience constructor for the QMSum-like summarization task.
    pub fn qmsum(config: WorkloadConfig) -> Self {
        Self::new(TaskKind::QmSum, config)
    }

    /// The task family this generator produces.
    pub fn kind(&self) -> TaskKind {
        self.kind
    }

    /// The size configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Generates one deterministic task instance.
    pub fn generate(&self, seed: u64) -> TaskInstance {
        let mut rng = text::text_rng(seed.wrapping_mul(31).wrapping_add(self.kind as u64));
        let needles = self.needle_count();
        // Draw one shared pool of answer words so the same distinctive word
        // never appears in two different needles of the same instance.
        let per_needle = self.config.answer_words.max(1);
        let shared_answers = text::draw_answer_words(&mut rng, needles * per_needle);
        let specs: Vec<NeedleSpec> = (0..needles)
            .map(|i| {
                self.needle_spec(
                    &mut rng,
                    i,
                    &shared_answers[i * per_needle..(i + 1) * per_needle],
                )
            })
            .collect();
        let (context, planted) = self.assemble_context(&mut rng, &specs);
        let query = self.build_query(&specs);
        let reference = self.build_reference(&specs);
        TaskInstance {
            kind: self.kind,
            context,
            query,
            reference,
            needles: planted,
            seed,
        }
    }

    /// Generates a batch of instances with consecutive seeds.
    pub fn generate_batch(&self, base_seed: u64, count: usize) -> Vec<TaskInstance> {
        (0..count)
            .map(|i| self.generate(base_seed.wrapping_add(i as u64)))
            .collect()
    }

    fn needle_count(&self) -> usize {
        match self.kind {
            // Summarization tasks spread their reference content over
            // several needles; classification and completion use one.
            TaskKind::QmSum | TaskKind::MultiNews => self.config.needles.max(2),
            TaskKind::SamSum => self.config.needles.max(2),
            TaskKind::Trec | TaskKind::Lcc | TaskKind::RepoBenchP => 1,
            _ => self.config.needles.max(1),
        }
    }

    fn needle_spec(&self, rng: &mut ChaCha8Rng, index: usize, answers: &[String]) -> NeedleSpec {
        let anchor = text::anchor_token(rng, index);
        let answer_words = match self.kind {
            TaskKind::Trec => {
                vec![text::pick(rng, text::TREC_LABELS).to_string()]
            }
            _ => answers.to_vec(),
        };
        NeedleSpec {
            anchor,
            answer_words,
        }
    }

    fn filler_line(&self, rng: &mut ChaCha8Rng, line_index: usize) -> String {
        match self.kind {
            TaskKind::QmSum => text::meeting_sentence(rng),
            TaskKind::MultiNews => text::news_sentence(rng),
            TaskKind::SamSum => text::dialogue_line(rng),
            TaskKind::Lcc | TaskKind::RepoBenchP => {
                if self.kind == TaskKind::RepoBenchP && line_index % 12 == 0 {
                    format!("// file src/module_{line_index}.rs")
                } else {
                    text::code_line(rng)
                }
            }
            TaskKind::Trec => {
                // Few-shot examples of the classification format.
                let label = text::pick(rng, text::TREC_LABELS);
                format!(
                    "example question {} about {} category : {label} .",
                    line_index,
                    text::pick(rng, text::FILLER_OBJECTS)
                )
            }
            _ => text::filler_sentence(rng),
        }
    }

    fn needle_line(&self, spec: &NeedleSpec) -> String {
        // The answer words follow the anchor immediately, so an
        // induction-style reader that locks onto the anchor copies exactly
        // the answer span.
        let answers = spec.answer_words.join(" ");
        match self.kind {
            TaskKind::Trec => format!(
                "classification item for the {} {} category .",
                spec.anchor, answers
            ),
            TaskKind::Lcc | TaskKind::RepoBenchP => {
                format!("let {} {} ;", spec.anchor, answers)
            }
            TaskKind::QmSum => format!(
                "decision recorded for {} {} approved .",
                spec.anchor, answers
            ),
            TaskKind::MultiNews => {
                format!("breaking update on {} {} confirmed .", spec.anchor, answers)
            }
            TaskKind::SamSum => format!("alice : remember the {} {} .", spec.anchor, answers),
            _ => format!("note that the {} {} .", spec.anchor, answers),
        }
    }

    fn assemble_context(
        &self,
        rng: &mut ChaCha8Rng,
        specs: &[NeedleSpec],
    ) -> (String, Vec<Needle>) {
        let target_words = self.config.context_words.max(40);
        // Target word offsets for the needles, spread across the context with
        // a little seed-dependent jitter and kept away from the very edges.
        let mut targets: Vec<usize> = (0..specs.len())
            .map(|i| {
                let base = target_words * (i + 1) / (specs.len() + 1);
                let jitter = rng.gen_range(0..target_words / 10 + 1);
                (base + jitter).min(target_words.saturating_sub(20))
            })
            .collect();
        targets.sort_unstable();

        let mut words: Vec<String> = Vec::with_capacity(target_words + 32);
        let mut planted: Vec<Needle> = Vec::new();
        let mut next_needle = 0usize;
        let mut line_index = 0usize;
        while words.len() < target_words || next_needle < specs.len() {
            if next_needle < specs.len() && words.len() >= targets[next_needle] {
                let spec = &specs[next_needle];
                let line = self.needle_line(spec);
                let line_words: Vec<String> =
                    line.split_whitespace().map(|w| w.to_string()).collect();
                let anchor_offset = words.len()
                    + line_words
                        .iter()
                        .position(|w| {
                            w.trim_end_matches(|c: char| !c.is_alphanumeric()) == spec.anchor
                        })
                        .unwrap_or(0);
                planted.push(Needle {
                    word_offset: anchor_offset,
                    anchor: spec.anchor.clone(),
                    answer_words: spec.answer_words.clone(),
                });
                words.extend(line_words);
                next_needle += 1;
            } else {
                let line = self.filler_line(rng, line_index);
                words.extend(line.split_whitespace().map(|w| w.to_string()));
                line_index += 1;
            }
        }
        (words.join(" "), planted)
    }

    fn build_query(&self, specs: &[NeedleSpec]) -> String {
        let anchors: Vec<&str> = specs.iter().map(|s| s.anchor.as_str()).collect();
        match self.kind {
            TaskKind::Qasper => format!(
                "based on the passage , what is the {} ?",
                anchors.join(" and the ")
            ),
            TaskKind::QmSum => format!(
                "summarize the decisions recorded for {} in the meeting .",
                anchors.join(" and ")
            ),
            TaskKind::MultiNews => format!(
                "write a short summary covering the updates on {} .",
                anchors.join(" and ")
            ),
            TaskKind::Trec => format!(
                "classify the target question about the {} into its category .",
                anchors.join(" and ")
            ),
            TaskKind::TriviaQa => {
                format!("trivia time : what is the {} ?", anchors.join(" and the "))
            }
            TaskKind::SamSum => format!(
                "summarize what alice said about the {} .",
                anchors.join(" and the ")
            ),
            TaskKind::Lcc => format!("complete the assignment to {} .", anchors.join(" and ")),
            TaskKind::RepoBenchP => format!(
                "complete the definition of {} from the repository .",
                anchors.join(" and ")
            ),
        }
    }

    fn build_reference(&self, specs: &[NeedleSpec]) -> String {
        specs
            .iter()
            .map(|s| s.answer_words.join(" "))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[derive(Debug, Clone)]
struct NeedleSpec {
    anchor: String,
    answer_words: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_retrieval::chunking;

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let generator = TaskGenerator::qasper(WorkloadConfig::tiny());
        assert_eq!(generator.generate(5), generator.generate(5));
        assert_ne!(generator.generate(5).context, generator.generate(6).context);
    }

    #[test]
    fn context_reaches_requested_length_for_all_tasks() {
        for kind in TaskKind::ALL {
            let generator = TaskGenerator::new(kind, WorkloadConfig::small());
            let task = generator.generate(3);
            assert!(
                task.context_words() >= 640,
                "{kind} context too short: {}",
                task.context_words()
            );
            assert!(!task.query.is_empty());
            assert!(!task.reference.is_empty());
        }
    }

    #[test]
    fn anchors_appear_once_in_context_and_once_in_query() {
        for kind in TaskKind::ALL {
            let task = TaskGenerator::new(kind, WorkloadConfig::small()).generate(11);
            for needle in &task.needles {
                let context_hits = task
                    .context
                    .split_whitespace()
                    .filter(|w| w.trim_end_matches(|c: char| !c.is_alphanumeric()) == needle.anchor)
                    .count();
                assert_eq!(
                    context_hits, 1,
                    "{kind}: anchor {} not unique",
                    needle.anchor
                );
                assert!(
                    task.query.contains(&needle.anchor),
                    "{kind}: query must mention the anchor"
                );
            }
        }
    }

    #[test]
    fn anchor_word_offset_points_at_the_anchor() {
        for kind in TaskKind::ALL {
            let task = TaskGenerator::new(kind, WorkloadConfig::small()).generate(13);
            let words: Vec<&str> = task.context.split_whitespace().collect();
            for needle in &task.needles {
                let word =
                    words[needle.word_offset].trim_end_matches(|c: char| !c.is_alphanumeric());
                assert_eq!(word, needle.anchor, "{kind}: wrong anchor offset");
            }
        }
    }

    #[test]
    fn answer_words_follow_the_anchor_in_the_context() {
        let task = TaskGenerator::qasper(WorkloadConfig::small()).generate(17);
        let words = chunking::split_words(&task.context);
        for needle in &task.needles {
            // Find the anchor in the normalised word sequence.
            let pos = words.iter().position(|w| *w == needle.anchor).unwrap();
            for (i, answer) in needle.answer_words.iter().enumerate() {
                // Allow for small connector words between anchor and answers
                // depending on the template ("is", ":" etc.).
                let window = &words[pos..(pos + 6 + needle.answer_words.len()).min(words.len())];
                assert!(
                    window.contains(answer),
                    "answer word {answer} (#{i}) not found near anchor {}",
                    needle.anchor
                );
            }
        }
    }

    #[test]
    fn relevant_chunks_are_a_small_fraction_of_the_context() {
        let task = TaskGenerator::qmsum(WorkloadConfig::paper_scale()).generate(19);
        let chunk_size = 32;
        let total_chunks = task.context_words() / chunk_size;
        let relevant = task.relevant_chunks(chunk_size);
        assert!(!relevant.is_empty());
        assert!(
            relevant.len() * 5 <= total_chunks,
            "only a few chunks should be relevant ({} of {total_chunks})",
            relevant.len()
        );
    }

    #[test]
    fn trec_reference_is_a_valid_label() {
        let task = TaskGenerator::new(TaskKind::Trec, WorkloadConfig::small()).generate(23);
        assert!(text::TREC_LABELS.contains(&task.reference.as_str()));
    }

    #[test]
    fn summarization_tasks_have_multiple_needles() {
        for kind in [TaskKind::QmSum, TaskKind::MultiNews, TaskKind::SamSum] {
            let task = TaskGenerator::new(kind, WorkloadConfig::small()).generate(29);
            assert!(
                task.needles.len() >= 2,
                "{kind} should plant several needles"
            );
        }
    }

    #[test]
    fn code_tasks_look_like_code() {
        let task = TaskGenerator::new(TaskKind::Lcc, WorkloadConfig::small()).generate(31);
        assert!(task.context.contains("let "));
        assert!(task.context.contains(";"));
        let repo = TaskGenerator::new(TaskKind::RepoBenchP, WorkloadConfig::small()).generate(31);
        assert!(repo.context.contains("// file src/"));
    }

    #[test]
    fn batch_generation_produces_distinct_instances() {
        let batch = TaskGenerator::qasper(WorkloadConfig::tiny()).generate_batch(100, 4);
        assert_eq!(batch.len(), 4);
        assert_ne!(batch[0].context, batch[3].context);
    }
}
