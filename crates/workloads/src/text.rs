//! Deterministic filler-text generation: word banks and sentence builders
//! used by the task generators.

use cocktail_tensor::rng::seeded_rng;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Subjects used in generic filler sentences.
pub const FILLER_SUBJECTS: &[&str] = &[
    "the committee",
    "the engineering team",
    "the quarterly report",
    "the field survey",
    "the maintenance crew",
    "the logistics group",
    "the research assistant",
    "the facility manager",
    "the external auditor",
    "the night shift",
];

/// Verbs used in generic filler sentences.
pub const FILLER_VERBS: &[&str] = &[
    "reviewed",
    "documented",
    "postponed",
    "inspected",
    "archived",
    "scheduled",
    "summarised",
    "monitored",
    "updated",
    "catalogued",
];

/// Objects used in generic filler sentences.
pub const FILLER_OBJECTS: &[&str] = &[
    "the inventory levels",
    "the ventilation system",
    "the staffing rotation",
    "the supply deliveries",
    "the safety checklist",
    "the training materials",
    "the budget forecast",
    "the equipment calibration",
    "the visitor records",
    "the incident backlog",
];

/// Trailing clauses for filler sentences.
pub const FILLER_TAILS: &[&str] = &[
    "without any unusual findings",
    "as part of the routine cycle",
    "ahead of the next review",
    "according to standard procedure",
    "with no outstanding issues",
    "before the end of the week",
    "in line with expectations",
    "for the third consecutive time",
];

/// Distinctive answer words. These never appear in filler text, so a
/// correct extraction is unambiguous and an incorrect one scores zero.
pub const ANSWER_WORDS: &[&str] = &[
    "crimson",
    "falcon",
    "zenith",
    "harbor",
    "willow",
    "ember",
    "quartz",
    "lagoon",
    "saffron",
    "onyx",
    "meridian",
    "juniper",
    "cobalt",
    "sparrow",
    "aurora",
    "basalt",
    "tundra",
    "velvet",
    "cascade",
    "marigold",
    "obsidian",
    "pelican",
    "sierra",
    "topaz",
    "verdant",
    "walnut",
    "yonder",
    "zephyr",
    "beacon",
    "cinder",
    "drift",
    "evergreen",
];

/// Anchor stems: combined with an index they form the unique cue word that
/// precedes an answer span (e.g. `"passphrase-3"`).
pub const ANCHOR_STEMS: &[&str] = &[
    "passphrase",
    "override",
    "directive",
    "clearance",
    "manifest",
    "protocol",
    "codeword",
    "waypoint",
    "ledger",
    "cipher",
];

/// TREC-style classification labels.
pub const TREC_LABELS: &[&str] = &[
    "location",
    "number",
    "person",
    "entity",
    "description",
    "abbreviation",
];

/// Identifier fragments for code-like filler.
pub const CODE_IDENTS: &[&str] = &[
    "batch", "buffer", "config", "cursor", "handle", "index", "offset", "payload", "queue",
    "record", "stream", "token", "worker", "cache", "frame",
];

/// Speaker names for dialogue filler.
pub const SPEAKERS: &[&str] = &["alice", "bob", "carol", "dave", "erin", "frank"];

/// Picks one item from a slice deterministically.
pub fn pick<'a>(rng: &mut ChaCha8Rng, items: &'a [&'a str]) -> &'a str {
    items[rng.gen_range(0..items.len())]
}

/// Generates one generic filler sentence (8–12 words).
pub fn filler_sentence(rng: &mut ChaCha8Rng) -> String {
    format!(
        "{} {} {} {} .",
        pick(rng, FILLER_SUBJECTS),
        pick(rng, FILLER_VERBS),
        pick(rng, FILLER_OBJECTS),
        pick(rng, FILLER_TAILS)
    )
}

/// Generates one meeting-transcript filler line.
pub fn meeting_sentence(rng: &mut ChaCha8Rng) -> String {
    format!(
        "{} : i think {} {} {} .",
        pick(rng, SPEAKERS),
        pick(rng, FILLER_SUBJECTS),
        pick(rng, FILLER_VERBS),
        pick(rng, FILLER_OBJECTS)
    )
}

/// Generates one news-style filler sentence.
pub fn news_sentence(rng: &mut ChaCha8Rng) -> String {
    format!(
        "officials said {} {} {} {} .",
        pick(rng, FILLER_SUBJECTS),
        pick(rng, FILLER_VERBS),
        pick(rng, FILLER_OBJECTS),
        pick(rng, FILLER_TAILS)
    )
}

/// Generates one code-like filler line.
pub fn code_line(rng: &mut ChaCha8Rng) -> String {
    let a = pick(rng, CODE_IDENTS);
    let b = pick(rng, CODE_IDENTS);
    let n: u32 = rng.gen_range(0..64);
    format!("let {a}_{n} = process_{b} ( {b}_input , {n} ) ;")
}

/// Generates one dialogue filler line.
pub fn dialogue_line(rng: &mut ChaCha8Rng) -> String {
    format!(
        "{} : did you see that {} {} ?",
        pick(rng, SPEAKERS),
        pick(rng, FILLER_SUBJECTS),
        pick(rng, FILLER_VERBS)
    )
}

/// Draws `count` distinct answer words deterministically.
pub fn draw_answer_words(rng: &mut ChaCha8Rng, count: usize) -> Vec<String> {
    let mut pool: Vec<&str> = ANSWER_WORDS.to_vec();
    let mut out = Vec::with_capacity(count);
    for _ in 0..count.min(pool.len()) {
        let idx = rng.gen_range(0..pool.len());
        out.push(pool.swap_remove(idx).to_string());
    }
    // If more words are requested than the bank holds, extend with numbered
    // variants so the words stay unique.
    while out.len() < count {
        let idx = out.len();
        out.push(format!(
            "{}-{}",
            ANSWER_WORDS[idx % ANSWER_WORDS.len()],
            idx
        ));
    }
    out
}

/// Builds the unique anchor token for needle `index` of a task instance.
pub fn anchor_token(rng: &mut ChaCha8Rng, index: usize) -> String {
    let stem = pick(rng, ANCHOR_STEMS);
    let tag: u32 = rng.gen_range(10..100);
    format!("{stem}-{tag}-{index}")
}

/// Convenience wrapper building a seeded RNG for text generation.
pub fn text_rng(seed: u64) -> ChaCha8Rng {
    seeded_rng(seed ^ 0x7e87_00d5_eed5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentences_are_deterministic_per_seed() {
        let a = filler_sentence(&mut text_rng(1));
        let b = filler_sentence(&mut text_rng(1));
        let c = filler_sentence(&mut text_rng(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn answer_words_are_distinct() {
        let words = draw_answer_words(&mut text_rng(3), 10);
        let mut unique = words.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 10);
    }

    #[test]
    fn answer_words_never_collide_with_filler() {
        let words = draw_answer_words(&mut text_rng(4), ANSWER_WORDS.len());
        let filler = format!(
            "{} {} {} {}",
            FILLER_SUBJECTS.join(" "),
            FILLER_VERBS.join(" "),
            FILLER_OBJECTS.join(" "),
            FILLER_TAILS.join(" ")
        );
        for w in &words {
            assert!(
                !filler.contains(w),
                "answer word {w} appears in filler text"
            );
        }
    }

    #[test]
    fn oversized_answer_request_is_padded_with_unique_words() {
        let words = draw_answer_words(&mut text_rng(5), ANSWER_WORDS.len() + 5);
        let mut unique = words.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), words.len());
    }

    #[test]
    fn anchors_embed_their_index() {
        let a = anchor_token(&mut text_rng(6), 0);
        let b = anchor_token(&mut text_rng(6), 1);
        assert!(a.ends_with("-0"));
        assert!(b.ends_with("-1"));
    }

    #[test]
    fn all_generators_emit_nonempty_sentences() {
        let mut rng = text_rng(7);
        assert!(!filler_sentence(&mut rng).is_empty());
        assert!(!meeting_sentence(&mut rng).is_empty());
        assert!(!news_sentence(&mut rng).is_empty());
        assert!(!code_line(&mut rng).is_empty());
        assert!(!dialogue_line(&mut rng).is_empty());
    }
}
