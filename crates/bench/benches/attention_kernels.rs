//! Criterion benchmarks of decode-phase attention over chunked KV caches:
//! per-chunk generic attention versus the block-wise grouped computation of
//! Algorithm 1, at each uniform precision and with the Cocktail mix,
//! reordered and interleaved.

use cocktail_core::attention::grouped_attend;
use cocktail_core::reorder::apply_plan;
use cocktail_core::{ChunkQuantSearch, CocktailConfig};
use cocktail_kvcache::{ChunkSegmentation, ChunkedLayerCache};
use cocktail_quant::{Bitwidth, QuantAxis};
use cocktail_tensor::rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const TOKENS: usize = 1024;
const DIM: usize = 64;
const CHUNK: usize = 32;

fn build_cache() -> ChunkedLayerCache {
    let k = rng::gaussian_matrix(TOKENS, DIM, 1.0, 11);
    let v = rng::gaussian_matrix(TOKENS, DIM, 1.0, 12);
    let seg = ChunkSegmentation::new(TOKENS, CHUNK).unwrap();
    ChunkedLayerCache::from_prefill(&k, &v, &seg).unwrap()
}

fn cocktail_scores() -> Vec<f32> {
    // A relevance pattern with a few high-scoring chunks, like Figure 1.
    (0..TOKENS / CHUNK)
        .map(|i| {
            if i % 11 == 3 {
                0.95
            } else {
                0.1 + (i % 7) as f32 * 0.05
            }
        })
        .collect()
}

fn bench_uniform_precisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_attention_uniform");
    let q = rng::gaussian_matrix(1, DIM, 1.0, 13);
    let scale = 1.0 / (DIM as f32).sqrt();
    for bw in [
        Bitwidth::Fp16,
        Bitwidth::Int8,
        Bitwidth::Int4,
        Bitwidth::Int2,
    ] {
        let mut cache = build_cache();
        if bw != Bitwidth::Fp16 {
            cache
                .quantize_all(bw, QuantAxis::PerToken, QuantAxis::PerToken, 32)
                .unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(bw), &cache, |b, cache| {
            b.iter(|| cache.attend(black_box(&q), scale).unwrap());
        });
    }
    group.finish();
}

fn bench_grouped_vs_generic(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_attention_cocktail_mix");
    let q = rng::gaussian_matrix(1, DIM, 1.0, 17);
    let scale = 1.0 / (DIM as f32).sqrt();
    let plan = ChunkQuantSearch::new(CocktailConfig::default())
        .plan_from_scores(&cocktail_scores())
        .unwrap();

    let mut reordered = build_cache();
    apply_plan(&mut reordered, &plan, 32, true).unwrap();
    let mut interleaved = build_cache();
    apply_plan(&mut interleaved, &plan, 32, false).unwrap();

    group.bench_function("grouped_blockwise_reordered", |b| {
        b.iter(|| grouped_attend(black_box(&reordered), black_box(&q), scale).unwrap());
    });
    group.bench_function("grouped_blockwise_interleaved", |b| {
        b.iter(|| grouped_attend(black_box(&interleaved), black_box(&q), scale).unwrap());
    });
    group.bench_function("per_chunk_generic", |b| {
        b.iter(|| interleaved.attend(black_box(&q), scale).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_uniform_precisions, bench_grouped_vs_generic);
criterion_main!(benches);
