//! Criterion benchmarks of the quantization kernels: quantize, dequantize,
//! fused FP×quantized GEMM versus dequantize-then-GEMM, and the group-size
//! sweep called out in DESIGN.md.

use cocktail_quant::{gemm, Bitwidth, QuantAxis, QuantConfig, QuantizedMatrix};
use cocktail_tensor::rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_quantize(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantize_kv_chunk");
    let m = rng::gaussian_matrix(32, 128, 1.0, 1);
    for bw in [Bitwidth::Int2, Bitwidth::Int4, Bitwidth::Int8] {
        let cfg = QuantConfig::new(bw, QuantAxis::PerToken, 32).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(bw), &cfg, |b, cfg| {
            b.iter(|| QuantizedMatrix::quantize(black_box(&m), cfg).unwrap());
        });
    }
    group.finish();
}

fn bench_dequantize(c: &mut Criterion) {
    let mut group = c.benchmark_group("dequantize_kv_chunk");
    let m = rng::gaussian_matrix(32, 128, 1.0, 2);
    for bw in [Bitwidth::Int2, Bitwidth::Int4, Bitwidth::Int8] {
        let cfg = QuantConfig::new(bw, QuantAxis::PerToken, 32).unwrap();
        let q = QuantizedMatrix::quantize(&m, &cfg).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(bw), &q, |b, q| {
            b.iter(|| black_box(q.dequantize()));
        });
    }
    group.finish();
}

fn bench_fused_vs_reference_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("fp_x_quant_gemm");
    let q_vec = rng::gaussian_matrix(1, 128, 1.0, 3);
    let k = rng::gaussian_matrix(512, 128, 1.0, 4);
    let cfg = QuantConfig::new(Bitwidth::Int4, QuantAxis::PerToken, 32).unwrap();
    let kq = QuantizedMatrix::quantize(&k, &cfg).unwrap();
    group.bench_function("fused", |b| {
        b.iter(|| gemm::fp_matmul_quant_transposed(black_box(&q_vec), black_box(&kq)).unwrap());
    });
    group.bench_function("dequantize_then_gemm", |b| {
        b.iter(|| {
            gemm::fp_matmul_quant_transposed_reference(black_box(&q_vec), black_box(&kq)).unwrap()
        });
    });
    group.finish();
}

fn bench_group_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("group_size_sweep_int4");
    let m = rng::gaussian_matrix(256, 128, 1.0, 5);
    for group_size in [16usize, 32, 64, 128] {
        let cfg = QuantConfig::new(Bitwidth::Int4, QuantAxis::PerToken, group_size).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(group_size), &cfg, |b, cfg| {
            b.iter(|| QuantizedMatrix::quantize(black_box(&m), cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_quantize,
    bench_dequantize,
    bench_fused_vs_reference_gemm,
    bench_group_size_sweep
);
criterion_main!(benches);
