//! Microbenchmarks of the data-parallel hot kernels against their scalar
//! forms, with three jobs rolled into one binary (it is the workload of
//! the CI `kernel-bench` job):
//!
//! 1. **Bit-identity enforcement.** Before anything is timed, every tiled
//!    kernel (`cocktail_quant::parallel::*_with_threads`) is checked
//!    byte-for-byte against its scalar fused form *and* the
//!    dequantize-then-dense `*_reference` form. A single differing bit
//!    aborts the binary.
//! 2. **Wall-clock sanity bands.** Timing on shared CI runners is too
//!    noisy to gate tightly, so the parallel path is only required to stay
//!    within a generous multiple of the scalar path (see
//!    [`MAX_PARALLEL_OVER_SCALAR`]). Real speedups are reported for humans
//!    in the criterion output; the band only catches pathological
//!    regressions (e.g. the threshold gate breaking and every decode-sized
//!    call paying fork overhead).
//! 3. **A deterministic record.** `results/kernels.json` gets the
//!    machine-independent facts — shapes, multiply-add counts, packed
//!    payload/parameter bytes, tile layouts at 2 and 4 threads, and
//!    bit-fingerprints of every kernel output. CI regenerates the record
//!    and diffs it against `results/baseline/kernels.json`, so any change
//!    to kernel semantics, tiling layout or quantized storage must ship
//!    with a refreshed baseline. Wall-clock numbers are deliberately kept
//!    out of the record: they would differ on every host.

use cocktail_bench::{write_record, ExperimentRecord};
use cocktail_quant::{gemm, parallel, Bitwidth, QuantAxis, QuantConfig, QuantizedMatrix};
use cocktail_tensor::{rng, Matrix};
use criterion::{black_box, Criterion};
use serde::Serialize;
use std::time::Instant;

/// Generous in-binary band: the parallel path must not be slower than this
/// multiple of the scalar path on the same host. Chosen so that a loaded
/// two-core CI runner still passes while a broken threshold gate (fork
/// overhead on every tiny call) or a quadratic stitch still fails.
const MAX_PARALLEL_OVER_SCALAR: f64 = 4.0;

/// Iterations per timing sample for the in-binary band check.
const BAND_ITERS: usize = 20;
/// Best-of samples for the in-binary band check.
const BAND_SAMPLES: usize = 5;

/// One benchmarked kernel shape in the deterministic record.
#[derive(Debug, Serialize)]
struct KernelRow {
    /// Kernel name (`quantize`, `dequantize`, `gemm_transposed`, `gemm_value`).
    kernel: String,
    /// Left/input operand shape, `rows x cols`.
    input_shape: String,
    /// Quantized operand shape, `rows x cols`.
    quant_shape: String,
    /// Integer bitwidth of the quantized operand.
    bitwidth: String,
    /// Quantization group size.
    group_size: usize,
    /// Work metric the dispatcher gates on (multiply-adds for the GEMMs,
    /// elements for quantize/dequantize).
    work: usize,
    /// Packed code bytes of the quantized operand.
    payload_bytes: usize,
    /// Scale/zero parameter bytes of the quantized operand.
    param_bytes: usize,
    /// Number of tiles the kernel splits into at 2 threads.
    tiles_at_2: usize,
    /// Number of tiles the kernel splits into at 4 threads.
    tiles_at_4: usize,
    /// Bit-fingerprint of the kernel output (identical for the scalar,
    /// tiled and reference paths — that identity is asserted before this
    /// row is written).
    fingerprint: i64,
}

/// Payload of `results/kernels.json`.
#[derive(Debug, Serialize)]
struct KernelRecord {
    /// The dispatcher's scalar/parallel cutover, in work units.
    parallel_threshold: usize,
    /// Per-kernel deterministic rows.
    kernels: Vec<KernelRow>,
}

/// Order-sensitive bit-fingerprint of a matrix: any single-bit difference
/// in any element, or any reordering, changes the digest.
fn fingerprint(m: &Matrix) -> i64 {
    m.as_slice()
        .iter()
        .fold(0u32, |acc, v| acc.rotate_left(1) ^ v.to_bits()) as i64
}

/// Best-of-samples mean nanoseconds per call of `f`.
fn time_ns<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..BAND_SAMPLES {
        let start = Instant::now();
        for _ in 0..BAND_ITERS {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / BAND_ITERS as f64);
    }
    best
}

/// Asserts the generous wall-clock band for one kernel.
fn enforce_band(name: &str, scalar_ns: f64, parallel_ns: f64) {
    println!(
        "band {name}: scalar {scalar_ns:.0} ns/call, parallel {parallel_ns:.0} ns/call \
         ({:.2}x)",
        scalar_ns / parallel_ns.max(1.0)
    );
    assert!(
        parallel_ns <= scalar_ns * MAX_PARALLEL_OVER_SCALAR,
        "{name}: parallel path took {parallel_ns:.0} ns/call vs scalar {scalar_ns:.0} ns/call — \
         over the {MAX_PARALLEL_OVER_SCALAR}x band"
    );
}

struct Fixtures {
    /// 512x128 activations for quantize/dequantize.
    chunk: Matrix,
    /// Its Int4 per-token group-32 config.
    chunk_cfg: QuantConfig,
    /// Quantized form of `chunk`.
    chunk_q: QuantizedMatrix,
    /// 8x128 queries for the score GEMM.
    queries: Matrix,
    /// 1024x128 quantized keys (transposed GEMM right operand).
    keys_q: QuantizedMatrix,
    /// 8x1024 attention weights for the value GEMM.
    probs: Matrix,
    /// 1024x128 quantized values.
    values_q: QuantizedMatrix,
}

fn fixtures() -> Fixtures {
    let chunk_cfg = QuantConfig::new(Bitwidth::Int4, QuantAxis::PerToken, 32)
        .expect("int4 per-token g32 is a valid config");
    let chunk = rng::gaussian_matrix(512, 128, 1.0, 11);
    let chunk_q = QuantizedMatrix::quantize(&chunk, &chunk_cfg).expect("quantize chunk");
    let keys = rng::gaussian_matrix(1024, 128, 1.0, 12);
    let keys_q = QuantizedMatrix::quantize(&keys, &chunk_cfg).expect("quantize keys");
    let values = rng::gaussian_matrix(1024, 128, 1.0, 13);
    let values_q = QuantizedMatrix::quantize(&values, &chunk_cfg).expect("quantize values");
    Fixtures {
        chunk,
        chunk_cfg,
        chunk_q,
        queries: rng::gaussian_matrix(8, 128, 1.0, 14),
        probs: rng::gaussian_matrix(8, 1024, 1.0, 15),
        values_q,
        keys_q,
    }
}

/// Asserts scalar == tiled == reference for every kernel, at 1, 2 and 4
/// threads, and returns the canonical outputs for fingerprinting.
fn assert_bit_identity(f: &Fixtures) -> (QuantizedMatrix, Matrix, Matrix, Matrix) {
    let scalar_q = QuantizedMatrix::quantize(&f.chunk, &f.chunk_cfg).expect("scalar quantize");
    let scalar_dq = scalar_q.dequantize();
    let scalar_scores =
        gemm::fp_matmul_quant_transposed(&f.queries, &f.keys_q).expect("scalar score gemm");
    let reference_scores = gemm::fp_matmul_quant_transposed_reference(&f.queries, &f.keys_q)
        .expect("reference score gemm");
    let scalar_av = gemm::fp_matmul_quant(&f.probs, &f.values_q).expect("scalar value gemm");
    let reference_av =
        gemm::fp_matmul_quant_reference(&f.probs, &f.values_q).expect("reference value gemm");
    assert_eq!(
        scalar_scores, reference_scores,
        "fused and reference score GEMMs diverged"
    );
    assert_eq!(
        scalar_av, reference_av,
        "fused and reference value GEMMs diverged"
    );
    for threads in [1usize, 2, 4] {
        let tiled_q = parallel::quantize_with_threads(&f.chunk, &f.chunk_cfg, threads)
            .expect("tiled quantize");
        assert_eq!(scalar_q, tiled_q, "quantize diverged at {threads} threads");
        let tiled_dq = parallel::dequantize_with_threads(&f.chunk_q, threads);
        assert_eq!(
            scalar_dq, tiled_dq,
            "dequantize diverged at {threads} threads"
        );
        let tiled_scores =
            parallel::fp_matmul_quant_transposed_with_threads(&f.queries, &f.keys_q, threads)
                .expect("tiled score gemm");
        assert_eq!(
            scalar_scores, tiled_scores,
            "score GEMM diverged at {threads} threads"
        );
        let tiled_av = parallel::fp_matmul_quant_with_threads(&f.probs, &f.values_q, threads)
            .expect("tiled value gemm");
        assert_eq!(
            scalar_av, tiled_av,
            "value GEMM diverged at {threads} threads"
        );
    }
    println!("bit-identity: scalar == tiled == reference for all four kernels at 1/2/4 threads");
    (scalar_q, scalar_dq, scalar_scores, scalar_av)
}

/// One timed closure (the operands are owned clones, so scalar and
/// parallel runs never contend on borrows).
type BenchFn = Box<dyn FnMut()>;

fn bands_and_display(c: &mut Criterion, f: &Fixtures) {
    let threads = parallel::kernel_threads();
    let mut group = c.benchmark_group("kernel_parallelism");

    let pairs: Vec<(&str, BenchFn, BenchFn)> = vec![
        (
            "quantize_512x128_int4",
            {
                let (m, cfg) = (f.chunk.clone(), f.chunk_cfg);
                Box::new(move || {
                    black_box(parallel::quantize_with_threads(&m, &cfg, 1).expect("quantize"));
                })
            },
            {
                let (m, cfg) = (f.chunk.clone(), f.chunk_cfg);
                Box::new(move || {
                    black_box(
                        parallel::quantize_with_threads(&m, &cfg, threads).expect("quantize"),
                    );
                })
            },
        ),
        (
            "dequantize_512x128_int4",
            {
                let q = f.chunk_q.clone();
                Box::new(move || {
                    black_box(parallel::dequantize_with_threads(&q, 1));
                })
            },
            {
                let q = f.chunk_q.clone();
                Box::new(move || {
                    black_box(parallel::dequantize_with_threads(&q, threads));
                })
            },
        ),
        (
            "gemm_transposed_8x128_1024x128_int4",
            {
                let (a, q) = (f.queries.clone(), f.keys_q.clone());
                Box::new(move || {
                    black_box(
                        parallel::fp_matmul_quant_transposed_with_threads(&a, &q, 1)
                            .expect("score gemm"),
                    );
                })
            },
            {
                let (a, q) = (f.queries.clone(), f.keys_q.clone());
                Box::new(move || {
                    black_box(
                        parallel::fp_matmul_quant_transposed_with_threads(&a, &q, threads)
                            .expect("score gemm"),
                    );
                })
            },
        ),
        (
            "gemm_value_8x1024_1024x128_int4",
            {
                let (a, q) = (f.probs.clone(), f.values_q.clone());
                Box::new(move || {
                    black_box(
                        parallel::fp_matmul_quant_with_threads(&a, &q, 1).expect("value gemm"),
                    );
                })
            },
            {
                let (a, q) = (f.probs.clone(), f.values_q.clone());
                Box::new(move || {
                    black_box(
                        parallel::fp_matmul_quant_with_threads(&a, &q, threads)
                            .expect("value gemm"),
                    );
                })
            },
        ),
    ];

    for (name, mut scalar, mut parallel_path) in pairs {
        let scalar_ns = time_ns(&mut scalar);
        let parallel_ns = time_ns(&mut parallel_path);
        enforce_band(name, scalar_ns, parallel_ns);
        group.bench_function(format!("{name}/scalar"), |b| b.iter(&mut scalar));
        group.bench_function(format!("{name}/parallel_t{threads}"), |b| {
            b.iter(&mut parallel_path)
        });
    }
    group.finish();
}

fn write_deterministic_record(f: &Fixtures, outputs: &(QuantizedMatrix, Matrix, Matrix, Matrix)) {
    let (quantized, dequantized, scores, av) = outputs;
    let row = |kernel: &str,
               input: &Matrix,
               q: &QuantizedMatrix,
               work: usize,
               tiled_n: usize,
               fp: i64| KernelRow {
        kernel: kernel.to_string(),
        input_shape: format!("{}x{}", input.rows(), input.cols()),
        quant_shape: format!("{}x{}", q.rows(), q.cols()),
        bitwidth: q.bitwidth().to_string(),
        group_size: q.config().group_size(),
        work,
        payload_bytes: q.payload_bytes(),
        param_bytes: q.param_bytes(),
        tiles_at_2: parallel::tile_ranges(tiled_n, 2).len(),
        tiles_at_4: parallel::tile_ranges(tiled_n, 4).len(),
        fingerprint: fp,
    };
    let kernels = vec![
        // quantize/dequantize tile over the chunk's rows.
        row(
            "quantize",
            &f.chunk,
            quantized,
            f.chunk.rows() * f.chunk.cols(),
            f.chunk.rows(),
            fingerprint(&quantized.dequantize()),
        ),
        row(
            "dequantize",
            &f.chunk,
            &f.chunk_q,
            f.chunk_q.rows() * f.chunk_q.cols(),
            f.chunk_q.rows(),
            fingerprint(dequantized),
        ),
        // The transposed GEMM tiles over the quantized operand's rows, the
        // value GEMM over its columns.
        row(
            "gemm_transposed",
            &f.queries,
            &f.keys_q,
            f.queries.rows() * f.keys_q.rows() * f.keys_q.cols(),
            f.keys_q.rows(),
            fingerprint(scores),
        ),
        row(
            "gemm_value",
            &f.probs,
            &f.values_q,
            f.probs.rows() * f.values_q.rows() * f.values_q.cols(),
            f.values_q.cols(),
            fingerprint(av),
        ),
    ];
    let path = write_record(&ExperimentRecord {
        id: "kernels".to_string(),
        title: "Hot-kernel shapes, tile layouts and output fingerprints".to_string(),
        note: format!(
            "Deterministic on every host: shapes, dispatcher work metrics, packed byte counts, \
             tile counts at 2/4 threads and output bit-fingerprints — no wall-clock numbers. \
             Wall-clock is enforced in-binary ({MAX_PARALLEL_OVER_SCALAR}x band) and displayed \
             by the criterion output. Threshold = {} work units; {} env var overrides the \
             thread count.",
            parallel::PARALLEL_THRESHOLD,
            parallel::KERNEL_THREADS_ENV
        ),
        rows: KernelRecord {
            parallel_threshold: parallel::PARALLEL_THRESHOLD,
            kernels,
        },
    });
    println!("wrote {}", path.display());
}

fn main() {
    let f = fixtures();
    let outputs = assert_bit_identity(&f);
    let mut criterion = Criterion::default();
    bands_and_display(&mut criterion, &f);
    write_deterministic_record(&f, &outputs);
}
