//! Criterion benchmarks of the end-to-end pipeline on the simulated model:
//! prefill, cache compression under each policy, and decode over the
//! compressed cache.

use cocktail_baselines::{AtomPolicy, CachePolicy, Fp16Policy, KvQuantPolicy, PolicyContext};
use cocktail_core::{CocktailConfig, CocktailPolicy};
use cocktail_model::{InferenceEngine, ModelProfile};
use cocktail_retrieval::chunking;
use cocktail_workloads::{TaskGenerator, TaskKind, WorkloadConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const CHUNK_SIZE: usize = 32;

fn setup() -> (InferenceEngine, Vec<u32>, Vec<String>, String) {
    let engine = InferenceEngine::new(ModelProfile::llama2_7b_sim()).unwrap();
    let task = TaskGenerator::new(TaskKind::QmSum, WorkloadConfig::small()).generate(5);
    let mut prompt = engine.tokenizer().encode(&task.context);
    prompt.extend(engine.tokenizer().encode(&task.query));
    let chunk_texts = chunking::chunk_words(&task.context, CHUNK_SIZE);
    (engine, prompt, chunk_texts, task.query)
}

fn bench_prefill(c: &mut Criterion) {
    let (engine, prompt, _, _) = setup();
    c.bench_function("prefill_sim_model", |b| {
        b.iter(|| engine.prefill(black_box(&prompt)).unwrap());
    });
}

fn bench_policy_application(c: &mut Criterion) {
    let (engine, prompt, chunk_texts, query) = setup();
    let prefill = engine.prefill(&prompt).unwrap();
    let ctx = PolicyContext::new(chunk_texts, query);
    let policies: Vec<(&str, Box<dyn CachePolicy>)> = vec![
        ("fp16", Box::new(Fp16Policy::new())),
        ("atom_int4", Box::new(AtomPolicy::default())),
        ("kvquant", Box::new(KvQuantPolicy::default())),
        (
            "cocktail",
            Box::new(CocktailPolicy::new(CocktailConfig::default()).unwrap()),
        ),
    ];
    let mut group = c.benchmark_group("cache_compression");
    for (name, policy) in &policies {
        group.bench_with_input(BenchmarkId::from_parameter(*name), policy, |b, policy| {
            b.iter_batched(
                || engine.build_cache(&prefill, CHUNK_SIZE).unwrap(),
                |mut cache| policy.apply(&mut cache, &ctx).unwrap(),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_decode_step(c: &mut Criterion) {
    let (engine, prompt, chunk_texts, query) = setup();
    let prefill = engine.prefill(&prompt).unwrap();
    let ctx = PolicyContext::new(chunk_texts, query);
    let mut group = c.benchmark_group("decode_step");
    let variants: Vec<(&str, Box<dyn CachePolicy>)> = vec![
        ("fp16_cache", Box::new(Fp16Policy::new())),
        ("atom_int4_cache", Box::new(AtomPolicy::default())),
        (
            "cocktail_cache",
            Box::new(CocktailPolicy::new(CocktailConfig::default()).unwrap()),
        ),
    ];
    for (name, policy) in &variants {
        let mut cache = engine.build_cache(&prefill, CHUNK_SIZE).unwrap();
        policy.apply(&mut cache, &ctx).unwrap();
        group.bench_function(*name, |b| {
            b.iter_batched(
                || cache.clone(),
                |mut cache| {
                    engine
                        .decode_step(black_box(7), prompt.len(), &mut cache)
                        .unwrap()
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_prefill,
    bench_policy_application,
    bench_decode_step
);
criterion_main!(benches);
