//! Criterion benchmarks of the quantization-search path: encoder scoring of
//! context chunks (chunk-level search), KVQuant's token-level outlier scan,
//! and the threshold/assignment step — the cost comparison behind the
//! paper's throughput discussion.

use cocktail_baselines::{CachePolicy, KvQuantPolicy, PolicyContext};
use cocktail_core::{ChunkQuantSearch, CocktailConfig};
use cocktail_kvcache::{ChunkSegmentation, ChunkedLayerCache};
use cocktail_retrieval::EncoderKind;
use cocktail_tensor::rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn synthetic_chunks(count: usize) -> Vec<String> {
    (0..count)
        .map(|i| {
            format!(
                "chunk {i} routine description of supplies logistics maintenance staffing \
                 rotation and inspection results for sector {i}"
            )
        })
        .collect()
}

fn bench_encoder_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunk_scoring_64_chunks");
    let chunks = synthetic_chunks(64);
    let query = "what were the inspection results for sector 17 ?";
    for kind in EncoderKind::ALL {
        let scorer = kind.build();
        group.bench_with_input(BenchmarkId::from_parameter(kind), &scorer, |b, scorer| {
            b.iter(|| scorer.score(black_box(query), black_box(&chunks)));
        });
    }
    group.finish();
}

fn bench_chunk_count_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("contriever_scaling");
    let query = "what were the inspection results for sector 3 ?";
    for count in [16usize, 64, 256] {
        let chunks = synthetic_chunks(count);
        let scorer = EncoderKind::Contriever.build();
        group.bench_with_input(BenchmarkId::from_parameter(count), &chunks, |b, chunks| {
            b.iter(|| scorer.score(black_box(query), black_box(chunks)));
        });
    }
    group.finish();
}

fn bench_plan_from_scores(c: &mut Criterion) {
    let search = ChunkQuantSearch::new(CocktailConfig::default());
    let scores: Vec<f32> = (0..256).map(|i| (i % 17) as f32 / 17.0).collect();
    c.bench_function("threshold_assignment_256_chunks", |b| {
        b.iter(|| search.plan_from_scores(black_box(&scores)).unwrap());
    });
}

fn bench_token_level_search(c: &mut Criterion) {
    // KVQuant's per-token outlier scan over a 1024-token single-head cache,
    // the cost Cocktail's chunk-level search avoids.
    let k = rng::gaussian_matrix(1024, 64, 1.0, 21);
    let v = rng::gaussian_matrix(1024, 64, 1.0, 22);
    let seg = ChunkSegmentation::new(1024, 32).unwrap();
    let cache = ChunkedLayerCache::from_prefill(&k, &v, &seg).unwrap();
    let policy = KvQuantPolicy::default();
    c.bench_function("kvquant_token_level_search_1024_tokens", |b| {
        b.iter_batched(
            || cache.clone(),
            |mut cache| {
                policy
                    .apply_layer(&mut cache, &PolicyContext::empty())
                    .unwrap()
            },
            criterion::BatchSize::LargeInput,
        );
    });
}

criterion_group!(
    benches,
    bench_encoder_scoring,
    bench_chunk_count_scaling,
    bench_plan_from_scores,
    bench_token_level_search
);
criterion_main!(benches);
