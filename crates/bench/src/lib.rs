//! Shared harness code for the experiment binaries.
//!
//! Every table and figure of the paper has a dedicated binary in
//! `src/bin/`; this library holds the pieces they share: the method suite,
//! the accuracy-evaluation loop, table formatting and machine-readable
//! result output (JSON files under `results/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod experiments;

use cocktail_baselines::{AtomPolicy, CachePolicy, Fp16Policy, KiviPolicy, KvQuantPolicy};
use cocktail_core::{CocktailConfig, CocktailPolicy};
use cocktail_hwsim::{KvCacheProfile, SearchKind};
use cocktail_model::ModelProfile;
use cocktail_workloads::eval::{EvalConfig, Evaluator};
use cocktail_workloads::{TaskGenerator, TaskKind, WorkloadConfig};
use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Number of task instances averaged per (method, dataset, model) cell in
/// the accuracy experiments. More instances tighten the estimates at the
/// cost of runtime.
pub const INSTANCES_PER_CELL: usize = 4;

/// The five methods compared throughout the paper, in table order.
pub fn method_names() -> Vec<&'static str> {
    vec!["FP16", "Atom", "KIVI", "KVQuant", "Cocktail"]
}

/// Builds the policy for one of the paper's methods with the given Cocktail
/// configuration (only Cocktail consumes the configuration).
///
/// # Panics
///
/// Panics if the method name is unknown or the configuration is invalid.
pub fn build_policy(method: &str, config: &CocktailConfig) -> Box<dyn CachePolicy> {
    match method {
        "FP16" => Box::new(Fp16Policy::new()),
        "Atom" => Box::new(AtomPolicy::default()),
        "KIVI" => Box::new(KiviPolicy::default()),
        "KVQuant" => Box::new(KvQuantPolicy::default()),
        "Cocktail" => Box::new(
            CocktailPolicy::new(config.clone()).expect("cocktail configuration must be valid"),
        ),
        other => panic!("unknown method {other}"),
    }
}

/// The hardware-model profile of one of the paper's methods (for the
/// analytic memory/latency/throughput experiments).
///
/// # Panics
///
/// Panics if the method name is unknown.
pub fn build_hw_profile(method: &str) -> KvCacheProfile {
    match method {
        "FP16" => KvCacheProfile::fp16(),
        "Atom" => KvCacheProfile::atom_int4(),
        "KIVI" => KvCacheProfile::kivi_int4(),
        "KVQuant" => KvCacheProfile::kvquant_default(),
        "Cocktail" => KvCacheProfile::cocktail_default(),
        "Cocktail w/o Module I" => KvCacheProfile::cocktail_without_search(),
        "Cocktail w/o Module II" => KvCacheProfile::cocktail_without_reorder(),
        other => panic!("unknown method {other}"),
    }
}

/// The four simulated model profiles of Table II, in paper order.
pub fn model_suite() -> Vec<ModelProfile> {
    ModelProfile::paper_suite()
}

/// Per-model embedding seed used by the accuracy harness, so the four
/// "models" of Table II correspond to four distinct extraction-model
/// instantiations (see EXPERIMENTS.md).
pub fn accuracy_evaluator_for(model: &ModelProfile, chunk_size: usize) -> Evaluator {
    let config = EvalConfig {
        embedding_seed: model.seed(),
        ..EvalConfig::new(chunk_size)
    };
    Evaluator::new(config)
}

/// Mean accuracy of one method on one dataset for one model profile.
///
/// # Panics
///
/// Panics if the evaluation fails (the harness treats that as a bug).
pub fn accuracy_cell(
    model: &ModelProfile,
    kind: TaskKind,
    method: &str,
    config: &CocktailConfig,
    instances: usize,
) -> f64 {
    let evaluator = accuracy_evaluator_for(model, config.chunk_size);
    let tasks = TaskGenerator::new(kind, WorkloadConfig::paper_scale())
        .generate_batch(model.seed() ^ 0x5eed, instances);
    let policy = build_policy(method, config);
    evaluator
        .mean_score(&tasks, policy.as_ref())
        .expect("accuracy evaluation must not fail")
}

/// The search kind the hardware model should charge for a method.
pub fn search_kind(method: &str) -> SearchKind {
    match method {
        "Cocktail" => SearchKind::ChunkLevel,
        "KVQuant" => SearchKind::TokenLevel,
        _ => SearchKind::None,
    }
}

/// One machine-readable experiment record written to `results/`.
#[derive(Debug, Serialize)]
pub struct ExperimentRecord<T: Serialize> {
    /// Experiment identifier (e.g. `"table2"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Free-form note about parameters and substitutions.
    pub note: String,
    /// The measured rows.
    pub rows: T,
}

/// Writes an experiment record as JSON under `results/<id>.json` (relative
/// to the workspace root) and returns the path.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_record<T: Serialize>(record: &ExperimentRecord<T>) -> PathBuf {
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join(format!("{}.json", record.id));
    let json = serde_json::to_string_pretty(record).expect("serialize experiment record");
    fs::write(&path, json).expect("write experiment record");
    path
}

/// The `results/` directory at the workspace root.
pub fn results_dir() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|root| root.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Renders a fixed-width text table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(header_line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{}", line.join("  "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_suite_builds_every_method() {
        let config = CocktailConfig::default();
        for name in method_names() {
            let policy = build_policy(name, &config);
            assert_eq!(policy.name(), name);
        }
    }

    #[test]
    fn hw_profiles_cover_ablation_variants() {
        for name in method_names() {
            assert_eq!(build_hw_profile(name).method, name);
        }
        assert!(!build_hw_profile("Cocktail w/o Module II").grouped_layout);
    }

    #[test]
    fn accuracy_cell_is_deterministic() {
        let model = ModelProfile::llama2_7b_sim();
        let config = CocktailConfig::default();
        let a = accuracy_cell(&model, TaskKind::Trec, "FP16", &config, 1);
        let b = accuracy_cell(&model, TaskKind::Trec, "FP16", &config, 1);
        assert_eq!(a, b);
        assert!((0.0..=100.0).contains(&a));
    }

    #[test]
    fn results_dir_is_under_workspace_root() {
        let dir = results_dir();
        assert!(dir.ends_with("results"));
    }

    #[test]
    fn search_kinds_match_methods() {
        assert_eq!(search_kind("Cocktail"), SearchKind::ChunkLevel);
        assert_eq!(search_kind("KVQuant"), SearchKind::TokenLevel);
        assert_eq!(search_kind("Atom"), SearchKind::None);
    }
}
