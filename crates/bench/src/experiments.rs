//! One function per table/figure of the paper.
//!
//! Each function runs the experiment, prints a human-readable table,
//! writes a machine-readable record under `results/` and returns the rows
//! so tests (and the `all_experiments` binary) can inspect them.

use crate::{
    accuracy_cell, build_hw_profile, method_names, model_suite, print_table, write_record,
    ExperimentRecord,
};
use cocktail_core::{
    CocktailConfig, CocktailOutcome, CocktailPipeline, PrefixCacheConfig, PrefixCacheStats,
    RequestId, RequestOutcome, SamplingParams, SchedulerConfig, ServeRequest, ServingEngine,
    ServingStats,
};
use cocktail_hwsim::{AcceleratorSpec, DeploymentModel, KvCacheProfile, RequestShape};
use cocktail_model::{InferenceEngine, ModelConfig, ModelProfile};
use cocktail_quant::parallel as kernel_parallel;
use cocktail_retrieval::{similarity_matrix, ContrieverSim, EncoderKind};
use cocktail_workloads::{
    TaskKind, TrafficConfig, TrafficGenerator, TrafficRequest, WorkloadConfig,
};
use serde::Serialize;
use std::time::Instant;

/// Output length used by the hardware experiments (the paper's setting).
pub const OUTPUT_LEN: usize = 128;
/// Batch size used for the TPOT comparison (Figure 5); the paper does not
/// state its batch size, so a moderately loaded decode step is assumed.
pub const TPOT_BATCH: usize = 16;

fn hw_context_len(model: &ModelProfile) -> usize {
    model.full().max_context - OUTPUT_LEN
}

fn deployment_for(model: &ModelProfile) -> DeploymentModel {
    DeploymentModel::new(
        AcceleratorSpec::a800(),
        model.full().clone(),
        RequestShape::new(hw_context_len(model), OUTPUT_LEN),
    )
}

// ---------------------------------------------------------------------------
// Figure 1 — similarity heatmap
// ---------------------------------------------------------------------------

/// One row of the Figure 1 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct HeatmapRow {
    /// Query index.
    pub query: usize,
    /// Similarity score of every chunk for this query.
    pub scores: Vec<f32>,
    /// Fraction of chunks scoring in the top 20 % of the query's range.
    pub highly_relevant_fraction: f64,
}

/// Figure 1: similarity heatmap between one long passage (89 chunks) and 10
/// queries; most chunks are irrelevant to any given query.
pub fn fig1_heatmap() -> Vec<HeatmapRow> {
    let chunk_count = 89;
    let queries = 10;
    let chunks: Vec<String> = (0..chunk_count)
        .map(|i| {
            format!(
                "section {i} of the chronicle describes settlement {i} its harvest records \
                 trade caravans seasonal festivals and the families living near landmark {i}"
            )
        })
        .collect();
    let query_texts: Vec<String> = (0..queries)
        .map(|q| {
            let target = q * 8 + 3;
            format!("what do the harvest records say about settlement {target} near landmark {target} ?")
        })
        .collect();
    let matrix = similarity_matrix(&query_texts, &chunks, &ContrieverSim::new());

    let mut rows = Vec::new();
    for q in 0..queries {
        let scores: Vec<f32> = matrix.row(q).to_vec();
        let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let min = scores.iter().cloned().fold(f32::INFINITY, f32::min);
        let threshold = min + 0.8 * (max - min);
        let highly = scores.iter().filter(|&&s| s >= threshold).count();
        rows.push(HeatmapRow {
            query: q,
            scores,
            highly_relevant_fraction: highly as f64 / chunk_count as f64,
        });
    }

    // ASCII rendering: one character per chunk, darker = more similar.
    println!("\n=== Figure 1: query x chunk similarity heatmap (89 chunks, 10 queries) ===");
    for row in &rows {
        let max = row.scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let min = row.scores.iter().cloned().fold(f32::INFINITY, f32::min);
        let line: String = row
            .scores
            .iter()
            .map(|&s| {
                let level = if max > min {
                    (s - min) / (max - min)
                } else {
                    0.0
                };
                match (level * 4.0) as u32 {
                    0 => ' ',
                    1 => '.',
                    2 => ':',
                    3 => '+',
                    _ => '#',
                }
            })
            .collect();
        println!(
            "query {:>2} |{line}| highly relevant: {:>4.1} % of chunks",
            row.query,
            row.highly_relevant_fraction * 100.0
        );
    }

    let record = ExperimentRecord {
        id: "fig1_heatmap".to_string(),
        title: "Figure 1: similarity heatmap between a long passage and 10 queries".to_string(),
        note: "89 synthetic passage chunks scored by the contriever-sim encoder".to_string(),
        rows: &rows,
    };
    let path = write_record(&record);
    println!("(written to {})", path.display());
    rows
}

// ---------------------------------------------------------------------------
// Table II — accuracy comparison
// ---------------------------------------------------------------------------

/// One (model, method) row of Table II.
#[derive(Debug, Clone, Serialize)]
pub struct AccuracyRow {
    /// Model name.
    pub model: String,
    /// Method name.
    pub method: String,
    /// Score per dataset, in the order of [`TaskKind::ALL`].
    pub scores: Vec<f64>,
    /// Average over the eight datasets.
    pub average: f64,
}

/// Table II: accuracy of FP16 / Atom / KIVI / KVQuant / Cocktail on the
/// eight task families for the four model profiles.
pub fn table2_accuracy(instances: usize) -> Vec<AccuracyRow> {
    let config = CocktailConfig::default();
    let mut rows = Vec::new();
    for model in model_suite() {
        for method in method_names() {
            let scores: Vec<f64> = TaskKind::ALL
                .iter()
                .map(|&kind| accuracy_cell(&model, kind, method, &config, instances))
                .collect();
            let average = scores.iter().sum::<f64>() / scores.len() as f64;
            rows.push(AccuracyRow {
                model: model.name().to_string(),
                method: method.to_string(),
                scores,
                average,
            });
        }
    }

    for model in model_suite() {
        let mut table_rows = Vec::new();
        for row in rows.iter().filter(|r| r.model == model.name()) {
            let mut cells = vec![row.method.clone()];
            cells.extend(row.scores.iter().map(|s| format!("{s:.2}")));
            cells.push(format!("{:.2}", row.average));
            table_rows.push(cells);
        }
        let mut headers = vec!["Method"];
        headers.extend(TaskKind::ALL.iter().map(|k| k.name()));
        headers.push("Average");
        print_table(
            &format!("Table II ({}): accuracy per dataset", model.name()),
            &headers,
            &table_rows,
        );
    }

    let record = ExperimentRecord {
        id: "table2_accuracy".to_string(),
        title: "Table II: accuracy comparison of KV cache quantization methods".to_string(),
        note: format!(
            "synthetic LongBench-style tasks, {instances} instances per cell, alpha=0.6 beta=0.1 chunk=32"
        ),
        rows: &rows,
    };
    let path = write_record(&record);
    println!("(written to {})", path.display());
    rows
}

// ---------------------------------------------------------------------------
// Table III — chunk size sweep
// ---------------------------------------------------------------------------

/// One chunk-size point of Table III.
#[derive(Debug, Clone, Serialize)]
pub struct ChunkSizeRow {
    /// Chunk size in tokens.
    pub chunk_size: usize,
    /// ROUGE score of Cocktail on the QMSum-like task.
    pub rouge: f64,
}

/// Table III: the impact of the chunk size on Cocktail's accuracy
/// (QMSum-like summarization, Llama2-7B profile).
pub fn table3_chunk_size(instances: usize) -> Vec<ChunkSizeRow> {
    let model = ModelProfile::llama2_7b_sim();
    let mut rows = Vec::new();
    for &chunk_size in &[8usize, 16, 32, 64, 128, 256] {
        let config = CocktailConfig::default()
            .with_chunk_size(chunk_size)
            .expect("chunk size is valid");
        let rouge = accuracy_cell(&model, TaskKind::QmSum, "Cocktail", &config, instances);
        rows.push(ChunkSizeRow { chunk_size, rouge });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.chunk_size.to_string(), format!("{:.2}", r.rouge)])
        .collect();
    print_table(
        "Table III: impact of chunk size on model performance (QMSum, Cocktail)",
        &["Chunk Size", "Rouge Score"],
        &table,
    );
    let record = ExperimentRecord {
        id: "table3_chunk_size".to_string(),
        title: "Table III: the impact of different chunk size on model performance".to_string(),
        note: format!("{instances} instances per point, Llama2-7B profile"),
        rows: &rows,
    };
    let path = write_record(&record);
    println!("(written to {})", path.display());
    rows
}

// ---------------------------------------------------------------------------
// Table IV — encoder comparison
// ---------------------------------------------------------------------------

/// One encoder row of Table IV.
#[derive(Debug, Clone, Serialize)]
pub struct EncoderRow {
    /// Encoder name (or "Baseline (FP16)").
    pub encoder: String,
    /// Scores on Qasper, SAMSum, TriviaQA and RepoBench-P.
    pub scores: Vec<f64>,
}

/// Table IV: Cocktail's accuracy with different context/query encoders on
/// four datasets, plus the FP16 baseline row.
pub fn table4_encoders(instances: usize) -> Vec<EncoderRow> {
    let model = ModelProfile::llama2_7b_sim();
    let datasets = [
        TaskKind::Qasper,
        TaskKind::SamSum,
        TaskKind::TriviaQa,
        TaskKind::RepoBenchP,
    ];
    let mut rows = Vec::new();

    let baseline: Vec<f64> = datasets
        .iter()
        .map(|&kind| accuracy_cell(&model, kind, "FP16", &CocktailConfig::default(), instances))
        .collect();
    rows.push(EncoderRow {
        encoder: "Baseline (FP16)".to_string(),
        scores: baseline,
    });

    for encoder in EncoderKind::ALL {
        let config = CocktailConfig::default().with_encoder(encoder);
        let scores: Vec<f64> = datasets
            .iter()
            .map(|&kind| accuracy_cell(&model, kind, "Cocktail", &config, instances))
            .collect();
        rows.push(EncoderRow {
            encoder: encoder.name().to_string(),
            scores,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.encoder.clone()];
            cells.extend(r.scores.iter().map(|s| format!("{s:.2}")));
            cells
        })
        .collect();
    print_table(
        "Table IV: Cocktail accuracy with different context/query encoders (Llama2-7B)",
        &["Method", "Qasper", "SAMSum", "TriviaQA", "RepoBench-P"],
        &table,
    );
    let record = ExperimentRecord {
        id: "table4_encoders".to_string(),
        title: "Table IV: performance comparison of different context and query encoders"
            .to_string(),
        note: format!("{instances} instances per cell"),
        rows: &rows,
    };
    let path = write_record(&record);
    println!("(written to {})", path.display());
    rows
}

// ---------------------------------------------------------------------------
// Table V — ablation study
// ---------------------------------------------------------------------------

/// One ablation row of Table V.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Variant name.
    pub variant: String,
    /// Accuracy (ROUGE on the QMSum-like task).
    pub accuracy: f64,
    /// Estimated GPU memory in GiB (Llama2-7B, batch 1).
    pub gpu_memory_gib: f64,
    /// Estimated TPOT in microseconds.
    pub tpot_us: f64,
}

/// Table V: the two-module ablation — accuracy from the extraction harness,
/// memory and TPOT from the hardware model.
pub fn table5_ablation(instances: usize) -> Vec<AblationRow> {
    let model = ModelProfile::llama2_7b_sim();
    let deployment = deployment_for(&model);
    let variants: Vec<(&str, &str, &str)> = vec![
        // (display, accuracy policy behaviour, hardware profile)
        ("Baseline (FP16)", "FP16", "FP16"),
        ("w/o Module I", "CocktailNoSearch", "Cocktail w/o Module I"),
        (
            "w/o Module II",
            "CocktailNoReorder",
            "Cocktail w/o Module II",
        ),
        ("Cocktail", "Cocktail", "Cocktail"),
    ];

    let mut rows = Vec::new();
    for (display, accuracy_variant, hw_variant) in variants {
        let config = match accuracy_variant {
            "CocktailNoSearch" => CocktailConfig::default().with_search(false),
            "CocktailNoReorder" => CocktailConfig::default().with_reorder(false),
            _ => CocktailConfig::default(),
        };
        let method = if accuracy_variant == "FP16" {
            "FP16"
        } else {
            "Cocktail"
        };
        let accuracy = accuracy_cell(&model, TaskKind::QmSum, method, &config, instances);
        let profile = build_hw_profile(hw_variant);
        let gpu_memory_gib = deployment.gpu_memory_gib(&profile, 1);
        let tpot_us = deployment.tpot(&profile, TPOT_BATCH).total_us();
        rows.push(AblationRow {
            variant: display.to_string(),
            accuracy,
            gpu_memory_gib,
            tpot_us,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                format!("{:.2}", r.accuracy),
                format!("{:.2}", r.gpu_memory_gib),
                format!("{:.0}", r.tpot_us),
            ]
        })
        .collect();
    print_table(
        "Table V: impact of chunk-level quantization search (I) and KV cache computation (II)",
        &["Method", "Score (QMSum)", "GPU Memory (GiB)", "TPOT (us)"],
        &table,
    );
    let record = ExperimentRecord {
        id: "table5_ablation".to_string(),
        title: "Table V: ablation of the two Cocktail modules".to_string(),
        note: format!(
            "accuracy from the extraction harness ({instances} instances), memory/TPOT from the A800 hardware model at batch {TPOT_BATCH}"
        ),
        rows: &rows,
    };
    let path = write_record(&record);
    println!("(written to {})", path.display());
    rows
}

// ---------------------------------------------------------------------------
// Figure 4 — GPU memory
// ---------------------------------------------------------------------------

/// One (model, method) memory point of Figure 4.
#[derive(Debug, Clone, Serialize)]
pub struct MemoryRow {
    /// Model name.
    pub model: String,
    /// Method name.
    pub method: String,
    /// Estimated GPU memory in GiB.
    pub gpu_memory_gib: f64,
}

/// Figure 4: GPU memory of the five methods on the four models (QMSum-like
/// request filling the model's context window, batch 1).
pub fn fig4_memory() -> Vec<MemoryRow> {
    let mut rows = Vec::new();
    for model in model_suite() {
        let deployment = deployment_for(&model);
        for method in method_names() {
            let profile = build_hw_profile(method);
            rows.push(MemoryRow {
                model: model.name().to_string(),
                method: method.to_string(),
                gpu_memory_gib: deployment.gpu_memory_gib(&profile, 1),
            });
        }
    }
    let table: Vec<Vec<String>> = model_suite()
        .iter()
        .map(|m| {
            let mut cells = vec![m.name().to_string()];
            for method in method_names() {
                let value = rows
                    .iter()
                    .find(|r| r.model == m.name() && r.method == method)
                    .map(|r| r.gpu_memory_gib)
                    .unwrap_or(f64::NAN);
                cells.push(format!("{value:.2}"));
            }
            cells
        })
        .collect();
    let mut headers = vec!["Model"];
    headers.extend(method_names());
    print_table(
        "Figure 4: GPU memory (GiB) of different models",
        &headers,
        &table,
    );
    let record = ExperimentRecord {
        id: "fig4_memory".to_string(),
        title: "Figure 4: GPU memory of different models".to_string(),
        note: format!("analytic A800 model, context = max_context - {OUTPUT_LEN}, batch 1"),
        rows: &rows,
    };
    let path = write_record(&record);
    println!("(written to {})", path.display());
    rows
}

// ---------------------------------------------------------------------------
// Figure 5 — TPOT
// ---------------------------------------------------------------------------

/// One (model, method) TPOT point of Figure 5.
#[derive(Debug, Clone, Serialize)]
pub struct TpotRow {
    /// Model name.
    pub model: String,
    /// Method name.
    pub method: String,
    /// Estimated time per output token in microseconds.
    pub tpot_us: f64,
}

/// Figure 5: time per output token of the five methods on the four models.
pub fn fig5_tpot() -> Vec<TpotRow> {
    let mut rows = Vec::new();
    for model in model_suite() {
        let deployment = deployment_for(&model);
        for method in method_names() {
            let profile = build_hw_profile(method);
            rows.push(TpotRow {
                model: model.name().to_string(),
                method: method.to_string(),
                tpot_us: deployment.tpot(&profile, TPOT_BATCH).total_us(),
            });
        }
    }
    let table: Vec<Vec<String>> = model_suite()
        .iter()
        .map(|m| {
            let mut cells = vec![m.name().to_string()];
            for method in method_names() {
                let value = rows
                    .iter()
                    .find(|r| r.model == m.name() && r.method == method)
                    .map(|r| r.tpot_us)
                    .unwrap_or(f64::NAN);
                cells.push(format!("{value:.0}"));
            }
            cells
        })
        .collect();
    let mut headers = vec!["Model"];
    headers.extend(method_names());
    print_table(
        &format!("Figure 5: time per output token (us) at batch {TPOT_BATCH}"),
        &headers,
        &table,
    );
    let record = ExperimentRecord {
        id: "fig5_tpot".to_string(),
        title: "Figure 5: time per output token (TPOT) of different models".to_string(),
        note: format!("analytic A800 model, batch {TPOT_BATCH}"),
        rows: &rows,
    };
    let path = write_record(&record);
    println!("(written to {})", path.display());
    rows
}

// ---------------------------------------------------------------------------
// Figure 6 — throughput versus batch size
// ---------------------------------------------------------------------------

/// One (method, batch) throughput point of Figure 6.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputRow {
    /// Method name.
    pub method: String,
    /// Batch size.
    pub batch: usize,
    /// Tokens per second, or `None` past the OOM point.
    pub tokens_per_s: Option<f64>,
}

/// Figure 6: throughput of the five methods as the batch size grows, with
/// OOM cutoffs (Llama2-7B profile).
pub fn fig6_throughput() -> Vec<ThroughputRow> {
    let model = ModelProfile::llama2_7b_sim();
    let deployment = deployment_for(&model);
    let batches: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64, 100, 150, 200, 250, 300, 350, 400];
    let mut rows = Vec::new();
    for method in method_names() {
        let profile = build_hw_profile(method);
        for point in deployment.throughput_sweep(&profile, &batches) {
            rows.push(ThroughputRow {
                method: method.to_string(),
                batch: point.batch,
                tokens_per_s: point.tokens_per_s,
            });
        }
    }
    let table: Vec<Vec<String>> = batches
        .iter()
        .map(|&b| {
            let mut cells = vec![b.to_string()];
            for method in method_names() {
                let value = rows
                    .iter()
                    .find(|r| r.method == method && r.batch == b)
                    .and_then(|r| r.tokens_per_s);
                cells.push(match value {
                    Some(v) => format!("{v:.0}"),
                    None => "OOM".to_string(),
                });
            }
            cells
        })
        .collect();
    let mut headers = vec!["Batch"];
    headers.extend(method_names());
    print_table(
        "Figure 6: throughput (tokens/s) versus batch size (Llama2-7B)",
        &headers,
        &table,
    );
    let record = ExperimentRecord {
        id: "fig6_throughput".to_string(),
        title: "Figure 6: throughput of different methods with different batch sizes".to_string(),
        note: "analytic A800 model; OOM entries correspond to the interrupted lines of the figure"
            .to_string(),
        rows: &rows,
    };
    let path = write_record(&record);
    println!("(written to {})", path.display());
    rows
}

// ---------------------------------------------------------------------------
// Figure 7 — α / β sensitivity
// ---------------------------------------------------------------------------

/// One (α, β) accuracy point of Figure 7.
#[derive(Debug, Clone, Serialize)]
pub struct AlphaBetaRow {
    /// The α value of this point.
    pub alpha: f32,
    /// The β value of this point.
    pub beta: f32,
    /// Accuracy (ROUGE on the QMSum-like task).
    pub score: f64,
}

/// Figure 7: the impact of α and β on accuracy (QMSum-like task,
/// Llama2-7B profile). Returns the α sweep (β = 0.1) followed by the β
/// sweep (α = 0.6).
pub fn fig7_alpha_beta(instances: usize) -> Vec<AlphaBetaRow> {
    let model = ModelProfile::llama2_7b_sim();
    let mut rows = Vec::new();
    for &alpha in &[0.1f32, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9] {
        let config = CocktailConfig::default()
            .with_alpha(alpha)
            .expect("valid alpha");
        let score = accuracy_cell(&model, TaskKind::QmSum, "Cocktail", &config, instances);
        rows.push(AlphaBetaRow {
            alpha,
            beta: config.beta,
            score,
        });
    }
    for &beta in &[0.0f32, 0.05, 0.1, 0.2, 0.3, 0.4] {
        let config = CocktailConfig::default()
            .with_beta(beta)
            .expect("valid beta");
        let score = accuracy_cell(&model, TaskKind::QmSum, "Cocktail", &config, instances);
        rows.push(AlphaBetaRow {
            alpha: config.alpha,
            beta,
            score,
        });
    }

    let alpha_rows: Vec<Vec<String>> = rows
        .iter()
        .take(7)
        .map(|r| vec![format!("{:.2}", r.alpha), format!("{:.2}", r.score)])
        .collect();
    print_table(
        "Figure 7a: accuracy versus alpha (beta = 0.1)",
        &["alpha", "Score"],
        &alpha_rows,
    );
    let beta_rows: Vec<Vec<String>> = rows
        .iter()
        .skip(7)
        .map(|r| vec![format!("{:.2}", r.beta), format!("{:.2}", r.score)])
        .collect();
    print_table(
        "Figure 7b: accuracy versus beta (alpha = 0.6)",
        &["beta", "Score"],
        &beta_rows,
    );
    let record = ExperimentRecord {
        id: "fig7_alpha_beta".to_string(),
        title: "Figure 7: the impact of alpha and beta on model performance".to_string(),
        note: format!("{instances} instances per point, QMSum-like task"),
        rows: &rows,
    };
    let path = write_record(&record);
    println!("(written to {})", path.display());
    rows
}

// ---------------------------------------------------------------------------
// Serving throughput — batched versus sequential serving
// ---------------------------------------------------------------------------

/// One batch-size point of the serving-throughput experiment.
#[derive(Debug, Clone, Serialize)]
pub struct ServingThroughputRow {
    /// Batch cap of the serving engine for this point.
    pub batch: usize,
    /// Number of requests served.
    pub requests: usize,
    /// Total tokens generated across the requests.
    pub generated_tokens: usize,
    /// Measured end-to-end tokens/s of the batched serving engine.
    pub batched_tokens_per_s: f64,
    /// Measured tokens/s of the same requests run sequentially through
    /// `CocktailPipeline::run` (identical for every row; repeated so each
    /// row is self-contained).
    pub sequential_tokens_per_s: f64,
    /// `batched_tokens_per_s / sequential_tokens_per_s`.
    pub measured_speedup: f64,
    /// The hwsim A800 prediction (Cocktail profile, Llama2-7B, 3968-token
    /// context) at this batch size, tokens/s.
    pub hwsim_tokens_per_s: Option<f64>,
    /// hwsim's predicted speedup of this batch size over batch 1.
    pub hwsim_speedup_vs_batch1: Option<f64>,
}

/// Full payload of the serving-throughput record: the sweep rows plus the
/// per-request serving statistics of the largest-batch run (timing
/// breakdowns per request, not just aggregates).
#[derive(Debug, Clone, Serialize)]
pub struct ServingThroughputReport {
    /// The batch sweep.
    pub rows: Vec<ServingThroughputRow>,
    /// Per-request stats (cache bytes, admission/finish steps, phase
    /// timings) from the run at the largest batch size.
    pub request_stats: Vec<ServingStats>,
}

/// Serving throughput with the default measurement settings: best-of-3
/// timing, record written to `results/serving_throughput.json`.
///
/// # Panics
///
/// Panics if serving fails or if a batched answer differs from its
/// sequential counterpart (the determinism guarantee).
pub fn serving_throughput() -> ServingThroughputReport {
    serving_throughput_with(3, true)
}

/// Serving throughput: the same mixed-family traffic served sequentially
/// (one `CocktailPipeline::run` per request) and through the batched
/// `ServingEngine` at growing batch caps. Batching amortizes the decode
/// phase's weight streaming — and, on multi-core hosts, runs the
/// per-request attention in parallel — so batched tokens/s meets or beats
/// sequential from batch 2 up: the measured counterpart of the hwsim
/// batch-throughput curve (Figure 6), whose prediction is recorded
/// alongside.
///
/// Each mode is timed `repetitions` times and the best (minimum) wall
/// time is kept, the standard defence against scheduler noise; an untimed
/// warm-up pass precedes the measurements.
///
/// # Panics
///
/// Panics if serving fails or if a batched answer differs from its
/// sequential counterpart (the determinism guarantee).
pub fn serving_throughput_with(repetitions: usize, write: bool) -> ServingThroughputReport {
    let repetitions = repetitions.max(1);
    let requests = 4usize;
    let batches = [1usize, 2, requests];
    let config = CocktailConfig::default()
        .with_chunk_size(16)
        .expect("chunk size is valid");
    // Short contexts with long generations: the decode phase (where
    // batching pays off) dominates the runtime, as in a serving steady
    // state.
    let traffic = TrafficGenerator::new(
        TrafficConfig {
            requests,
            arrival_window_steps: 0,
            max_new_tokens: 32,
            workload: WorkloadConfig::tiny().with_context_words(96),
            kinds: vec![TaskKind::Qasper, TaskKind::QmSum, TaskKind::TriviaQa],
            prefix_groups: 0,
            prefix_words: 0,
            branch_words: 0,
            tenant_skew_milli: 0,
            cancel_per_mille: 0,
            stop_strings: Vec::new(),
            restart_after_requests: None,
            chat: None,
        },
        0xC0C_7A11,
    )
    .generate();

    let profile = ModelProfile::llama2_7b_sim;
    let pipeline =
        CocktailPipeline::new(profile(), config.clone()).expect("pipeline config is valid");
    let run_sequential = || -> Vec<CocktailOutcome> {
        traffic
            .iter()
            .map(|r| {
                pipeline
                    .run(&r.task.context, &r.task.query, r.max_new_tokens)
                    .expect("sequential run succeeds")
            })
            .collect()
    };

    // Untimed warm-up (cold caches, lazy page faults), then the reference
    // outcomes and the best-of-N sequential timing.
    let sequential = run_sequential();
    let generated_tokens: usize = sequential.iter().map(|o| o.generated_tokens.len()).sum();
    let mut seq_elapsed = f64::INFINITY;
    for _ in 0..repetitions {
        let start = Instant::now();
        let outcomes = run_sequential();
        seq_elapsed = seq_elapsed.min(start.elapsed().as_secs_f64().max(1e-9));
        assert_eq!(outcomes.len(), sequential.len());
    }
    let sequential_tokens_per_s = generated_tokens as f64 / seq_elapsed;

    // hwsim prediction for the same batch sizes (A800, Llama2-7B profile).
    let deployment = DeploymentModel::new(
        AcceleratorSpec::a800(),
        profile().full().clone(),
        RequestShape::with_context(3968),
    );
    let cocktail_profile = KvCacheProfile::cocktail_default();
    let hwsim_batch1 = deployment.throughput(&cocktail_profile, 1).tokens_per_s;

    let mut rows = Vec::new();
    let mut request_stats = Vec::new();
    for batch in batches {
        let mut elapsed = f64::INFINITY;
        let mut last_outcomes = Vec::new();
        for _ in 0..repetitions {
            let mut engine = ServingEngine::new(profile(), config.clone())
                .expect("serving config is valid")
                .with_scheduler_config(SchedulerConfig::default().with_max_batch(batch));
            let start = Instant::now();
            for request in &traffic {
                engine.submit(ServeRequest::new(
                    request.task.context.clone(),
                    request.task.query.clone(),
                    request.max_new_tokens,
                ));
            }
            let outcomes = engine.run_until_idle().expect("batched serving succeeds");
            elapsed = elapsed.min(start.elapsed().as_secs_f64().max(1e-9));
            assert_eq!(outcomes.len(), sequential.len());
            for (outcome, seq) in outcomes.iter().zip(&sequential) {
                assert_eq!(
                    outcome.outcome.generated_tokens, seq.generated_tokens,
                    "batched serving must be byte-identical to sequential runs"
                );
            }
            last_outcomes = outcomes;
        }
        let hwsim_point = deployment.throughput(&cocktail_profile, batch).tokens_per_s;
        rows.push(ServingThroughputRow {
            batch,
            requests,
            generated_tokens,
            batched_tokens_per_s: generated_tokens as f64 / elapsed,
            sequential_tokens_per_s,
            measured_speedup: (generated_tokens as f64 / elapsed) / sequential_tokens_per_s,
            hwsim_tokens_per_s: hwsim_point,
            hwsim_speedup_vs_batch1: match (hwsim_point, hwsim_batch1) {
                (Some(p), Some(b)) if b > 0.0 => Some(p / b),
                _ => None,
            },
        });
        if batch == requests {
            request_stats = last_outcomes.into_iter().map(|o| o.stats).collect();
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.batch.to_string(),
                format!("{:.1}", r.batched_tokens_per_s),
                format!("{:.1}", r.sequential_tokens_per_s),
                format!("{:.2}x", r.measured_speedup),
                r.hwsim_speedup_vs_batch1
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "-".to_string()),
            ]
        })
        .collect();
    print_table(
        "Serving throughput: batched ServingEngine vs sequential pipeline (Llama2-7B sim)",
        &[
            "Batch",
            "Batched tok/s",
            "Sequential tok/s",
            "Speedup",
            "hwsim speedup",
        ],
        &table,
    );

    let report = ServingThroughputReport {
        rows,
        request_stats,
    };
    if write {
        let record = ExperimentRecord {
            id: "serving_throughput".to_string(),
            title: "Serving throughput: continuous batching vs sequential single-request runs"
                .to_string(),
            note: format!(
                "{requests} mixed-family requests (32 new tokens each) on the Llama2-7B sim \
                 profile, best of {repetitions} timed runs per mode; absolute tokens/s are \
                 CPU-simulation numbers, the hwsim columns give the analytic A800 prediction \
                 for the same batch sizes"
            ),
            rows: &report,
        };
        let path = write_record(&record);
        println!("(written to {})", path.display());
    }
    report
}

// ---------------------------------------------------------------------------
// TTFT with prefix reuse — shared-prefix traffic through the prefix cache
// ---------------------------------------------------------------------------

/// One request of the TTFT prefix-reuse experiment.
#[derive(Debug, Clone, Serialize)]
pub struct TtftPrefixReuseRow {
    /// Submission index of the request.
    pub request: usize,
    /// Shared-prefix group the request belongs to.
    pub group: usize,
    /// Whether the request prefilled its whole prompt from scratch.
    pub cold: bool,
    /// Context tokens of the request.
    pub context_tokens: usize,
    /// Prompt tokens served from the prefix cache instead of re-prefilled.
    pub prefix_reused_tokens: usize,
    /// Best-of-N prefill wall time in microseconds.
    pub prefill_us: u64,
    /// Best-of-N compression (search + cache rewrite) wall time.
    pub compress_us: u64,
    /// Time to first token: prefill plus compression.
    pub ttft_us: u64,
}

/// Full payload of the TTFT prefix-reuse record.
#[derive(Debug, Clone, Serialize)]
pub struct TtftPrefixReuseReport {
    /// Number of shared-prefix groups in the traffic.
    pub groups: usize,
    /// Requests per group (>= 2, so every group has a reuse opportunity).
    pub requests_per_group: usize,
    /// Per-request rows in submission order.
    pub rows: Vec<TtftPrefixReuseRow>,
    /// Mean TTFT of the cold (first-in-group) requests, microseconds.
    pub cold_mean_ttft_us: f64,
    /// Mean TTFT of the prefix-reusing requests, microseconds.
    pub warm_mean_ttft_us: f64,
    /// `warm_mean_ttft_us / cold_mean_ttft_us` (< 1 means reuse pays).
    pub warm_over_cold: f64,
    /// Prefix-cache counters at the end of the run.
    pub prefix_cache: PrefixCacheStats,
}

/// TTFT prefix-reuse with the default settings: best-of-3 timing, record
/// written to `results/ttft_prefix_reuse.json`.
///
/// # Panics
///
/// Panics if serving fails or a prefix-reusing answer differs from the
/// cold sequential reference (the bit-exactness guarantee).
pub fn ttft_prefix_reuse() -> TtftPrefixReuseReport {
    ttft_prefix_reuse_with(3, true)
}

/// Time-to-first-token under shared-prefix traffic: N groups of requests
/// share a long context preamble; the first request of each group prefills
/// it cold, every later one resumes from the prefix cache and only
/// prefills its own suffix — so its TTFT (prefill + compression) drops
/// while its answer stays byte-identical to a cold run (asserted against
/// sequential `CocktailPipeline` outcomes on every repetition).
///
/// Each request's TTFT is the minimum over `repetitions` full serving
/// runs, the usual defence against scheduler noise.
///
/// # Panics
///
/// Panics if serving fails or any answer diverges from the cold reference.
pub fn ttft_prefix_reuse_with(repetitions: usize, write: bool) -> TtftPrefixReuseReport {
    let repetitions = repetitions.max(1);
    let groups = 3usize;
    let requests_per_group = 3usize;
    let requests = groups * requests_per_group;
    let config = CocktailConfig::default()
        .with_chunk_size(16)
        .expect("chunk size is valid");
    // Long shared preambles with short per-request tails: the shared part
    // dominates prefill cost, as with a real system prompt or shared
    // document.
    let traffic = TrafficGenerator::new(
        TrafficConfig {
            requests,
            arrival_window_steps: 0,
            max_new_tokens: 4,
            workload: WorkloadConfig::tiny().with_context_words(48),
            kinds: vec![TaskKind::Qasper, TaskKind::QmSum, TaskKind::TriviaQa],
            prefix_groups: groups,
            prefix_words: 192,
            branch_words: 0,
            tenant_skew_milli: 0,
            cancel_per_mille: 0,
            stop_strings: Vec::new(),
            restart_after_requests: None,
            chat: None,
        },
        0x77F7_0001,
    )
    .generate();

    let profile = ModelProfile::llama2_7b_sim;
    let pipeline =
        CocktailPipeline::new(profile(), config.clone()).expect("pipeline config is valid");
    let reference: Vec<CocktailOutcome> = traffic
        .iter()
        .map(|r| {
            pipeline
                .run(&r.task.context, &r.task.query, r.max_new_tokens)
                .expect("cold sequential reference run succeeds")
        })
        .collect();

    let mut best: Vec<PipelineTimingsBest> = vec![PipelineTimingsBest::default(); requests];
    let mut last_stats: Vec<ServingStats> = Vec::new();
    let mut prefix_cache = PrefixCacheStats::default();
    for _ in 0..repetitions {
        let mut engine = ServingEngine::new(profile(), config.clone())
            .expect("serving config is valid")
            .with_prefix_cache(PrefixCacheConfig::default());
        for request in &traffic {
            engine.submit(ServeRequest::new(
                request.task.context.clone(),
                request.task.query.clone(),
                request.max_new_tokens,
            ));
        }
        let outcomes = engine
            .run_until_idle()
            .expect("prefix-cached serving succeeds");
        assert_eq!(outcomes.len(), reference.len());
        for (outcome, cold) in outcomes.iter().zip(&reference) {
            assert_eq!(
                outcome.outcome.generated_tokens, cold.generated_tokens,
                "prefix reuse must be byte-identical to a cold full prefill"
            );
            assert_eq!(outcome.outcome.answer, cold.answer);
        }
        for (slot, outcome) in best.iter_mut().zip(&outcomes) {
            let t = outcome.stats.timings;
            let ttft = t.prefill_us + t.compress_us;
            if ttft < slot.ttft_us {
                *slot = PipelineTimingsBest {
                    ttft_us: ttft,
                    prefill_us: t.prefill_us,
                    compress_us: t.compress_us,
                };
            }
        }
        prefix_cache = engine
            .prefix_cache_stats()
            .expect("the prefix cache is enabled");
        last_stats = outcomes.into_iter().map(|o| o.stats).collect();
    }

    let rows: Vec<TtftPrefixReuseRow> = traffic
        .iter()
        .enumerate()
        .map(|(i, request)| {
            let reused = last_stats[i].prefix_reused_tokens;
            TtftPrefixReuseRow {
                request: i,
                group: request.prefix_group.expect("shared-prefix mode is on"),
                cold: reused == 0,
                context_tokens: last_stats[i].context_tokens,
                prefix_reused_tokens: reused,
                prefill_us: best[i].prefill_us,
                compress_us: best[i].compress_us,
                ttft_us: best[i].ttft_us,
            }
        })
        .collect();
    let mean = |cold: bool| -> f64 {
        let picked: Vec<f64> = rows
            .iter()
            .filter(|r| r.cold == cold)
            .map(|r| r.ttft_us as f64)
            .collect();
        picked.iter().sum::<f64>() / picked.len().max(1) as f64
    };
    let cold_mean_ttft_us = mean(true);
    let warm_mean_ttft_us = mean(false);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.request.to_string(),
                r.group.to_string(),
                if r.cold { "cold" } else { "warm" }.to_string(),
                r.context_tokens.to_string(),
                r.prefix_reused_tokens.to_string(),
                r.prefill_us.to_string(),
                r.ttft_us.to_string(),
            ]
        })
        .collect();
    print_table(
        "TTFT with shared-prefix reuse (Llama2-7B sim, 3 groups x 3 requests)",
        &[
            "Req",
            "Group",
            "Mode",
            "Ctx toks",
            "Reused",
            "Prefill us",
            "TTFT us",
        ],
        &table,
    );
    println!(
        "cold mean TTFT {cold_mean_ttft_us:.0} us, warm mean TTFT {warm_mean_ttft_us:.0} us \
         ({:.2}x)",
        warm_mean_ttft_us / cold_mean_ttft_us
    );

    let report = TtftPrefixReuseReport {
        groups,
        requests_per_group,
        rows,
        cold_mean_ttft_us,
        warm_mean_ttft_us,
        warm_over_cold: warm_mean_ttft_us / cold_mean_ttft_us,
        prefix_cache,
    };
    if write {
        let record = ExperimentRecord {
            id: "ttft_prefix_reuse".to_string(),
            title: "TTFT under shared-prefix traffic: prefix-cache reuse vs cold prefill"
                .to_string(),
            note: format!(
                "{groups} groups x {requests_per_group} requests sharing a 192-word preamble on \
                 the Llama2-7B sim profile, best of {repetitions} serving runs; TTFT = prefill + \
                 compression; warm answers asserted byte-identical to cold sequential runs"
            ),
            rows: &report,
        };
        let path = write_record(&record);
        println!("(written to {})", path.display());
    }
    report
}

// ---------------------------------------------------------------------------
// Streaming latency — per-token streaming with client-side cancellations
// ---------------------------------------------------------------------------

/// One request of the streaming-latency experiment.
#[derive(Debug, Clone, Serialize)]
pub struct StreamingLatencyRow {
    /// Submission index of the request.
    pub request: usize,
    /// The request's generation budget.
    pub max_new_tokens: usize,
    /// Tokens actually streamed before completion or cancellation.
    pub generated_tokens: usize,
    /// Whether the client cancelled the request mid-decode.
    pub cancelled: bool,
    /// The client's disconnect point (streamed tokens), if any.
    pub cancel_after_tokens: Option<usize>,
    /// Engine step at which the first token was streamed.
    pub first_token_step: Option<usize>,
    /// Engine step at which the request left the engine.
    pub finished_step: Option<usize>,
    /// Best-of-N wall time from serve start to the first streamed token.
    pub first_token_us: u64,
    /// Best-of-N wall time from serve start to completion (or to the
    /// cancellation for a cancelled request).
    pub completion_us: u64,
}

/// Full payload of the streaming-latency record.
#[derive(Debug, Clone, Serialize)]
pub struct StreamingLatencyReport {
    /// Number of requests in the traffic.
    pub requests: usize,
    /// The KV budget the engine ran under, bytes.
    pub budget_bytes: usize,
    /// The highest KV usage observed at any step.
    pub max_kv_bytes_in_use: usize,
    /// Whether usage stayed within the budget at every step.
    pub budget_ok: bool,
    /// Per-request rows in submission order.
    pub rows: Vec<StreamingLatencyRow>,
    /// Mean first-token wall time across the requests, microseconds.
    pub mean_first_token_us: f64,
    /// Mean completion wall time across the requests, microseconds.
    pub mean_completion_us: f64,
}

/// Streaming latency with the default settings: best-of-3 timing, record
/// written to `results/streaming_latency.json`.
///
/// # Panics
///
/// Panics if serving fails, a survivor's streamed answer differs from its
/// solo sequential run, or a cancelled request's streamed prefix diverges.
pub fn streaming_latency() -> StreamingLatencyReport {
    streaming_latency_with(3, true)
}

/// Streaming latency under cancelling traffic: mixed-family requests are
/// served through [`ServingEngine::step_events`] with per-token streaming;
/// a deterministic subset of clients disconnects mid-decode, upon which the
/// driver calls [`ServingEngine::cancel`] — freeing the request's KV budget
/// immediately. Measured per request: wall time to the *first* streamed
/// token versus wall time to completion, the gap streaming exists to
/// exploit. Byte-identity is asserted throughout: every survivor's
/// concatenated pieces equal its own solo sequential pipeline run, and
/// every cancelled request's streamed text is a byte prefix of its solo
/// run.
///
/// Each request's latencies are minima over `repetitions` full serving
/// runs, the usual defence against scheduler noise.
///
/// # Panics
///
/// Panics on any serving failure or byte divergence (see above).
pub fn streaming_latency_with(repetitions: usize, write: bool) -> StreamingLatencyReport {
    let repetitions = repetitions.max(1);
    let requests = 6usize;
    let max_new_tokens = 24usize;
    let config = CocktailConfig::default()
        .with_chunk_size(16)
        .expect("chunk size is valid");
    let traffic = TrafficGenerator::new(
        TrafficConfig {
            requests,
            arrival_window_steps: 0,
            max_new_tokens,
            workload: WorkloadConfig::tiny().with_context_words(96),
            kinds: vec![TaskKind::Qasper, TaskKind::QmSum, TaskKind::TriviaQa],
            prefix_groups: 0,
            prefix_words: 0,
            branch_words: 0,
            tenant_skew_milli: 0,
            cancel_per_mille: 400,
            stop_strings: Vec::new(),
            restart_after_requests: None,
            chat: None,
        },
        0x573E_AA11,
    )
    .generate();
    assert!(
        traffic.iter().any(|r| r.cancel_after_tokens.is_some())
            && traffic.iter().any(|r| r.cancel_after_tokens.is_none()),
        "the trace must mix cancelled and surviving requests"
    );

    let profile = ModelProfile::llama2_7b_sim;
    let pipeline =
        CocktailPipeline::new(profile(), config.clone()).expect("pipeline config is valid");
    let solo: Vec<CocktailOutcome> = traffic
        .iter()
        .map(|r| {
            pipeline
                .run(&r.task.context, &r.task.query, r.max_new_tokens)
                .expect("solo sequential reference run succeeds")
        })
        .collect();

    // Budget for roughly three concurrent requests, so streaming runs under
    // real admission pressure and the invariant is exercised.
    let tail = (max_new_tokens - 1) * pipeline.engine().config().kv_bytes_per_token_fp16();
    let budget = solo
        .iter()
        .map(|o| o.cache_bytes + tail)
        .max()
        .expect("at least one request")
        * 3;

    let mut best_first = vec![u64::MAX; requests];
    let mut best_completion = vec![u64::MAX; requests];
    let mut last_stats: Vec<ServingStats> = Vec::new();
    let mut max_kv_bytes_in_use = 0usize;
    for _ in 0..repetitions {
        let mut engine = ServingEngine::new(profile(), config.clone())
            .expect("serving config is valid")
            .with_scheduler_config(SchedulerConfig::default().with_budget(budget));
        let ids: Vec<RequestId> = traffic
            .iter()
            .map(|r| {
                engine.submit(ServeRequest::new(
                    r.task.context.clone(),
                    r.task.query.clone(),
                    r.max_new_tokens,
                ))
            })
            .collect();
        let index_of = |id: RequestId| ids.iter().position(|&i| i == id).expect("known id");

        let start = Instant::now();
        let mut first_us = vec![None::<u64>; requests];
        let mut completion_us = vec![None::<u64>; requests];
        let mut streamed: Vec<String> = vec![String::new(); requests];
        let mut cancelled = vec![false; requests];
        while !engine.is_idle() {
            let events = engine.step_events().expect("streaming serving succeeds");
            let now_us = start.elapsed().as_micros() as u64;
            for event in &events {
                let i = index_of(event.id);
                streamed[i].push_str(&event.piece);
                if event.token.is_some() {
                    first_us[i].get_or_insert(now_us);
                }
                if event.finish.is_some() {
                    completion_us[i] = Some(now_us);
                }
            }
            // Client-side disconnects: cancel every request whose streamed
            // token count just reached its disconnect point.
            for (i, request) in traffic.iter().enumerate() {
                if let Some(after) = request.cancel_after_tokens {
                    let count = engine
                        .stats(ids[i])
                        .map_or(after, |stats| stats.generated_tokens);
                    if !cancelled[i] && count >= after {
                        assert!(
                            engine.cancel(ids[i]),
                            "disconnect point precedes completion"
                        );
                        cancelled[i] = true;
                        completion_us[i] = Some(start.elapsed().as_micros() as u64);
                    }
                }
            }
            max_kv_bytes_in_use = max_kv_bytes_in_use.max(engine.kv_bytes_in_use());
            assert!(
                engine.kv_bytes_in_use() <= budget,
                "KV budget invariant violated while streaming"
            );
        }

        let mut stats = Vec::with_capacity(requests);
        for (i, id) in ids.iter().enumerate() {
            if cancelled[i] {
                assert!(
                    solo[i].answer.starts_with(&streamed[i]),
                    "request {i}: cancelled stream diverged from its solo run"
                );
                stats.push(engine.take_cancelled(*id).expect("cancelled stats"));
            } else {
                let outcome = engine.take_outcome(*id).expect("survivor completed");
                assert_eq!(
                    streamed[i], outcome.outcome.answer,
                    "request {i}: streamed pieces diverged from the collected answer"
                );
                assert_eq!(
                    outcome.outcome.answer, solo[i].answer,
                    "request {i}: streamed serving diverged from its solo run"
                );
                stats.push(outcome.stats);
            }
            best_first[i] = best_first[i].min(first_us[i].expect("every request streams a token"));
            best_completion[i] =
                best_completion[i].min(completion_us[i].expect("every request terminates"));
        }
        last_stats = stats;
    }

    let rows: Vec<StreamingLatencyRow> = traffic
        .iter()
        .enumerate()
        .map(|(i, request)| StreamingLatencyRow {
            request: i,
            max_new_tokens: request.max_new_tokens,
            generated_tokens: last_stats[i].generated_tokens,
            cancelled: last_stats[i].cancelled,
            cancel_after_tokens: request.cancel_after_tokens,
            first_token_step: last_stats[i].first_token_step,
            finished_step: last_stats[i].finished_step,
            first_token_us: best_first[i],
            completion_us: best_completion[i],
        })
        .collect();
    let mean = |values: &dyn Fn(&StreamingLatencyRow) -> u64| -> f64 {
        rows.iter().map(|r| values(r) as f64).sum::<f64>() / rows.len().max(1) as f64
    };
    let mean_first_token_us = mean(&|r: &StreamingLatencyRow| r.first_token_us);
    let mean_completion_us = mean(&|r: &StreamingLatencyRow| r.completion_us);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.request.to_string(),
                if r.cancelled {
                    "cancelled"
                } else {
                    "completed"
                }
                .to_string(),
                format!("{}/{}", r.generated_tokens, r.max_new_tokens),
                r.first_token_step
                    .map_or("-".to_string(), |s| s.to_string()),
                r.first_token_us.to_string(),
                r.completion_us.to_string(),
            ]
        })
        .collect();
    print_table(
        "Streaming latency: first token vs completion under cancelling traffic (Llama2-7B sim)",
        &[
            "Req",
            "Outcome",
            "Tokens",
            "First step",
            "First tok us",
            "Complete us",
        ],
        &table,
    );
    println!(
        "mean first-token {mean_first_token_us:.0} us vs mean completion {mean_completion_us:.0} \
         us; peak KV {max_kv_bytes_in_use} of {budget} budget bytes"
    );

    let report = StreamingLatencyReport {
        requests,
        budget_bytes: budget,
        max_kv_bytes_in_use,
        budget_ok: max_kv_bytes_in_use <= budget,
        rows,
        mean_first_token_us,
        mean_completion_us,
    };
    if write {
        let record = ExperimentRecord {
            id: "streaming_latency".to_string(),
            title: "Streaming latency: per-token delivery and client cancellations under budget"
                .to_string(),
            note: format!(
                "{requests} mixed-family requests ({max_new_tokens} token budget each, 400/1000 \
                 client disconnect rate) on the Llama2-7B sim profile, best of {repetitions} \
                 serving runs; survivors asserted byte-identical to solo sequential runs, \
                 cancelled streams asserted to be byte prefixes of theirs"
            ),
            rows: &report,
        };
        let path = write_record(&record);
        println!("(written to {})", path.display());
    }
    report
}

// ---------------------------------------------------------------------------
// Prefix-trie dedup — branching traffic through the token-trie prefix cache
// ---------------------------------------------------------------------------

/// One request of the prefix-trie dedup experiment.
#[derive(Debug, Clone, Serialize)]
pub struct PrefixTrieDedupRow {
    /// Submission index of the request.
    pub request: usize,
    /// Shared-prefix group the request belongs to.
    pub group: usize,
    /// Whether the request prefilled its whole prompt from scratch.
    pub cold: bool,
    /// Context tokens of the request.
    pub context_tokens: usize,
    /// Prompt tokens served from the trie instead of re-prefilled.
    pub prefix_reused_tokens: usize,
}

/// Full payload of the prefix-trie dedup record.
#[derive(Debug, Clone, Serialize)]
pub struct PrefixTrieDedupReport {
    /// Number of shared-prefix groups in the branching traffic.
    pub groups: usize,
    /// Requests per group (>= 2, so every group has divergent branches).
    pub requests_per_group: usize,
    /// Words in each group's shared preamble.
    pub preamble_words: usize,
    /// Per-request rows (unlimited-budget dedup phase), submission order.
    pub rows: Vec<PrefixTrieDedupRow>,
    /// Resident trie bytes after the dedup phase (every context cached,
    /// nothing evicted): the sum over trie nodes, each branch's shared
    /// preamble counted once.
    pub trie_resident_bytes: usize,
    /// What a whole-sequence (LCP map) cache would hold for the same
    /// traffic: every distinct context's full FP32 rows, the shared
    /// preambles duplicated per branch.
    pub lcp_baseline_bytes: usize,
    /// `trie_resident_bytes / lcp_baseline_bytes` (< 1 means the trie
    /// deduplicates).
    pub dedup_ratio: f64,
    /// Trie counters after the dedup phase.
    pub dedup_stats: PrefixCacheStats,
    /// The KV budget of the pressure phase, bytes.
    pub pressure_budget_bytes: usize,
    /// The trie node cap of the pressure phase.
    pub pressure_node_cap: usize,
    /// Trie counters after the pressure phase; its `partial_evictions`
    /// show budget pressure trimming branches leaf-ward instead of
    /// dropping whole contexts.
    pub pressure_stats: PrefixCacheStats,
    /// Whether every trie-on answer (both phases) was byte-identical to
    /// the trie-off baseline (also asserted — the experiment panics on
    /// divergence).
    pub byte_identical: bool,
}

/// Prefix-trie dedup with the default settings: record written to
/// `results/prefix_trie_dedup.json`.
///
/// # Panics
///
/// Panics if serving fails or any trie-on answer differs from the trie-off
/// baseline (the bit-exactness guarantee).
pub fn prefix_trie_dedup() -> PrefixTrieDedupReport {
    prefix_trie_dedup_with(true)
}

/// Storage dedup of the token-trie prefix cache under branching traffic:
/// groups of requests share a long context preamble and then *diverge* —
/// each request inserts its own branch segment right after the preamble.
/// A whole-sequence prefix cache (the pre-trie LCP map) stores every
/// branch's full context, duplicating the preamble per branch; the trie
/// stores each shared run exactly once, so its resident bytes — what the
/// scheduler budget is charged — must be strictly lower.
///
/// Two phases run, both asserted byte-identical to a trie-off baseline:
///
/// 1. **Dedup** (unlimited budget): all branches are cached; resident trie
///    bytes are compared against the whole-sequence baseline computed from
///    the same requests' context lengths.
/// 2. **Pressure** (budget for ~2 requests, small node cap): admission and
///    insertion evict under pressure; the trie must exhibit *partial*
///    evictions — branch leaves trimmed while shared ancestors survive.
///
/// No wall-clock timing is involved; every number in the record is
/// deterministic.
///
/// # Panics
///
/// Panics if serving fails or any answer diverges from the baseline.
pub fn prefix_trie_dedup_with(write: bool) -> PrefixTrieDedupReport {
    let groups = 2usize;
    let requests_per_group = 3usize;
    let requests = groups * requests_per_group;
    let preamble_words = 96usize;
    let max_new_tokens = 4usize;
    let config = CocktailConfig::default()
        .with_chunk_size(16)
        .expect("chunk size is valid");
    // Long shared preambles, short divergent branches and tails: the
    // preamble dominates storage, so deduplication is the whole game.
    let traffic = TrafficGenerator::new(
        TrafficConfig {
            requests,
            arrival_window_steps: 0,
            max_new_tokens,
            workload: WorkloadConfig::tiny().with_context_words(32),
            kinds: vec![TaskKind::Qasper, TaskKind::QmSum, TaskKind::TriviaQa],
            prefix_groups: groups,
            prefix_words: preamble_words,
            branch_words: 12,
            tenant_skew_milli: 0,
            cancel_per_mille: 0,
            stop_strings: Vec::new(),
            restart_after_requests: None,
            chat: None,
        },
        0x7B1E_0005,
    )
    .generate();

    let profile = ModelProfile::llama2_7b_sim;
    let serve = |engine: &mut ServingEngine| -> Vec<cocktail_core::RequestOutcome> {
        for request in &traffic {
            engine.submit(ServeRequest::new(
                request.task.context.clone(),
                request.task.query.clone(),
                request.max_new_tokens,
            ));
        }
        engine.run_until_idle().expect("serving succeeds")
    };

    // Trie-off baseline: same traffic, no prefix cache.
    let mut baseline_engine =
        ServingEngine::new(profile(), config.clone()).expect("serving config is valid");
    let baseline = serve(&mut baseline_engine);

    let assert_identical = |outcomes: &[cocktail_core::RequestOutcome], phase: &str| {
        assert_eq!(outcomes.len(), baseline.len());
        for (on, off) in outcomes.iter().zip(&baseline) {
            assert_eq!(
                on.outcome.generated_tokens, off.outcome.generated_tokens,
                "{phase}: trie-on serving must be byte-identical to trie-off"
            );
            assert_eq!(on.outcome.answer, off.outcome.answer);
        }
    };

    // Phase 1 — dedup under an unlimited budget.
    let mut dedup_engine = ServingEngine::new(profile(), config.clone())
        .expect("serving config is valid")
        .with_prefix_cache(PrefixCacheConfig::default());
    let dedup_outcomes = serve(&mut dedup_engine);
    assert_identical(&dedup_outcomes, "dedup phase");
    let dedup_stats = dedup_engine
        .prefix_cache_stats()
        .expect("the prefix cache is enabled");

    // The whole-sequence baseline: every distinct context's full FP32 KV
    // rows (no context is a prefix of another under branching traffic, so
    // the LCP map would keep all of them).
    let fp32_bytes_per_token = 2 * dedup_engine.engine().config().kv_bytes_per_token_fp16();
    let lcp_baseline_bytes: usize = dedup_outcomes
        .iter()
        .map(|o| o.stats.context_tokens * fp32_bytes_per_token)
        .sum();
    let trie_resident_bytes = dedup_stats.resident_bytes;

    let rows: Vec<PrefixTrieDedupRow> = traffic
        .iter()
        .zip(&dedup_outcomes)
        .enumerate()
        .map(|(i, (request, outcome))| PrefixTrieDedupRow {
            request: i,
            group: request.prefix_group.expect("branching mode is on"),
            cold: outcome.stats.prefix_reused_tokens == 0,
            context_tokens: outcome.stats.context_tokens,
            prefix_reused_tokens: outcome.stats.prefix_reused_tokens,
        })
        .collect();

    // Phase 2 — partial eviction under budget pressure: a KV budget that
    // fits roughly two admitted requests plus two full contexts' worth of
    // FP32 shared blocks (out of six cached branches), plus a small trie
    // node cap — so insertion and admission both have to evict, and the
    // evictions have shared ancestors to preserve.
    let tail = (max_new_tokens - 1) * baseline_engine.engine().config().kv_bytes_per_token_fp16();
    let max_context_tokens = baseline
        .iter()
        .map(|o| o.stats.context_tokens)
        .max()
        .expect("at least one request");
    let pressure_budget_bytes = baseline
        .iter()
        .map(|o| o.outcome.cache_bytes + tail)
        .max()
        .expect("at least one request")
        * 2
        + 2 * max_context_tokens * fp32_bytes_per_token;
    let pressure_node_cap = 5usize;
    let mut pressure_engine = ServingEngine::new(profile(), config.clone())
        .expect("serving config is valid")
        .with_scheduler_config(SchedulerConfig::default().with_budget(pressure_budget_bytes))
        .with_prefix_cache(PrefixCacheConfig::default().with_max_entries(pressure_node_cap));
    let pressure_outcomes = serve(&mut pressure_engine);
    assert_identical(&pressure_outcomes, "pressure phase");
    let pressure_stats = pressure_engine
        .prefix_cache_stats()
        .expect("the prefix cache is enabled");

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.request.to_string(),
                r.group.to_string(),
                if r.cold { "cold" } else { "warm" }.to_string(),
                r.context_tokens.to_string(),
                r.prefix_reused_tokens.to_string(),
            ]
        })
        .collect();
    print_table(
        "Prefix-trie dedup: branching traffic (Llama2-7B sim, 2 groups x 3 branches)",
        &["Req", "Group", "Mode", "Ctx toks", "Reused"],
        &table,
    );
    println!(
        "trie resident bytes {trie_resident_bytes} vs whole-sequence baseline \
         {lcp_baseline_bytes} ({:.2}x); {} nodes, {} splits; pressure phase: {} evictions of \
         which {} partial",
        trie_resident_bytes as f64 / lcp_baseline_bytes as f64,
        dedup_stats.nodes,
        dedup_stats.node_splits,
        pressure_stats.evictions,
        pressure_stats.partial_evictions,
    );

    let report = PrefixTrieDedupReport {
        groups,
        requests_per_group,
        preamble_words,
        rows,
        trie_resident_bytes,
        lcp_baseline_bytes,
        dedup_ratio: trie_resident_bytes as f64 / lcp_baseline_bytes as f64,
        dedup_stats,
        pressure_budget_bytes,
        pressure_node_cap,
        pressure_stats,
        byte_identical: true, // divergence panics above
    };
    if write {
        let record = ExperimentRecord {
            id: "prefix_trie_dedup".to_string(),
            title: "Prefix-trie dedup: divergent branches share their preamble blocks once"
                .to_string(),
            note: format!(
                "{groups} groups x {requests_per_group} branching requests sharing a \
                 {preamble_words}-word preamble on the Llama2-7B sim profile; trie-on answers \
                 asserted byte-identical to trie-off serving in both phases; all numbers \
                 deterministic (no wall-clock timing)"
            ),
            rows: &report,
        };
        let path = write_record(&record);
        println!("(written to {})", path.display());
    }
    report
}

// ---------------------------------------------------------------------------
// Gateway saturation — the HTTP gateway versus the in-process engine
// ---------------------------------------------------------------------------

/// One streamed request of the gateway-saturation experiment.
#[derive(Debug, Clone, Serialize)]
pub struct GatewaySaturationRow {
    /// Submission index of the request.
    pub request: usize,
    /// The request's generation budget.
    pub max_new_tokens: usize,
    /// Token events the client received over SSE.
    pub streamed_tokens: usize,
    /// Whether the streamed bytes equal the in-process answer exactly.
    pub byte_identical: bool,
}

/// Full payload of the gateway-saturation record.
#[derive(Debug, Clone, Serialize)]
pub struct GatewaySaturationReport {
    /// Concurrent streaming clients in the saturation phase.
    pub requests: usize,
    /// Steady-state tokens/s of the in-process `step_events` loop.
    pub in_process_tokens_per_s: f64,
    /// Steady-state tokens/s observed by the gateway's HTTP clients.
    pub gateway_tokens_per_s: f64,
    /// `gateway_tokens_per_s / in_process_tokens_per_s`.
    pub relative_throughput: f64,
    /// Per-request saturation rows in submission order.
    pub rows: Vec<GatewaySaturationRow>,
    /// Requests in the disconnect-storm phase.
    pub storm_requests: usize,
    /// Requests the storm actually cancelled mid-stream.
    pub storm_cancelled: usize,
    /// Requests that completed despite the storm.
    pub storm_completed: usize,
    /// Whether every storm survivor stayed byte-identical to its solo
    /// sequential run.
    pub storm_survivors_byte_identical: bool,
    /// KV bytes still charged against the budget once the storm settled
    /// (includes resident prefix-cache blocks, which legitimately stay).
    pub kv_bytes_after_storm: usize,
    /// Bytes of those held by resident prefix-cache blocks.
    pub prefix_resident_after_storm: usize,
    /// `kv_bytes_after_storm - prefix_resident_after_storm`: bytes still
    /// held by requests themselves. Must be zero — this is the leak.
    pub leaked_kv_bytes: usize,
    /// Prefix-cache entries still pinned once the storm settled.
    pub pinned_entries_after_storm: usize,
}

/// Gateway saturation with the default settings: best-of-2 timing, record
/// written to `results/gateway_saturation.json`.
///
/// # Panics
///
/// Panics if the gateway fails to serve or a client hits an I/O error;
/// byte-identity and leak violations are *recorded*, not panicked, so the
/// enforcing binary can report exactly which request diverged.
pub fn gateway_saturation() -> GatewaySaturationReport {
    gateway_saturation_with(2, true)
}

/// The serving gateway under closed-loop load, measured against the same
/// engine driven in-process.
///
/// Phase 1 (saturation): branching-prefix traffic is served twice — once
/// by an in-process [`ServingEngine::step_events`] loop, once through the
/// HTTP gateway with one concurrent SSE-streaming client per request over
/// real localhost sockets. Streams are *opened* sequentially (submission
/// order fixes the tokenizer's vocabulary-intern order, making the two
/// runs comparable byte for byte) and then consumed concurrently. Both
/// sides measure steady-state throughput the same way: tokens divided by
/// the window from the first to the last token observation, best of
/// `repetitions` runs, so connection ramp-up does not skew the
/// comparison. The HTTP/SSE/channel overhead is the experiment's subject:
/// the enforcing binary requires the gateway to keep at least 0.9x the
/// in-process rate and every streamed answer to be byte-identical.
///
/// Phase 2 (disconnect storm): shared-prefix traffic with a seeded
/// cancellation mix, served through a fresh gateway with the prefix cache
/// enabled; cancelling clients drop their sockets mid-stream. Once the
/// storm settles the engine must report zero KV bytes in use and zero
/// pinned prefix entries, and every survivor must match its solo
/// sequential run.
///
/// # Panics
///
/// See [`gateway_saturation`].
pub fn gateway_saturation_with(repetitions: usize, write: bool) -> GatewaySaturationReport {
    use cocktail_server::{EngineSettings, GatewayClient, GatewayConfig, GatewayServer};

    let repetitions = repetitions.max(1);
    let requests = 12usize;
    let max_new_tokens = 24usize;
    let config = CocktailConfig::default()
        .with_chunk_size(16)
        .expect("chunk size is valid");
    let profile = ModelProfile::llama2_7b_sim;
    let traffic = TrafficGenerator::new(
        TrafficConfig {
            requests,
            arrival_window_steps: 0,
            max_new_tokens,
            workload: WorkloadConfig::tiny().with_context_words(96),
            kinds: vec![TaskKind::Qasper, TaskKind::QmSum, TaskKind::TriviaQa],
            prefix_groups: 0,
            prefix_words: 0,
            branch_words: 0,
            tenant_skew_milli: 0,
            cancel_per_mille: 0,
            stop_strings: Vec::new(),
            restart_after_requests: None,
            chat: None,
        }
        .with_branching_prefix(2, 24, 8),
        0x6A7E_3A7E,
    )
    .generate();

    // Phase 1a — the in-process reference: submit everything, stream
    // through step_events, timestamp every token batch.
    let build_engine = || {
        ServingEngine::new(profile(), config.clone())
            .expect("serving config is valid")
            .with_prefix_cache(PrefixCacheConfig::default())
    };
    let mut reference: Vec<String> = Vec::new();
    let mut in_process_rate = 0.0f64;
    for rep in 0..repetitions {
        let mut engine = build_engine();
        let ids: Vec<RequestId> = traffic
            .iter()
            .map(|r| {
                engine.submit(ServeRequest::new(
                    r.task.context.clone(),
                    r.task.query.clone(),
                    r.max_new_tokens,
                ))
            })
            .collect();
        let mut first: Option<Instant> = None;
        let mut last: Option<Instant> = None;
        let mut tokens = 0usize;
        while !engine.is_idle() {
            let events = engine.step_events().expect("in-process serving succeeds");
            let now = Instant::now();
            for event in &events {
                if event.token.is_some() {
                    first.get_or_insert(now);
                    last = Some(now);
                    tokens += 1;
                }
            }
        }
        let window = last
            .zip(first)
            .map_or(0.0, |(l, f)| l.duration_since(f).as_secs_f64())
            .max(1e-9);
        in_process_rate = in_process_rate.max(tokens as f64 / window);
        if rep == 0 {
            reference = ids
                .iter()
                .map(|id| {
                    engine
                        .take_outcome(*id)
                        .expect("reference request completed")
                        .outcome
                        .answer
                })
                .collect();
        }
    }

    // Phase 1b — the same traffic through the gateway: one streaming HTTP
    // client per request, opened in submission order, consumed in
    // parallel.
    let mut gateway_rate = 0.0f64;
    let mut rows: Vec<GatewaySaturationRow> = Vec::new();
    for _ in 0..repetitions {
        let settings = EngineSettings::new(profile(), config.clone())
            .with_prefix_cache(PrefixCacheConfig::default());
        let server =
            GatewayServer::start(settings, GatewayConfig::default()).expect("bind localhost");
        let client = GatewayClient::new(server.addr());
        let handles: Vec<_> = traffic
            .iter()
            .map(|r| {
                client
                    .open_stream(&cocktail_server::GenerateRequest::new(
                        r.task.context.clone(),
                        r.task.query.clone(),
                        r.max_new_tokens,
                    ))
                    .expect("stream opens")
            })
            .collect();
        let clients: Vec<_> = handles
            .into_iter()
            .map(|mut handle| {
                std::thread::spawn(move || {
                    let mut first: Option<Instant> = None;
                    let mut last: Option<Instant> = None;
                    let mut tokens = 0usize;
                    while let Some(event) = handle.next_event().expect("stream event") {
                        if !event.done {
                            let now = Instant::now();
                            first.get_or_insert(now);
                            last = Some(now);
                            tokens += 1;
                        }
                    }
                    let outcome = handle.finish().expect("stream finishes");
                    (outcome, tokens, first, last)
                })
            })
            .collect();
        let mut first: Option<Instant> = None;
        let mut last: Option<Instant> = None;
        let mut tokens = 0usize;
        let mut rep_rows = Vec::with_capacity(traffic.len());
        for (i, worker) in clients.into_iter().enumerate() {
            let (outcome, streamed_tokens, client_first, client_last) =
                worker.join().expect("client thread");
            first = match (first, client_first) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            last = match (last, client_last) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
            tokens += streamed_tokens;
            rep_rows.push(GatewaySaturationRow {
                request: i,
                max_new_tokens: traffic[i].max_new_tokens,
                streamed_tokens,
                byte_identical: outcome.streamed == reference[i]
                    && outcome.answer.as_deref() == Some(reference[i].as_str()),
            });
        }
        server.shutdown();
        let window = last
            .zip(first)
            .map_or(0.0, |(l, f)| l.duration_since(f).as_secs_f64())
            .max(1e-9);
        gateway_rate = gateway_rate.max(tokens as f64 / window);
        if rows.is_empty() || rep_rows.iter().any(|r| !r.byte_identical) {
            rows = rep_rows;
        }
    }

    // Phase 2 — the disconnect storm: shared-prefix traffic, prefix cache
    // on, a seeded fraction of clients dropping their sockets mid-stream.
    let storm_requests = 8usize;
    let storm = TrafficGenerator::new(
        TrafficConfig::small(storm_requests)
            .with_max_new_tokens(12)
            .with_shared_prefix(2, 24)
            .with_cancellations(450),
        0x57_0231,
    )
    .generate();
    assert!(
        storm.iter().any(|r| r.cancel_after_tokens.is_some())
            && storm.iter().any(|r| r.cancel_after_tokens.is_none()),
        "the storm trace must mix disconnecting and surviving clients"
    );
    let storm_pipeline =
        CocktailPipeline::new(profile(), config.clone()).expect("pipeline config is valid");
    let storm_solo: Vec<String> = storm
        .iter()
        .map(|r| {
            storm_pipeline
                .run(&r.task.context, &r.task.query, r.max_new_tokens)
                .expect("solo sequential reference run succeeds")
                .answer
        })
        .collect();

    let settings = EngineSettings::new(profile(), config.clone())
        .with_prefix_cache(PrefixCacheConfig::default());
    let server = GatewayServer::start(settings, GatewayConfig::default()).expect("bind localhost");
    let client = GatewayClient::new(server.addr());
    let handles: Vec<_> = storm
        .iter()
        .map(|r| {
            client
                .open_stream(&cocktail_server::GenerateRequest::new(
                    r.task.context.clone(),
                    r.task.query.clone(),
                    r.max_new_tokens,
                ))
                .expect("storm stream opens")
        })
        .collect();
    let workers: Vec<_> = storm
        .iter()
        .cloned()
        .zip(handles)
        .zip(storm_solo.iter().cloned())
        .map(|((request, mut handle), solo)| {
            std::thread::spawn(move || match request.cancel_after_tokens {
                Some(after) => {
                    handle.read_tokens(after).expect("partial read");
                    handle.abort();
                    None
                }
                None => {
                    let outcome = handle.finish().expect("survivor finishes");
                    Some(outcome.streamed == solo)
                }
            })
        })
        .collect();
    let survivor_results: Vec<Option<bool>> = workers
        .into_iter()
        .map(|w| w.join().expect("storm client thread"))
        .collect();
    let storm_survivors_byte_identical = survivor_results
        .iter()
        .all(|r| r.map_or(true, |identical| identical));

    // Wait for the disconnects to be reaped, then read the leak counters.
    let deadline = Instant::now() + std::time::Duration::from_secs(60);
    let settled = loop {
        let stats = client.stats().expect("stats endpoint");
        if stats.queued == 0
            && stats.running == 0
            && stats.completed + stats.cancelled >= storm_requests
        {
            break stats;
        }
        assert!(
            Instant::now() < deadline,
            "storm failed to settle; last stats: {stats:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    server.shutdown();

    let relative_throughput = gateway_rate / in_process_rate.max(1e-9);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.request.to_string(),
                format!("{}/{}", r.streamed_tokens, r.max_new_tokens),
                if r.byte_identical { "yes" } else { "DIVERGED" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Gateway saturation: SSE streaming over TCP vs the in-process engine (Llama2-7B sim)",
        &["Req", "Streamed", "Byte-identical"],
        &table,
    );
    let leaked_kv_bytes = settled
        .kv_bytes_in_use
        .saturating_sub(settled.prefix_resident_bytes);
    println!(
        "in-process {in_process_rate:.1} tok/s vs gateway {gateway_rate:.1} tok/s \
         ({relative_throughput:.2}x); storm: {} cancelled / {} completed, {} request-held KV \
         bytes and {} pins left ({} cache-resident bytes stay)",
        settled.cancelled,
        settled.completed,
        leaked_kv_bytes,
        settled.pinned_prefix_entries,
        settled.prefix_resident_bytes
    );

    let report = GatewaySaturationReport {
        requests,
        in_process_tokens_per_s: in_process_rate,
        gateway_tokens_per_s: gateway_rate,
        relative_throughput,
        rows,
        storm_requests,
        storm_cancelled: settled.cancelled,
        storm_completed: settled.completed,
        storm_survivors_byte_identical,
        kv_bytes_after_storm: settled.kv_bytes_in_use,
        prefix_resident_after_storm: settled.prefix_resident_bytes,
        leaked_kv_bytes,
        pinned_entries_after_storm: settled.pinned_prefix_entries,
    };
    if write {
        let record = ExperimentRecord {
            id: "gateway_saturation".to_string(),
            title: "Gateway saturation: HTTP/SSE serving overhead and disconnect-storm hygiene"
                .to_string(),
            note: format!(
                "{requests} concurrent SSE clients (branching-prefix traffic, {max_new_tokens} \
                 tokens each) against the Llama2-7B sim profile over real localhost sockets, \
                 best of {repetitions} runs per mode; then an {storm_requests}-client \
                 disconnect storm (450/1000 drop rate, shared prefixes, prefix cache on) \
                 checked for leaked KV bytes and pins"
            ),
            rows: &report,
        };
        let path = write_record(&record);
        println!("(written to {})", path.display());
    }
    report
}

// ---------------------------------------------------------------------------
// Replica affinity — multi-replica routing versus round-robin and hwsim
// ---------------------------------------------------------------------------

/// Per-replica leak counters once the cross-replica cancellation storm
/// settled.
#[derive(Debug, Clone, Serialize)]
pub struct ReplicaLeakRow {
    /// Replica index.
    pub replica: usize,
    /// KV bytes still held by *requests* on this replica
    /// (`kv_bytes_in_use - prefix_resident_bytes`). Must be zero.
    pub leaked_kv_bytes: usize,
    /// Prefix-cache pins still held on this replica. Must be zero.
    pub pinned_entries: usize,
}

/// Full payload of the replica-affinity record.
#[derive(Debug, Clone, Serialize)]
pub struct ReplicaAffinityReport {
    /// Engine replicas behind the router.
    pub replicas: usize,
    /// Requests in the skewed-tenant trace.
    pub requests: usize,
    /// Tenant groups in the trace (Zipf-skewed).
    pub groups: usize,
    /// Prefix-reused tokens under prefix-affinity routing (in-process).
    pub affinity_reused_tokens: u64,
    /// Prefix-reused tokens under round-robin placement (in-process).
    pub round_robin_reused_tokens: u64,
    /// Steady-state tokens/s of the affinity-routed in-process fleet.
    pub affinity_tokens_per_s: f64,
    /// Steady-state tokens/s of the round-robin in-process fleet.
    pub round_robin_tokens_per_s: f64,
    /// Requests the in-process router placed by fingerprint match.
    pub affinity_routed: usize,
    /// Requests the in-process router placed least-loaded (cold).
    pub least_loaded_routed: usize,
    /// Whether every affinity-routed output matched the solo-pipeline
    /// replay of its replica's request subsequence.
    pub routed_byte_identical: bool,
    /// Gateway tokens/s with a single replica (best of N runs).
    pub gateway_single_tokens_per_s: f64,
    /// Gateway tokens/s with the full fleet (best of N runs).
    pub gateway_fleet_tokens_per_s: f64,
    /// `gateway_fleet_tokens_per_s / gateway_single_tokens_per_s`.
    pub measured_scaling: f64,
    /// hwsim fleet prediction at one replica.
    pub predicted_single: cocktail_hwsim::FleetThroughput,
    /// hwsim fleet prediction at `replicas` replicas.
    pub predicted_fleet: cocktail_hwsim::FleetThroughput,
    /// Predicted throughput scaling (`predicted_fleet / predicted_single`;
    /// linear in the model — replicas share nothing).
    pub predicted_scaling: f64,
    /// Whether every fleet-gateway stream matched the solo-pipeline
    /// replay of the replica that served it.
    pub gateway_byte_identical: bool,
    /// How many fleet-gateway requests each replica served.
    pub gateway_replica_requests: Vec<usize>,
    /// Affinity-routed count reported by the fleet gateway's
    /// `/api/v1/stats`.
    pub gateway_affinity_routed: usize,
    /// Least-loaded-routed count reported by `/api/v1/stats`.
    pub gateway_least_loaded_routed: usize,
    /// Requests in the cross-replica cancellation storm.
    pub storm_requests: usize,
    /// Storm requests cancelled mid-stream.
    pub storm_cancelled: usize,
    /// Storm requests that completed.
    pub storm_completed: usize,
    /// Whether every storm survivor matched its replica's solo replay.
    pub storm_survivors_byte_identical: bool,
    /// Per-replica leak counters once the storm settled.
    pub storm_leaks: Vec<ReplicaLeakRow>,
}

/// Replica affinity with the default settings: best-of-2 timing, record
/// written to `results/replica_affinity.json`.
///
/// # Panics
///
/// See [`replica_affinity_with`].
pub fn replica_affinity() -> ReplicaAffinityReport {
    replica_affinity_with(2, true)
}

/// Multi-replica serving under skewed hot-tenant branching traffic:
/// prefix-affinity routing versus round-robin, the fleet gateway versus a
/// single-replica gateway, and a cross-replica cancellation storm.
///
/// Phase 1 (in-process): the same Zipf-skewed branching trace is served
/// by a two-replica [`Router`](cocktail_core::Router) twice —
/// prefix-affinity and round-robin.
/// Affinity must strictly beat round-robin on prefix-reused tokens
/// (deterministic: affinity pins each tenant's branches to one replica's
/// trie, round-robin smears them), and every routed output is checked
/// byte-for-byte against a solo [`CocktailPipeline`] replaying exactly
/// the request subsequence its replica saw, in arrival order (each
/// replica's tokenizer interns words in its own arrival order, so the
/// reference must replay per replica, not per fleet).
///
/// Phase 2 (gateway): the trace runs through the HTTP gateway once with
/// one replica and once with the fleet; aggregate SSE tokens/s are
/// measured the same way on both and their ratio is compared against the
/// extended `hwsim::deployment` N-replica prediction
/// ([`DeploymentModel::replicated`]). The per-replica wire ids
/// (`"r1:req-3"`) identify which engine served each stream, so fleet
/// byte-identity is checked against per-replica solo replays too.
///
/// Phase 3 (storm): skewed branching traffic with a seeded cancellation
/// mix hits the fleet gateway; cancelling clients drop their sockets
/// after at least one streamed token (so every prompt was encoded and
/// the per-replica replay references stay valid). Once settled, *every*
/// replica must report zero request-held KV bytes and zero pins.
///
/// # Panics
///
/// Panics if serving fails or a client hits an I/O error; criterion
/// violations (byte divergence, leaks, lost reuse) are *recorded* so the
/// enforcing binary can report exactly what broke.
pub fn replica_affinity_with(repetitions: usize, write: bool) -> ReplicaAffinityReport {
    use cocktail_core::{RoutePolicy, Router};
    use cocktail_server::{EngineSettings, GatewayClient, GatewayConfig, GatewayServer};

    let repetitions = repetitions.max(1);
    let replicas = 2usize;
    let requests = 15usize;
    let groups = 3usize;
    let max_new_tokens = 12usize;
    let config = CocktailConfig::default()
        .with_chunk_size(16)
        .expect("chunk size is valid");
    let profile = ModelProfile::llama2_7b_sim;
    // Zipf-skewed hot-tenant branching traffic: three tenants share
    // 24-word preambles, each request branches after the preamble, and
    // tenant 0 draws the bulk of the traffic (s = 1.2).
    let traffic = TrafficGenerator::new(
        TrafficConfig {
            requests,
            arrival_window_steps: 0,
            max_new_tokens,
            workload: WorkloadConfig::tiny().with_context_words(96),
            kinds: vec![TaskKind::Qasper, TaskKind::QmSum, TaskKind::TriviaQa],
            prefix_groups: 0,
            prefix_words: 0,
            branch_words: 0,
            tenant_skew_milli: 0,
            cancel_per_mille: 0,
            stop_strings: Vec::new(),
            restart_after_requests: None,
            chat: None,
        }
        .with_branching_prefix(groups, 24, 8)
        .with_tenant_skew(1200),
        0x5EAF_00D1,
    )
    .generate();

    // Phase 1 — in-process: affinity versus round-robin on the same
    // two-replica fleet.
    let run_fleet = |policy: RoutePolicy| {
        let mut router = Router::new(replicas, profile(), config.clone())
            .expect("router config is valid")
            .with_policy(policy)
            .with_prefix_cache(PrefixCacheConfig::default());
        let ids: Vec<_> = traffic
            .iter()
            .map(|r| {
                router.submit(ServeRequest::new(
                    r.task.context.clone(),
                    r.task.query.clone(),
                    r.max_new_tokens,
                ))
            })
            .collect();
        let mut first: Option<Instant> = None;
        let mut last: Option<Instant> = None;
        let mut tokens = 0usize;
        while !router.is_idle() {
            let events = router.step_events().expect("fleet serving succeeds");
            let now = Instant::now();
            for event in &events {
                if event.event.token.is_some() {
                    first.get_or_insert(now);
                    last = Some(now);
                    tokens += 1;
                }
            }
        }
        let window = last
            .zip(first)
            .map_or(0.0, |(l, f)| l.duration_since(f).as_secs_f64())
            .max(1e-9);
        let answers: Vec<String> = ids
            .iter()
            .map(|id| {
                router
                    .take_outcome(*id)
                    .expect("routed request completed")
                    .outcome
                    .answer
            })
            .collect();
        let reused = router.prefix_reused_tokens();
        let stats = router.routing_stats();
        let placements: Vec<usize> = ids.iter().map(|id| id.replica).collect();
        (answers, placements, reused, tokens as f64 / window, stats)
    };
    let (affinity_answers, affinity_placements, affinity_reused, affinity_rate, routing_stats) =
        run_fleet(RoutePolicy::PrefixAffinity);
    let (_, _, round_robin_reused, round_robin_rate, _) = run_fleet(RoutePolicy::RoundRobin);

    // Byte-identity: each replica's answers against a solo pipeline
    // replaying exactly that replica's arrival subsequence.
    let replica_replay = |placements: &[usize], answers: &dyn Fn(usize) -> Option<String>| {
        let mut identical = true;
        for replica in 0..replicas {
            let pipeline =
                CocktailPipeline::new(profile(), config.clone()).expect("pipeline config is valid");
            for (i, request) in traffic.iter().enumerate() {
                if placements[i] != replica {
                    continue;
                }
                let solo = pipeline
                    .run(
                        &request.task.context,
                        &request.task.query,
                        request.max_new_tokens,
                    )
                    .expect("solo replay succeeds")
                    .answer;
                if let Some(served) = answers(i) {
                    identical &= served == solo;
                }
            }
        }
        identical
    };
    let routed_byte_identical =
        replica_replay(&affinity_placements, &|i| Some(affinity_answers[i].clone()));

    // Phase 2 — the gateway: the same trace once through one replica,
    // once through the fleet, timed identically.
    let run_gateway = |n: usize| {
        let settings = EngineSettings::new(profile(), config.clone())
            .with_prefix_cache(PrefixCacheConfig::default());
        let server = GatewayServer::start(settings, GatewayConfig::default().with_replicas(n))
            .expect("bind localhost");
        let client = GatewayClient::new(server.addr());
        let handles: Vec<_> = traffic
            .iter()
            .map(|r| {
                client
                    .open_stream(&cocktail_server::GenerateRequest::new(
                        r.task.context.clone(),
                        r.task.query.clone(),
                        r.max_new_tokens,
                    ))
                    .expect("stream opens")
            })
            .collect();
        let workers: Vec<_> = handles
            .into_iter()
            .map(|mut handle| {
                std::thread::spawn(move || {
                    let mut first: Option<Instant> = None;
                    let mut last: Option<Instant> = None;
                    while let Some(event) = handle.next_event().expect("stream event") {
                        if !event.done {
                            let now = Instant::now();
                            first.get_or_insert(now);
                            last = Some(now);
                        }
                    }
                    let id = handle.id().expect("stream saw events").to_string();
                    let outcome = handle.finish().expect("stream finishes");
                    (id, outcome, first, last)
                })
            })
            .collect();
        let mut first: Option<Instant> = None;
        let mut last: Option<Instant> = None;
        let mut tokens = 0usize;
        let mut results = Vec::with_capacity(traffic.len());
        for worker in workers {
            let (id, outcome, client_first, client_last) = worker.join().expect("client thread");
            first = match (first, client_first) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            last = match (last, client_last) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
            tokens += outcome.token_events;
            results.push((id, outcome));
        }
        let stats = client.stats().expect("stats endpoint");
        server.shutdown();
        let window = last
            .zip(first)
            .map_or(0.0, |(l, f)| l.duration_since(f).as_secs_f64())
            .max(1e-9);
        (tokens as f64 / window, results, stats)
    };

    let mut single_rate = 0.0f64;
    let mut fleet_rate = 0.0f64;
    let mut fleet_results = Vec::new();
    let mut fleet_stats = None;
    for rep in 0..repetitions {
        let (rate, _, _) = run_gateway(1);
        single_rate = single_rate.max(rate);
        let (rate, results, stats) = run_gateway(replicas);
        fleet_rate = fleet_rate.max(rate);
        if rep == 0 {
            fleet_results = results;
            fleet_stats = Some(stats);
        }
    }
    let fleet_stats = fleet_stats.expect("at least one fleet run");

    // Which replica served each stream, from the wire id ("r1:req-3").
    let wire_replica = |id: &str| -> usize {
        id.strip_prefix('r')
            .and_then(|rest| rest.split(':').next())
            .and_then(|digits| digits.parse().ok())
            .expect("fleet wire ids carry the replica index")
    };
    let fleet_placements: Vec<usize> = fleet_results
        .iter()
        .map(|(id, _)| wire_replica(id))
        .collect();
    let mut gateway_replica_requests = vec![0usize; replicas];
    for &replica in &fleet_placements {
        gateway_replica_requests[replica] += 1;
    }
    let gateway_byte_identical = replica_replay(&fleet_placements, &|i| {
        Some(fleet_results[i].1.streamed.clone())
    });

    // The hwsim fleet prediction the measured scaling is held against.
    let deployment = deployment_for(&profile());
    let kv_profile = build_hw_profile("Cocktail");
    let predicted_single = deployment
        .replicated(1)
        .max_throughput(&kv_profile, 64)
        .expect("single replica fits");
    let predicted_fleet = deployment
        .replicated(replicas)
        .max_throughput(&kv_profile, 64)
        .expect("fleet fits");
    let predicted_scaling = predicted_fleet.tokens_per_s / predicted_single.tokens_per_s;
    let measured_scaling = fleet_rate / single_rate.max(1e-9);

    // Phase 3 — cancellation storm across the fleet: skewed branching
    // traffic with a seeded disconnect mix (always after >= 1 streamed
    // token, so every prompt was encoded before its cancel).
    let storm_requests = 10usize;
    let storm = TrafficGenerator::new(
        TrafficConfig::small(storm_requests)
            .with_max_new_tokens(12)
            .with_branching_prefix(groups, 24, 8)
            .with_tenant_skew(1200)
            .with_cancellations(450),
        0x0C7A_11E5,
    )
    .generate();
    assert!(
        storm.iter().any(|r| r.cancel_after_tokens.is_some())
            && storm.iter().any(|r| r.cancel_after_tokens.is_none()),
        "the storm trace must mix disconnecting and surviving clients"
    );
    let settings = EngineSettings::new(profile(), config.clone())
        .with_prefix_cache(PrefixCacheConfig::default());
    let server = GatewayServer::start(settings, GatewayConfig::default().with_replicas(replicas))
        .expect("bind localhost");
    let client = GatewayClient::new(server.addr());
    let handles: Vec<_> = storm
        .iter()
        .map(|r| {
            client
                .open_stream(&cocktail_server::GenerateRequest::new(
                    r.task.context.clone(),
                    r.task.query.clone(),
                    r.max_new_tokens,
                ))
                .expect("storm stream opens")
        })
        .collect();
    let storm_workers: Vec<_> = storm
        .iter()
        .cloned()
        .zip(handles)
        .map(|(request, mut handle)| {
            std::thread::spawn(move || match request.cancel_after_tokens {
                Some(after) => {
                    handle.read_tokens(after).expect("partial read");
                    let id = handle.id().expect("storm stream saw events").to_string();
                    handle.abort();
                    (id, None)
                }
                None => {
                    handle.read_tokens(1).expect("first token");
                    let id = handle.id().expect("storm stream saw events").to_string();
                    let outcome = handle.finish().expect("survivor finishes");
                    (id, Some(outcome.streamed))
                }
            })
        })
        .collect();
    let storm_results: Vec<(String, Option<String>)> = storm_workers
        .into_iter()
        .map(|w| w.join().expect("storm client thread"))
        .collect();

    // Survivors against per-replica solo replays. Cancelled requests are
    // replayed too (their prompts were encoded, shifting the replica's
    // intern order), just not compared.
    let storm_placements: Vec<usize> = storm_results
        .iter()
        .map(|(id, _)| wire_replica(id))
        .collect();
    let mut storm_survivors_byte_identical = true;
    for replica in 0..replicas {
        let pipeline =
            CocktailPipeline::new(profile(), config.clone()).expect("pipeline config is valid");
        for (i, request) in storm.iter().enumerate() {
            if storm_placements[i] != replica {
                continue;
            }
            let solo = pipeline
                .run(
                    &request.task.context,
                    &request.task.query,
                    request.max_new_tokens,
                )
                .expect("storm solo replay succeeds")
                .answer;
            if let Some(streamed) = &storm_results[i].1 {
                storm_survivors_byte_identical &= *streamed == solo;
            }
        }
    }

    // Wait for the disconnects to be reaped, then read per-replica leaks.
    let deadline = Instant::now() + std::time::Duration::from_secs(60);
    let settled = loop {
        let stats = client.stats().expect("stats endpoint");
        if stats.queued == 0
            && stats.running == 0
            && stats.completed + stats.cancelled >= storm_requests
        {
            break stats;
        }
        assert!(
            Instant::now() < deadline,
            "storm failed to settle; last stats: {stats:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    server.shutdown();
    let storm_leaks: Vec<ReplicaLeakRow> = settled
        .replicas
        .iter()
        .map(|r| ReplicaLeakRow {
            replica: r.replica,
            leaked_kv_bytes: r.kv_bytes_in_use.saturating_sub(r.prefix_resident_bytes),
            pinned_entries: r.pinned_prefix_entries,
        })
        .collect();

    let table: Vec<Vec<String>> = vec![
        vec![
            "affinity".to_string(),
            affinity_reused.to_string(),
            format!("{affinity_rate:.1}"),
            routing_stats.affinity_routed.to_string(),
            routing_stats.least_loaded_routed.to_string(),
        ],
        vec![
            "round-robin".to_string(),
            round_robin_reused.to_string(),
            format!("{round_robin_rate:.1}"),
            "-".to_string(),
            "-".to_string(),
        ],
    ];
    print_table(
        "Replica affinity: prefix-routed vs round-robin placement on a 2-replica fleet \
         (skewed tenants, Llama2-7B sim)",
        &[
            "Policy",
            "Reused tokens",
            "tok/s",
            "Affinity",
            "Least-loaded",
        ],
        &table,
    );
    println!(
        "gateway: 1 replica {single_rate:.1} tok/s vs {replicas} replicas {fleet_rate:.1} tok/s \
         ({measured_scaling:.2}x measured, {predicted_scaling:.2}x predicted); fleet split {:?}; \
         storm: {} cancelled / {} completed, leaks per replica {:?}",
        gateway_replica_requests,
        settled.cancelled,
        settled.completed,
        storm_leaks
            .iter()
            .map(|l| (l.leaked_kv_bytes, l.pinned_entries))
            .collect::<Vec<_>>()
    );

    let report = ReplicaAffinityReport {
        replicas,
        requests,
        groups,
        affinity_reused_tokens: affinity_reused,
        round_robin_reused_tokens: round_robin_reused,
        affinity_tokens_per_s: affinity_rate,
        round_robin_tokens_per_s: round_robin_rate,
        affinity_routed: routing_stats.affinity_routed,
        least_loaded_routed: routing_stats.least_loaded_routed,
        routed_byte_identical,
        gateway_single_tokens_per_s: single_rate,
        gateway_fleet_tokens_per_s: fleet_rate,
        measured_scaling,
        predicted_single,
        predicted_fleet,
        predicted_scaling,
        gateway_byte_identical,
        gateway_replica_requests,
        gateway_affinity_routed: fleet_stats.affinity_routed,
        gateway_least_loaded_routed: fleet_stats.least_loaded_routed,
        storm_requests,
        storm_cancelled: settled.cancelled,
        storm_completed: settled.completed,
        storm_survivors_byte_identical,
        storm_leaks,
    };
    if write {
        let record = ExperimentRecord {
            id: "replica_affinity".to_string(),
            title: "Replica affinity: fleet-wide prefix reuse via consistent-hash routing"
                .to_string(),
            note: format!(
                "{requests} Zipf-skewed ({groups}-tenant) branching requests on a \
                 {replicas}-replica fleet (Llama2-7B sim, prefix caches on): prefix-affinity \
                 vs round-robin reuse in-process, then the HTTP gateway at 1 vs {replicas} \
                 replicas (best of {repetitions} runs) against the hwsim replicated() \
                 prediction, then a {storm_requests}-client cross-replica disconnect storm \
                 checked for per-replica leaks"
            ),
            rows: &report,
        };
        let path = write_record(&record);
        println!("(written to {})", path.display());
    }
    report
}

/// Best-of-N TTFT components of one request.
#[derive(Debug, Clone, Copy)]
struct PipelineTimingsBest {
    ttft_us: u64,
    prefill_us: u64,
    compress_us: u64,
}

impl Default for PipelineTimingsBest {
    fn default() -> Self {
        Self {
            ttft_us: u64::MAX,
            prefill_us: 0,
            compress_us: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel scaling — data-parallel prefill on the worker pool
// ---------------------------------------------------------------------------

/// Full payload of the kernel-scaling record.
#[derive(Debug, Clone, Serialize)]
pub struct KernelScalingReport {
    /// Prompt length driven through prefill.
    pub prompt_tokens: usize,
    /// The dispatcher's work metric for one layer's score GEMM
    /// (`suffix x prompt x hidden`), which must clear the threshold for the
    /// head-parallel path to engage.
    pub score_work: usize,
    /// The dispatcher's scalar/parallel cutover, in work units.
    pub parallel_threshold: usize,
    /// Thread count of the parallel runs (the host's configured kernel
    /// threads; 1 on a single-core host, where the comparison degenerates).
    pub parallel_threads: usize,
    /// Physical parallelism the host actually offers. Pinning
    /// `COCKTAIL_KERNEL_THREADS` above this adds threads but no cores, so
    /// the throughput criterion is only enforced when this is at least 2.
    pub host_cores: usize,
    /// Best-of tokens/s of prefill with the kernels pinned to one thread.
    pub scalar_tokens_per_s: f64,
    /// Best-of tokens/s of prefill at the configured thread count.
    pub parallel_tokens_per_s: f64,
    /// `parallel_tokens_per_s / scalar_tokens_per_s`.
    pub speedup: f64,
    /// Whether the scalar and parallel prefills produced byte-identical
    /// outputs (KV tensors, hidden states and logits).
    pub bit_identical: bool,
    /// Whether the engine's request-level pool never re-spawned a thread
    /// across the timing rounds.
    pub engine_pool_spawns_flat: bool,
    /// Whether the process-wide kernel pool never re-spawned a thread
    /// across the timing rounds.
    pub kernel_pool_spawns_flat: bool,
}

/// Kernel scaling with the default settings: best-of-5 timing, record
/// written to `results/kernel_scaling.json`.
///
/// # Panics
///
/// Panics if the model config is rejected or prefill fails.
pub fn kernel_scaling() -> KernelScalingReport {
    kernel_scaling_with(5, true)
}

/// Prefill throughput with the hot kernels pinned to one thread versus the
/// host's configured thread count, on a tiny-profile engine with a prompt
/// long enough that the per-layer attention work clears
/// [`cocktail_quant::parallel::PARALLEL_THRESHOLD`]. Byte-identity of the
/// two runs is asserted on every round, and both the engine's worker pool
/// and the process-wide kernel pool must keep a flat spawn counter across
/// rounds — threads persist, they are not re-created per call.
///
/// Each configuration's throughput is the maximum over `repetitions` runs,
/// the usual defence against scheduler noise.
///
/// # Panics
///
/// Panics if the model config is rejected or prefill fails.
pub fn kernel_scaling_with(repetitions: usize, write: bool) -> KernelScalingReport {
    let repetitions = repetitions.max(1);
    let config = ModelConfig::new("kernel-scaling-tiny", 32, 2, 2, 2, 64, 512, 1024)
        .expect("tiny kernel-scaling profile is valid");
    let hidden_dim = config.hidden_dim;
    let vocab = config.vocab_size as u32;
    let engine = InferenceEngine::from_config(config, 0xC0C7_7A11).expect("engine builds");
    let prompt_tokens = 384usize;
    let prompt: Vec<u32> = (0..prompt_tokens)
        .map(|i| (i as u32 * 31 + 7) % vocab)
        .collect();
    let score_work = prompt_tokens * prompt_tokens * hidden_dim;
    assert!(
        kernel_parallel::should_parallelize(score_work) || kernel_parallel::kernel_threads() == 1,
        "the prompt must be long enough to clear the parallel threshold"
    );

    // Warm both pools and pin the spawn counters before timing.
    kernel_parallel::set_kernel_thread_override(None);
    let parallel_threads = kernel_parallel::kernel_threads();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let warm = engine.prefill(&prompt).expect("warmup prefill succeeds");
    let engine_spawns = engine.pool_spawn_count();
    let kernel_spawns = kernel_parallel::pool_spawn_count();

    let mut best_scalar_s = f64::INFINITY;
    let mut best_parallel_s = f64::INFINITY;
    let mut bit_identical = true;
    for _ in 0..repetitions {
        kernel_parallel::set_kernel_thread_override(Some(1));
        let start = Instant::now();
        let scalar = engine.prefill(&prompt).expect("scalar prefill succeeds");
        best_scalar_s = best_scalar_s.min(start.elapsed().as_secs_f64());

        kernel_parallel::set_kernel_thread_override(None);
        let start = Instant::now();
        let parallel = engine.prefill(&prompt).expect("parallel prefill succeeds");
        best_parallel_s = best_parallel_s.min(start.elapsed().as_secs_f64());

        bit_identical &= scalar == parallel && scalar == warm;
    }
    kernel_parallel::set_kernel_thread_override(None);
    let engine_pool_spawns_flat = engine.pool_spawn_count() == engine_spawns;
    let kernel_pool_spawns_flat = kernel_parallel::pool_spawn_count() == kernel_spawns;

    let scalar_tokens_per_s = prompt_tokens as f64 / best_scalar_s;
    let parallel_tokens_per_s = prompt_tokens as f64 / best_parallel_s;
    let report = KernelScalingReport {
        prompt_tokens,
        score_work,
        parallel_threshold: kernel_parallel::PARALLEL_THRESHOLD,
        parallel_threads,
        host_cores,
        scalar_tokens_per_s,
        parallel_tokens_per_s,
        speedup: parallel_tokens_per_s / scalar_tokens_per_s,
        bit_identical,
        engine_pool_spawns_flat,
        kernel_pool_spawns_flat,
    };

    print_table(
        "Kernel scaling: prefill throughput, scalar vs data-parallel kernels (tiny profile)",
        &["Threads", "Tokens/s", "Speedup", "Bit-identical"],
        &[
            vec![
                "1".to_string(),
                format!("{scalar_tokens_per_s:.0}"),
                "1.00x".to_string(),
                "-".to_string(),
            ],
            vec![
                report.parallel_threads.to_string(),
                format!("{parallel_tokens_per_s:.0}"),
                format!("{:.2}x", report.speedup),
                report.bit_identical.to_string(),
            ],
        ],
    );
    if write {
        let path = write_record(&ExperimentRecord {
            id: "kernel_scaling".to_string(),
            title: "Prefill throughput with scalar vs data-parallel hot kernels".to_string(),
            note: format!(
                "Tiny profile, {prompt_tokens}-token prompt, best of {repetitions} runs per \
                 configuration; timing-based, so the record stays out of results/baseline/. \
                 Byte-identity and flat pool spawn counters are asserted on every run."
            ),
            rows: &report,
        });
        println!("wrote {}", path.display());
    }
    report
}

// ---------------------------------------------------------------------------
// Snapshot warm restart — persist the trie, restart, serve warm immediately
// ---------------------------------------------------------------------------

/// Full payload of the snapshot warm-restart record.
#[derive(Debug, Clone, Serialize)]
pub struct SnapshotWarmRestartReport {
    /// Requests served before the snapshot + restart.
    pub pre_restart_requests: usize,
    /// Requests served on the restored engine.
    pub post_restart_requests: usize,
    /// Snapshot file size in bytes.
    pub snapshot_bytes: usize,
    /// Trie nodes the snapshot captured.
    pub snapshot_nodes: usize,
    /// Whether the restore loaded the snapshot (must be true).
    pub restored: bool,
    /// Trie nodes resident after the restore.
    pub restored_nodes: usize,
    /// Every comparable serve — pre-restart, post-restore, post-drill —
    /// matched the cold sequential pipeline reference byte for byte. (The
    /// cold-restart control is timing-only: with no snapshot to replay the
    /// tokenizer's interning order, its token ids — and therefore answers —
    /// are legitimately different, which is the point of restoring.)
    pub byte_identical: bool,
    /// Prompt tokens the restored engine served from the snapshot's trie.
    pub post_restart_reused_tokens: usize,
    /// Mean TTFT of the post-restart requests on the restored engine
    /// (microseconds, best of N runs).
    pub warm_restart_mean_ttft_us: f64,
    /// Mean TTFT of the same requests on a cold-started engine.
    pub cold_restart_mean_ttft_us: f64,
    /// `warm_restart_mean_ttft_us / cold_restart_mean_ttft_us` (< 1 means
    /// restoring the snapshot pays).
    pub warm_over_cold: f64,
    /// snapshot -> restore -> snapshot reproduced the bytes exactly.
    pub roundtrip_byte_identical: bool,
    /// Cold-tier demotions in the eviction drill.
    pub demotions: u64,
    /// Cold-tier repromotions in the eviction drill.
    pub repromotions: u64,
    /// Prompt tokens the repromoted request reused from the cold tier.
    pub repromoted_reused_tokens: usize,
    /// The repromoted answer equals its own cold first serve and the
    /// sequential reference (disk round-trips change nothing).
    pub repromoted_byte_identical: bool,
    /// A truncated snapshot degraded to a clean cold start and the engine
    /// served on, byte-identical.
    pub truncated_cold_start: bool,
    /// A bit-flipped snapshot degraded to a clean cold start.
    pub corrupted_cold_start: bool,
    /// A snapshot from a differently-configured engine degraded cleanly.
    pub wrong_fingerprint_cold_start: bool,
}

/// Snapshot warm restart with the default settings: best-of-3 timing,
/// record written to `results/snapshot_warm_restart.json`.
///
/// # Panics
///
/// Panics if serving or the snapshot write fails.
pub fn snapshot_warm_restart() -> SnapshotWarmRestartReport {
    snapshot_warm_restart_with(3, true)
}

/// The persistence drill behind warm restarts: six requests share a long
/// preamble; after three of them (the trace's
/// [`TrafficConfig::with_restart_point`] marker) the engine snapshots its
/// prefix trie and is torn down, a fresh engine restores the file, and the
/// remaining requests must serve byte-identically to a cold sequential
/// reference — at a strictly lower TTFT than a cold-started control,
/// because the restored trie spares them the preamble prefill. The same
/// run exercises the disk cold tier (a two-node cap demotes an evicted
/// tail to the spill file and re-serving it repromotes the KV bit-exactly)
/// and the corruption drills (truncated, bit-flipped, and
/// wrong-fingerprint snapshots must degrade to clean cold starts, never
/// panic, and leave the engine serving).
///
/// Each TTFT is the minimum over `repetitions` full runs, the usual
/// defence against scheduler noise.
///
/// # Panics
///
/// Panics if serving fails or the snapshot cannot be written.
pub fn snapshot_warm_restart_with(repetitions: usize, write: bool) -> SnapshotWarmRestartReport {
    let repetitions = repetitions.max(1);
    let config = CocktailConfig::default()
        .with_chunk_size(16)
        .expect("chunk size is valid");
    let profile = ModelProfile::llama2_7b_sim;
    let traffic = TrafficGenerator::new(
        TrafficConfig {
            requests: 6,
            arrival_window_steps: 0,
            max_new_tokens: 4,
            workload: WorkloadConfig::tiny().with_context_words(48),
            kinds: vec![TaskKind::Qasper, TaskKind::QmSum, TaskKind::TriviaQa],
            prefix_groups: 1,
            prefix_words: 192,
            branch_words: 0,
            tenant_skew_milli: 0,
            cancel_per_mille: 0,
            stop_strings: Vec::new(),
            restart_after_requests: Some(3),
            chat: None,
        },
        0x5AFE_0001,
    )
    .generate();
    let restart_at = traffic
        .iter()
        .position(|r| r.restart_before)
        .expect("the restart marker is in range");

    // Cold sequential reference: the answers every serving variant below
    // must reproduce bit-exactly.
    let pipeline =
        CocktailPipeline::new(profile(), config.clone()).expect("pipeline config is valid");
    let reference: Vec<CocktailOutcome> = traffic
        .iter()
        .map(|r| {
            pipeline
                .run(&r.task.context, &r.task.query, r.max_new_tokens)
                .expect("cold sequential reference run succeeds")
        })
        .collect();

    let submit_all =
        |engine: &mut ServingEngine, slice: &[TrafficRequest]| -> Vec<RequestOutcome> {
            for request in slice {
                engine.submit(
                    ServeRequest::builder()
                        .context(request.task.context.clone())
                        .query(request.task.query.clone())
                        .max_new_tokens(request.max_new_tokens)
                        .build(),
                );
            }
            engine.run_until_idle().expect("serving succeeds")
        };
    let fresh = || {
        ServingEngine::new(profile(), config.clone())
            .expect("serving config is valid")
            .with_prefix_cache(PrefixCacheConfig::default())
    };

    let snap_path = std::env::temp_dir().join(format!(
        "cocktail_bench_{}_warm_restart.snap",
        std::process::id()
    ));
    let post = &traffic[restart_at..];
    let mut warm_best = vec![u64::MAX; post.len()];
    let mut cold_best = vec![u64::MAX; post.len()];
    let mut snapshot_bytes = 0usize;
    let mut snapshot_nodes = 0usize;
    let mut restored = true;
    let mut restored_nodes = 0usize;
    let mut byte_identical = true;
    let mut post_restart_reused_tokens = 0usize;
    for _ in 0..repetitions {
        // Interrupted run: build the trie, snapshot, "restart", restore.
        let mut engine = fresh();
        let pre = submit_all(&mut engine, &traffic[..restart_at]);
        for (outcome, cold) in pre.iter().zip(&reference) {
            byte_identical &= outcome.outcome.answer == cold.answer;
        }
        let report = engine.snapshot_to(&snap_path).expect("snapshot writes");
        snapshot_bytes = report.bytes;
        snapshot_nodes = report.nodes;
        drop(engine);

        let mut warm_engine = fresh();
        let restore = warm_engine.restore_from(&snap_path);
        restored &= restore.restored;
        restored_nodes = restore.nodes;
        let outcomes = submit_all(&mut warm_engine, post);
        post_restart_reused_tokens = outcomes.iter().map(|o| o.stats.prefix_reused_tokens).sum();
        for ((outcome, cold), slot) in outcomes
            .iter()
            .zip(&reference[restart_at..])
            .zip(warm_best.iter_mut())
        {
            byte_identical &= outcome.outcome.answer == cold.answer
                && outcome.outcome.generated_tokens == cold.generated_tokens;
            let t = outcome.stats.timings;
            *slot = (*slot).min(t.prefill_us + t.compress_us);
        }

        // Cold-restart control: the same tail with nothing to restore.
        // Timing only — a fresh tokenizer that never saw the first half of
        // the trace interns the tail's words under different ids, so its
        // answers are not comparable to the full-trace reference. (That id
        // sensitivity is exactly why the snapshot carries the interned
        // vocabulary: the restored engine above *does* reproduce the
        // reference byte for byte.)
        let mut cold_engine = fresh();
        let outcomes = submit_all(&mut cold_engine, post);
        for (outcome, slot) in outcomes.iter().zip(cold_best.iter_mut()) {
            let t = outcome.stats.timings;
            *slot = (*slot).min(t.prefill_us + t.compress_us);
        }
    }
    let mean =
        |best: &[u64]| best.iter().map(|&v| v as f64).sum::<f64>() / best.len().max(1) as f64;
    let warm_restart_mean_ttft_us = mean(&warm_best);
    let cold_restart_mean_ttft_us = mean(&cold_best);

    // Snapshot -> restore -> snapshot reproduces the format byte for byte.
    let bytes = std::fs::read(&snap_path).expect("snapshot file is readable");
    let mut echo = fresh();
    let roundtrip = echo.restore_from_bytes(&bytes);
    let roundtrip_byte_identical = roundtrip.restored && echo.snapshot_bytes() == bytes;

    // Corruption drills: every unusable snapshot must degrade to a clean
    // cold start — restored == false with a reason, no panic, and the
    // engine still serves the reference answer afterwards.
    let drill = |mangled: Vec<u8>| -> bool {
        let mut engine = fresh();
        let report = engine.restore_from_bytes(&mangled);
        if report.restored || report.reason.is_none() {
            return false;
        }
        let outcomes = submit_all(&mut engine, &traffic[..1]);
        outcomes[0].outcome.answer == reference[0].answer
    };
    let truncated_cold_start = drill(bytes[..bytes.len() / 2].to_vec());
    let corrupted_cold_start = {
        let mut flipped = bytes.clone();
        let middle = flipped.len() / 2;
        flipped[middle] ^= 0xFF;
        drill(flipped)
    };
    let wrong_fingerprint_cold_start = {
        // A snapshot taken under a different chunk size carries a
        // different config fingerprint: its KV bytes are not portable.
        let other_config = CocktailConfig::default()
            .with_chunk_size(32)
            .expect("chunk size is valid");
        let mut other = ServingEngine::new(profile(), other_config)
            .expect("serving config is valid")
            .with_prefix_cache(PrefixCacheConfig::default());
        submit_all(&mut other, &traffic[..1]);
        drill(other.snapshot_bytes())
    };
    std::fs::remove_file(&snap_path).ok();

    // Demote/repromote drill: a two-node cap with a disk cold tier. The
    // first two requests share the group preamble with divergent tails, so
    // caching the second splits the trie past the cap, demotes the first
    // tail to the spill file, and re-serving the first request repromotes
    // it from disk — with nothing changed in the bytes it serves.
    let spill_path = std::env::temp_dir().join(format!(
        "cocktail_bench_{}_warm_restart.spill",
        std::process::id()
    ));
    std::fs::remove_file(&spill_path).ok();
    let mut tiered = ServingEngine::new(profile(), config.clone())
        .expect("serving config is valid")
        .with_prefix_cache(PrefixCacheConfig::default().with_max_entries(2))
        .with_cold_tier(&spill_path)
        .expect("cold-tier spill path is creatable");
    let first = submit_all(&mut tiered, &traffic[..1]);
    submit_all(&mut tiered, &traffic[1..2]);
    let demotions = tiered
        .prefix_cache_stats()
        .expect("the prefix cache is enabled")
        .demotions;
    let again = submit_all(&mut tiered, &traffic[..1]);
    let repromotions = tiered
        .prefix_cache_stats()
        .expect("the prefix cache is enabled")
        .repromotions;
    let repromoted_reused_tokens = again[0].stats.prefix_reused_tokens;
    let repromoted_byte_identical = again[0].outcome.answer == first[0].outcome.answer
        && again[0].outcome.answer == reference[0].answer;
    std::fs::remove_file(&spill_path).ok();

    println!(
        "cold-restart mean TTFT {cold_restart_mean_ttft_us:.0} us, warm-restart mean TTFT \
         {warm_restart_mean_ttft_us:.0} us ({:.2}x)",
        warm_restart_mean_ttft_us / cold_restart_mean_ttft_us
    );
    let report = SnapshotWarmRestartReport {
        pre_restart_requests: restart_at,
        post_restart_requests: post.len(),
        snapshot_bytes,
        snapshot_nodes,
        restored,
        restored_nodes,
        byte_identical,
        post_restart_reused_tokens,
        warm_restart_mean_ttft_us,
        cold_restart_mean_ttft_us,
        warm_over_cold: warm_restart_mean_ttft_us / cold_restart_mean_ttft_us,
        roundtrip_byte_identical,
        demotions,
        repromotions,
        repromoted_reused_tokens,
        repromoted_byte_identical,
        truncated_cold_start,
        corrupted_cold_start,
        wrong_fingerprint_cold_start,
    };
    let table = vec![
        vec![
            "snapshot bytes".to_string(),
            report.snapshot_bytes.to_string(),
        ],
        vec![
            "snapshot nodes".to_string(),
            report.snapshot_nodes.to_string(),
        ],
        vec![
            "restored nodes".to_string(),
            report.restored_nodes.to_string(),
        ],
        vec![
            "post-restart reused tokens".to_string(),
            report.post_restart_reused_tokens.to_string(),
        ],
        vec![
            "warm-restart mean TTFT us".to_string(),
            format!("{:.0}", report.warm_restart_mean_ttft_us),
        ],
        vec![
            "cold-restart mean TTFT us".to_string(),
            format!("{:.0}", report.cold_restart_mean_ttft_us),
        ],
        vec![
            "cold-tier demotions".to_string(),
            report.demotions.to_string(),
        ],
        vec![
            "cold-tier repromotions".to_string(),
            report.repromotions.to_string(),
        ],
    ];
    print_table(
        "Snapshot warm restart (Llama2-7B sim, 6 shared-prefix requests, restart after 3)",
        &["Metric", "Value"],
        &table,
    );
    if write {
        let record = ExperimentRecord {
            id: "snapshot_warm_restart".to_string(),
            title: "KV snapshot warm restart: persist the prefix trie, restart, serve warm"
                .to_string(),
            note: format!(
                "6 requests sharing a 192-word preamble on the Llama2-7B sim profile, snapshot + \
                 restart after request 3 (the trace's restart marker), best of {repetitions} \
                 runs; all answers asserted byte-identical to cold sequential runs; includes \
                 cold-tier demote/repromote and truncated/corrupted/wrong-fingerprint drills"
            ),
            rows: &report,
        };
        let path = write_record(&record);
        println!("(written to {})", path.display());
    }
    report
}

// ---------------------------------------------------------------------------
// Multi-turn chat — prefix reuse, sampled replay across restarts, greedy
// byte-identity
// ---------------------------------------------------------------------------

/// Reuse measurement for one served chat turn.
#[derive(Debug, Clone, Serialize)]
pub struct ChatTurnRow {
    /// Conversation index within its trace.
    pub conversation: usize,
    /// Zero-based turn within the conversation.
    pub turn: usize,
    /// Whether the conversation interleaves tool-result segments.
    pub tool_loop: bool,
    /// Tokens in this turn's transcript (the request context).
    pub context_tokens: usize,
    /// Prompt tokens served from the prefix trie instead of re-prefilled.
    pub prefix_reused_tokens: usize,
    /// `prefix_reused_tokens / context_tokens`.
    pub reuse_ratio: f64,
}

/// Full payload of the multi-turn chat record.
#[derive(Debug, Clone, Serialize)]
pub struct ChatMultiturnReport {
    /// Conversations per trace (one plain-chat trace, one tool-loop trace).
    pub conversations: usize,
    /// Turns per conversation.
    pub turns: usize,
    /// Total requests served per leg (both traces).
    pub requests: usize,
    /// Per-turn reuse rows (turns >= 1 only; turn 0 is a cold prefill).
    pub turn_rows: Vec<ChatTurnRow>,
    /// Smallest reuse ratio over every turn >= 1.
    pub min_reuse_ratio: f64,
    /// Every turn >= 1 reused at least 90 % of its transcript from the trie.
    pub reuse_ok: bool,
    /// Every snapshot restore loaded cleanly.
    pub snapshot_restored: bool,
    /// Sampled conversations replayed bit-identically (tokens and answers)
    /// on a fresh engine restored from the original engine's snapshot.
    pub sampled_replay_identical: bool,
    /// Greedy serving answers matched the solo sequential pipeline byte for
    /// byte, turn by turn.
    pub greedy_byte_identical: bool,
}

/// Multi-turn chat with the default settings; record written to
/// `results/chat_multiturn.json`.
///
/// # Panics
///
/// Panics if serving fails.
pub fn chat_multiturn() -> ChatMultiturnReport {
    chat_multiturn_with(true)
}

/// The serving story behind multi-turn chat: each turn's prompt is the
/// whole prior transcript plus one new user message, so a conversation's
/// turns should hit the prefix trie for nearly the entire prompt. Two
/// traces run — plain chat and an agentic tool-call loop whose transcripts
/// interleave fixed tool-result segments — and three properties are
/// asserted per trace:
///
/// 1. **Prefix reuse** — every turn >= 1 serves at least 90 % of its
///    transcript tokens from the trie (the prior turn published them).
/// 2. **Sampled replay across restarts** — conversations decoded through
///    per-request [`SamplingParams`] chains reproduce the exact same
///    tokens on a fresh engine restored from the first engine's snapshot
///    (the snapshot carries the tokenizer's interning order, so the
///    logits — and the seeded draws over them — are bit-identical).
/// 3. **Greedy byte-identity** — requests without sampling match a solo
///    [`CocktailPipeline`] run of the same conversations byte for byte,
///    exactly as the engine's continuous-batching contract promises.
///
/// The drill is timing-free, so every assertion also runs in the tier-1
/// test suite.
///
/// # Panics
///
/// Panics if serving fails.
pub fn chat_multiturn_with(write: bool) -> ChatMultiturnReport {
    let conversations = 2;
    let turns = 3;
    let config = CocktailConfig::default()
        .with_chunk_size(16)
        .expect("chunk size is valid");
    let profile = ModelProfile::llama2_7b_sim;
    let traces: Vec<(bool, u64, Vec<TrafficRequest>)> = vec![
        (false, 0xC4A7_0001, {
            let config = TrafficConfig::small(conversations)
                .with_chat_turns(turns, 12)
                .with_max_new_tokens(4);
            TrafficGenerator::new(config, 0xC4A7_0001).generate()
        }),
        (true, 0xC4A7_0002, {
            let config = TrafficConfig::small(conversations)
                .with_chat_tool_loop(turns, 8)
                .with_max_new_tokens(4);
            TrafficGenerator::new(config, 0xC4A7_0002).generate()
        }),
    ];

    let fresh = || {
        ServingEngine::new(profile(), config.clone())
            .expect("serving config is valid")
            .with_prefix_cache(PrefixCacheConfig::default())
    };
    // Submit one turn's worth of requests, drain the engine, return the
    // outcomes. Turn t of a conversation is only submitted after turn t-1
    // completed — the chat contract — and every leg below submits the
    // whole trace in the same order, so each engine interns the vocabulary
    // identically and stays byte-comparable.
    let serve_turns = |engine: &mut ServingEngine,
                       trace: &[TrafficRequest],
                       sampling_seed: Option<u64>|
     -> Vec<RequestOutcome> {
        let mut outcomes = Vec::new();
        for turn in 0..turns {
            for request in trace
                .iter()
                .filter(|r| r.chat.expect("chat mode is on").turn == turn)
            {
                let mut builder = ServeRequest::builder()
                    .context(request.task.context.clone())
                    .query(request.task.query.clone())
                    .max_new_tokens(request.max_new_tokens);
                if let Some(base_seed) = sampling_seed {
                    builder = builder.sampling(
                        SamplingParams::for_request(base_seed, request.index as u64)
                            .with_temperature(0.9)
                            .with_top_k(12),
                    );
                }
                engine.submit(builder.build());
            }
            outcomes.extend(engine.run_until_idle().expect("serving succeeds"));
        }
        outcomes
    };

    let mut turn_rows = Vec::new();
    let mut requests = 0usize;
    let mut snapshot_restored = true;
    let mut sampled_replay_identical = true;
    let mut greedy_byte_identical = true;
    for (tool_loop, base_seed, trace) in &traces {
        requests += trace.len();

        // Greedy leg: turn-by-turn serving vs the solo sequential pipeline.
        let pipeline =
            CocktailPipeline::new(profile(), config.clone()).expect("pipeline config is valid");
        let reference: Vec<CocktailOutcome> = trace
            .iter()
            .map(|r| {
                pipeline
                    .run(&r.task.context, &r.task.query, r.max_new_tokens)
                    .expect("solo reference run succeeds")
            })
            .collect();
        let mut greedy_engine = fresh();
        let greedy = serve_turns(&mut greedy_engine, trace, None);
        for (outcome, solo) in greedy.iter().zip(&reference) {
            greedy_byte_identical &= outcome.outcome.answer == solo.answer
                && outcome.outcome.generated_tokens == solo.generated_tokens;
        }
        for (outcome, request) in greedy.iter().zip(trace.iter()) {
            let chat = request.chat.expect("chat mode is on");
            if chat.turn == 0 {
                continue;
            }
            let context_tokens = outcome.stats.context_tokens;
            let reused = outcome.stats.prefix_reused_tokens;
            turn_rows.push(ChatTurnRow {
                conversation: chat.conversation,
                turn: chat.turn,
                tool_loop: *tool_loop,
                context_tokens,
                prefix_reused_tokens: reused,
                reuse_ratio: reused as f64 / context_tokens.max(1) as f64,
            });
        }

        // Sampled leg: serve with per-request sampler chains, snapshot the
        // engine, restore onto a fresh one, and replay the whole trace.
        let mut sampled_engine = fresh();
        let first = serve_turns(&mut sampled_engine, trace, Some(*base_seed));
        let snapshot = sampled_engine.snapshot_bytes();
        drop(sampled_engine);
        let mut restored_engine = fresh();
        let restore = restored_engine.restore_from_bytes(&snapshot);
        snapshot_restored &= restore.restored;
        let replay = serve_turns(&mut restored_engine, trace, Some(*base_seed));
        sampled_replay_identical &= first.len() == replay.len();
        for (a, b) in first.iter().zip(&replay) {
            sampled_replay_identical &= a.outcome.answer == b.outcome.answer
                && a.outcome.generated_tokens == b.outcome.generated_tokens;
        }
    }
    let min_reuse_ratio = turn_rows
        .iter()
        .map(|row| row.reuse_ratio)
        .fold(f64::INFINITY, f64::min);
    let reuse_ok = turn_rows
        .iter()
        .all(|row| row.prefix_reused_tokens as f64 >= 0.9 * row.context_tokens as f64);

    let report = ChatMultiturnReport {
        conversations,
        turns,
        requests,
        turn_rows,
        min_reuse_ratio,
        reuse_ok,
        snapshot_restored,
        sampled_replay_identical,
        greedy_byte_identical,
    };
    let table: Vec<Vec<String>> = report
        .turn_rows
        .iter()
        .map(|row| {
            vec![
                if row.tool_loop { "tool-loop" } else { "chat" }.to_string(),
                row.conversation.to_string(),
                row.turn.to_string(),
                row.context_tokens.to_string(),
                row.prefix_reused_tokens.to_string(),
                format!("{:.3}", row.reuse_ratio),
            ]
        })
        .collect();
    print_table(
        "Multi-turn chat (Llama2-7B sim, 2 conversations x 3 turns, plain + tool-loop)",
        &[
            "Trace",
            "Conversation",
            "Turn",
            "Context tokens",
            "Reused tokens",
            "Reuse ratio",
        ],
        &table,
    );
    println!(
        "min reuse ratio {:.3}, sampled replay identical: {}, greedy byte-identical: {}",
        report.min_reuse_ratio, report.sampled_replay_identical, report.greedy_byte_identical
    );
    if write {
        let record = ExperimentRecord {
            id: "chat_multiturn".to_string(),
            title: "Multi-turn chat: prefix reuse, sampled replay across restarts, greedy \
                    identity"
                .to_string(),
            note: "2 conversations x 3 turns per trace (plain chat and agentic tool-call loop) \
                   on the Llama2-7B sim profile; every turn >= 1 must reuse >= 90 % of its \
                   transcript from the prefix trie, sampled conversations must replay \
                   bit-identically on a snapshot-restored engine, and greedy requests must \
                   match the solo sequential pipeline byte for byte"
                .to_string(),
            rows: &report,
        };
        let path = write_record(&record);
        println!("(written to {})", path.display());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chat_multiturn_holds_its_invariants() {
        let report = chat_multiturn_with(false);
        assert_eq!(report.requests, 2 * report.conversations * report.turns);
        // One row per turn >= 1 per conversation per trace.
        assert_eq!(
            report.turn_rows.len(),
            2 * report.conversations * (report.turns - 1)
        );
        assert!(
            report.reuse_ok,
            "a turn reused under 90% of its transcript (min ratio {:.3})",
            report.min_reuse_ratio
        );
        assert!(report.min_reuse_ratio >= 0.9);
        assert!(report.snapshot_restored);
        assert!(report.sampled_replay_identical);
        assert!(report.greedy_byte_identical);
    }

    #[test]
    fn snapshot_warm_restart_holds_its_invariants() {
        let report = snapshot_warm_restart_with(1, false);
        assert!(report.restored);
        assert_eq!(report.restored_nodes, report.snapshot_nodes);
        assert!(report.byte_identical);
        assert!(report.post_restart_reused_tokens > 0);
        assert!(
            report.warm_restart_mean_ttft_us < report.cold_restart_mean_ttft_us,
            "warm restart {:.0} us must beat the cold control {:.0} us",
            report.warm_restart_mean_ttft_us,
            report.cold_restart_mean_ttft_us
        );
        assert!(report.roundtrip_byte_identical);
        assert!(report.demotions > 0);
        assert!(report.repromotions > 0);
        assert!(report.repromoted_reused_tokens > 0);
        assert!(report.repromoted_byte_identical);
        assert!(report.truncated_cold_start);
        assert!(report.corrupted_cold_start);
        assert!(report.wrong_fingerprint_cold_start);
    }

    #[test]
    fn fig1_most_chunks_are_irrelevant() {
        let rows = fig1_heatmap();
        assert_eq!(rows.len(), 10);
        for row in &rows {
            assert_eq!(row.scores.len(), 89);
            assert!(
                row.highly_relevant_fraction < 0.25,
                "query {} has {}% highly relevant chunks",
                row.query,
                row.highly_relevant_fraction * 100.0
            );
        }
    }

    #[test]
    fn fig4_cocktail_always_below_fp16() {
        let rows = fig4_memory();
        for model in model_suite() {
            let get = |method: &str| {
                rows.iter()
                    .find(|r| r.model == model.name() && r.method == method)
                    .unwrap()
                    .gpu_memory_gib
            };
            assert!(get("Cocktail") < get("FP16"), "{}", model.name());
            assert!(get("Atom") < get("FP16"));
        }
    }

    #[test]
    fn fig5_cocktail_has_lowest_tpot() {
        let rows = fig5_tpot();
        for model in model_suite() {
            let model_rows: Vec<&TpotRow> =
                rows.iter().filter(|r| r.model == model.name()).collect();
            let cocktail = model_rows
                .iter()
                .find(|r| r.method == "Cocktail")
                .unwrap()
                .tpot_us;
            for row in &model_rows {
                assert!(
                    cocktail <= row.tpot_us + 1e-9,
                    "{}: {} has lower TPOT than Cocktail",
                    model.name(),
                    row.method
                );
            }
        }
    }

    #[test]
    fn serving_throughput_batched_meets_or_beats_sequential() {
        // Two repetitions keep the tier-1 suite fast; no record is written
        // (the release-mode binary owns `results/serving_throughput.json`).
        let report = serving_throughput_with(2, false);
        assert_eq!(report.rows.len(), 3);
        for row in &report.rows {
            assert!(row.batched_tokens_per_s > 0.0);
            assert!(row.sequential_tokens_per_s > 0.0);
            assert!(row.hwsim_tokens_per_s.is_some());
            if row.batch >= 2 {
                // The strict batched >= sequential comparison lives in the
                // release-mode `serving_throughput` binary (run by CI);
                // asserting wall-clock ratios in the debug test suite would
                // make tier-1 hostage to scheduler noise on loaded runners.
                // The analytic prediction, by contrast, is deterministic.
                assert!(
                    row.hwsim_speedup_vs_batch1.unwrap() > 1.0,
                    "hwsim must predict a batching gain"
                );
            }
        }
        // Per-request stats carry the timing breakdown into the JSON.
        assert_eq!(report.request_stats.len(), 4);
        for stats in &report.request_stats {
            assert!(stats.timings.prefill_us > 0);
            assert!(stats.cache_bytes > 0);
            assert!(stats.admitted_step.is_some());
            assert!(stats.finished_step.is_some());
        }
    }

    #[test]
    fn ttft_prefix_reuse_reuses_every_follower_byte_identically() {
        // One repetition keeps tier-1 fast; byte-identity against the cold
        // sequential reference is asserted inside. The strict warm-vs-cold
        // wall-clock comparison lives in the release-mode binary run by CI
        // (debug timings on loaded runners are too noisy to gate on).
        let report = ttft_prefix_reuse_with(1, false);
        assert_eq!(report.rows.len(), report.groups * report.requests_per_group);
        assert!(report.requests_per_group >= 2);
        let cold: Vec<_> = report.rows.iter().filter(|r| r.cold).collect();
        assert_eq!(
            cold.len(),
            report.groups,
            "exactly one cold leader per group"
        );
        for row in report.rows.iter().filter(|r| !r.cold) {
            assert!(row.prefix_reused_tokens > 0);
            // Followers reuse at least the shared preamble (192 words).
            assert!(
                row.prefix_reused_tokens >= 192,
                "request {} reused only {} tokens",
                row.request,
                row.prefix_reused_tokens
            );
        }
        // Every group saw reuse.
        for g in 0..report.groups {
            assert!(report
                .rows
                .iter()
                .any(|r| r.group == g && !r.cold && r.prefix_reused_tokens > 0));
        }
        assert!(report.prefix_cache.hits >= (report.rows.len() - report.groups) as u64);
    }

    #[test]
    fn prefix_trie_dedup_shares_preambles_and_evicts_partially() {
        // Byte-identity to trie-off serving is asserted inside the
        // experiment (it panics on divergence); all numbers here are
        // deterministic, so the strict checks can run in tier-1 too.
        let report = prefix_trie_dedup_with(false);
        assert!(report.byte_identical);
        assert_eq!(report.rows.len(), report.groups * report.requests_per_group);
        assert!(
            report.trie_resident_bytes < report.lcp_baseline_bytes,
            "branching traffic must share strictly fewer bytes than whole-sequence caching: \
             {} >= {}",
            report.trie_resident_bytes,
            report.lcp_baseline_bytes
        );
        // Each group's first branch is cold; every later branch resumes
        // from at least the shared preamble.
        let cold = report.rows.iter().filter(|r| r.cold).count();
        assert_eq!(cold, report.groups, "exactly one cold leader per group");
        for row in report.rows.iter().filter(|r| !r.cold) {
            assert!(
                row.prefix_reused_tokens >= report.preamble_words,
                "request {} reused only {} tokens of a {}-word preamble",
                row.request,
                row.prefix_reused_tokens,
                report.preamble_words
            );
        }
        // Divergence splits each group's leader node exactly where the
        // branches fork.
        assert!(report.dedup_stats.node_splits >= report.groups as u64);
        assert!(
            report.dedup_stats.nodes > report.groups,
            "branch leaves exist"
        );
        // Budget pressure trims leaf-ward: partial evictions observed.
        assert!(
            report.pressure_stats.partial_evictions > 0,
            "pressure phase saw no partial eviction"
        );
    }

    #[test]
    fn streaming_latency_streams_cancels_and_stays_in_budget() {
        // One repetition keeps tier-1 fast; byte-identity of survivors and
        // cancelled-prefix identity are asserted inside the experiment.
        let report = streaming_latency_with(1, false);
        assert_eq!(report.rows.len(), report.requests);
        assert!(report.budget_ok, "KV budget invariant violated");
        assert!(report.rows.iter().any(|r| r.cancelled));
        assert!(report.rows.iter().any(|r| !r.cancelled));
        for row in &report.rows {
            assert!(row.first_token_step.is_some());
            assert!(row.finished_step.is_some());
            if row.cancelled {
                assert_eq!(Some(row.generated_tokens), row.cancel_after_tokens);
                assert!(
                    row.generated_tokens < row.max_new_tokens,
                    "request {} was cancelled but decoded its full budget",
                    row.request
                );
            } else {
                assert_eq!(row.generated_tokens, row.max_new_tokens);
            }
            // Completion is measured at least one decode round after the
            // first token for any request streaming >= 2 tokens, so the
            // ordering is robust even on noisy hosts.
            if row.generated_tokens >= 2 {
                assert!(row.first_token_us < row.completion_us);
            }
        }
        assert!(report.mean_first_token_us < report.mean_completion_us);
    }

    #[test]
    fn fig6_has_oom_points_and_crossover() {
        let rows = fig6_throughput();
        let oom_fp16 = rows
            .iter()
            .filter(|r| r.method == "FP16" && r.tokens_per_s.is_none())
            .count();
        assert!(oom_fp16 > 0, "FP16 must hit OOM somewhere in the sweep");
        let at = |method: &str, batch: usize| {
            rows.iter()
                .find(|r| r.method == method && r.batch == batch)
                .and_then(|r| r.tokens_per_s)
        };
        // Small batch: Cocktail at or below the uniform methods.
        assert!(at("Cocktail", 1).unwrap() <= at("Atom", 1).unwrap() + 1e-9);
        // Large batch (both still in memory): Cocktail ahead.
        let batch = 64;
        assert!(at("Cocktail", batch).unwrap() > at("Atom", batch).unwrap());
        // KVQuant never overtakes Cocktail.
        for b in [1usize, 8, 64] {
            if let (Some(c), Some(k)) = (at("Cocktail", b), at("KVQuant", b)) {
                assert!(c > k, "batch {b}");
            }
        }
    }

    #[test]
    fn replica_affinity_routes_reuse_and_leaves_no_cross_replica_leaks() {
        // One repetition keeps tier-1 fast; the strict throughput-scaling
        // and affinity-vs-round-robin rate gates live in the release-mode
        // `replica_affinity` binary run by CI (debug wall-clock ratios are
        // hostage to scheduler noise). Everything asserted here is
        // deterministic: placements, reuse counts, byte-identity, leaks.
        let report = replica_affinity_with(1, false);
        assert_eq!(report.replicas, 2);
        assert!(
            report.routed_byte_identical,
            "an in-process routed output diverged from its replica's solo replay"
        );
        assert!(
            report.gateway_byte_identical,
            "a fleet-gateway stream diverged from its replica's solo replay"
        );
        assert!(
            report.affinity_reused_tokens > report.round_robin_reused_tokens,
            "affinity reused {} tokens, round-robin {}",
            report.affinity_reused_tokens,
            report.round_robin_reused_tokens
        );
        // Tenant leaders go least-loaded, every follower by fingerprint.
        assert!(report.affinity_routed > 0);
        assert!(report.least_loaded_routed > 0);
        assert_eq!(
            report.affinity_routed + report.least_loaded_routed,
            report.requests
        );
        // The fleet gateway spread the trace over both replicas and its
        // stats endpoint saw the routing counters.
        assert_eq!(report.gateway_replica_requests.len(), report.replicas);
        assert!(report.gateway_replica_requests.iter().all(|&n| n > 0));
        assert_eq!(
            report.gateway_affinity_routed + report.gateway_least_loaded_routed,
            report.requests
        );
        // The hwsim fleet model predicts exactly linear scaling.
        assert!((report.predicted_scaling - report.replicas as f64).abs() < 1e-9);
        // Storm: both outcomes occurred, survivors matched, nothing leaked
        // on either replica.
        assert!(report.storm_cancelled > 0);
        assert!(report.storm_completed > 0);
        assert_eq!(
            report.storm_cancelled + report.storm_completed,
            report.storm_requests
        );
        assert!(report.storm_survivors_byte_identical);
        assert_eq!(report.storm_leaks.len(), report.replicas);
        for leak in &report.storm_leaks {
            assert_eq!(
                leak.leaked_kv_bytes, 0,
                "replica {} leaked KV bytes",
                leak.replica
            );
            assert_eq!(
                leak.pinned_entries, 0,
                "replica {} still holds pins",
                leak.replica
            );
        }
    }
}
