//! Regenerates Table IV: the encoder comparison.
fn main() {
    cocktail_bench::experiments::table4_encoders(cocktail_bench::INSTANCES_PER_CELL);
}
