//! Runs the multi-turn chat experiment and *enforces* its acceptance
//! criteria: every turn after the first must serve at least 90 % of its
//! transcript tokens from the prefix trie, sampled conversations must
//! replay bit-identically on a fresh engine restored from the first
//! engine's snapshot, and greedy conversations must match the solo
//! sequential pipeline byte for byte. Exits non-zero when any criterion
//! fails, so CI catches chat-serving regressions.
use std::process::ExitCode;

fn main() -> ExitCode {
    let report = cocktail_bench::experiments::chat_multiturn();
    let mut ok = true;
    if !report.reuse_ok {
        eprintln!(
            "FAIL: a turn >= 1 reused under 90% of its transcript from the prefix trie (min \
             ratio {:.3})",
            report.min_reuse_ratio
        );
        ok = false;
    }
    if !report.snapshot_restored {
        eprintln!("FAIL: a snapshot did not restore onto the fresh engine");
        ok = false;
    }
    if !report.sampled_replay_identical {
        eprintln!(
            "FAIL: a sampled conversation diverged when replayed on the snapshot-restored engine"
        );
        ok = false;
    }
    if !report.greedy_byte_identical {
        eprintln!("FAIL: a greedy conversation diverged from the solo sequential pipeline");
        ok = false;
    }
    if ok {
        println!(
            "OK: {} chat requests ({} conversations x {} turns, plain + tool-loop) served with \
             min turn reuse ratio {:.3}, sampled replay bit-identical across a snapshot restart, \
             greedy answers byte-identical to the solo pipeline",
            report.requests, report.conversations, report.turns, report.min_reuse_ratio
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
