//! Measures prefill throughput with the hot kernels pinned to one thread
//! versus the host's configured thread count, and *enforces* the kernel-
//! parallelism acceptance criteria: the scalar and parallel runs must be
//! byte-identical (KV tensors, hidden states and logits), neither the
//! engine's worker pool nor the process-wide kernel pool may re-spawn a
//! thread across timing rounds (the pools persist — that is the point of
//! the design), and on a multi-core host the parallel configuration must
//! not lose throughput to the scalar one. Exits non-zero when any
//! criterion fails, so CI catches kernel-dispatch regressions.
use std::process::ExitCode;

fn main() -> ExitCode {
    let report = cocktail_bench::experiments::kernel_scaling();
    let mut ok = true;
    if !report.bit_identical {
        eprintln!("FAIL: scalar and parallel prefill outputs diverged");
        ok = false;
    }
    if !report.engine_pool_spawns_flat {
        eprintln!("FAIL: the engine worker pool re-spawned threads across rounds");
        ok = false;
    }
    if !report.kernel_pool_spawns_flat {
        eprintln!("FAIL: the kernel pool re-spawned threads across rounds");
        ok = false;
    }
    if report.score_work < report.parallel_threshold {
        eprintln!(
            "FAIL: the prompt's score work ({}) does not clear the parallel threshold ({}) — \
             the experiment never exercised the parallel path",
            report.score_work, report.parallel_threshold
        );
        ok = false;
    }
    if report.parallel_threads >= 2 && report.host_cores >= 2 {
        // NaN must fail too, so require an explicit >= ordering.
        let ordered = report
            .parallel_tokens_per_s
            .partial_cmp(&report.scalar_tokens_per_s)
            .is_some_and(|o| o != std::cmp::Ordering::Less);
        if !ordered {
            eprintln!(
                "FAIL: parallel prefill ({:.0} tokens/s at {} threads) lost throughput to the \
                 scalar kernels ({:.0} tokens/s)",
                report.parallel_tokens_per_s, report.parallel_threads, report.scalar_tokens_per_s
            );
            ok = false;
        }
    } else {
        println!(
            "note: a single kernel thread or a single physical core on this host — the \
             throughput comparison degenerates and only identity/pool criteria are enforced"
        );
    }
    if ok {
        println!(
            "OK: {:.0} tokens/s scalar vs {:.0} tokens/s at {} threads ({:.2}x), byte-identical, \
             pools never re-spawned",
            report.scalar_tokens_per_s,
            report.parallel_tokens_per_s,
            report.parallel_threads,
            report.speedup
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
