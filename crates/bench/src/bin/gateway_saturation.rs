//! Runs the gateway-saturation experiment and *enforces* its acceptance
//! criteria: every byte a client receives over SSE must equal the answer
//! the in-process engine produces for the same request, the gateway's
//! steady-state token rate must be at least 0.9x the in-process rate (the
//! HTTP/SSE/channel overhead budget), the disconnect storm must actually
//! cancel some requests while others complete, survivors must stay
//! byte-identical to their solo runs, and the settled engine must hold
//! zero KV bytes and zero pinned prefix entries. Exits non-zero when any
//! criterion fails, so CI catches gateway regressions.
use std::process::ExitCode;

fn main() -> ExitCode {
    let report = cocktail_bench::experiments::gateway_saturation();
    let mut ok = true;
    for row in &report.rows {
        if !row.byte_identical {
            eprintln!(
                "FAIL: request {} streamed bytes that differ from its in-process answer",
                row.request
            );
            ok = false;
        }
        if row.streamed_tokens == 0 {
            eprintln!("FAIL: request {} never streamed a token", row.request);
            ok = false;
        }
    }
    if report.relative_throughput < 0.9 {
        eprintln!(
            "FAIL: gateway throughput {:.1} tok/s is below 0.9x the in-process {:.1} tok/s \
             ({:.2}x)",
            report.gateway_tokens_per_s, report.in_process_tokens_per_s, report.relative_throughput
        );
        ok = false;
    }
    if report.storm_cancelled == 0 {
        eprintln!("FAIL: the disconnect storm cancelled nothing");
        ok = false;
    }
    if report.storm_completed == 0 {
        eprintln!("FAIL: no request survived the disconnect storm");
        ok = false;
    }
    if !report.storm_survivors_byte_identical {
        eprintln!("FAIL: a storm survivor diverged from its solo sequential run");
        ok = false;
    }
    if report.leaked_kv_bytes != 0 {
        eprintln!(
            "FAIL: {} KV bytes still held by requests after the storm settled ({} charged, {} \
             of them legitimately cache-resident)",
            report.leaked_kv_bytes, report.kv_bytes_after_storm, report.prefix_resident_after_storm
        );
        ok = false;
    }
    if report.pinned_entries_after_storm != 0 {
        eprintln!(
            "FAIL: {} prefix-cache pins still held after the storm settled",
            report.pinned_entries_after_storm
        );
        ok = false;
    }
    if ok {
        println!(
            "OK: byte-identity held for all {} streams, gateway at {:.2}x in-process \
             throughput, storm left zero leaks",
            report.requests, report.relative_throughput
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
