//! Regenerates Figure 5: time per output token per method and model.
fn main() {
    cocktail_bench::experiments::fig5_tpot();
}
