//! Regenerates Figure 4: GPU memory per method and model.
fn main() {
    cocktail_bench::experiments::fig4_memory();
}
