//! `bench-diff`: compares two `results/` directories metric by metric.
//!
//! ```bash
//! bench-diff <baseline_dir> <candidate_dir> [--threshold 0.05]
//! bench-diff --self-test
//! ```
//!
//! Every numeric leaf of every record present in both directories is
//! compared; deltas above the threshold are listed and make the process
//! exit with status 1, so a CI job can gate on perf/accuracy regressions.
//! `--self-test` exercises the parse/flatten/diff machinery on synthetic
//! records in a temporary directory and exits 0 on success.

use cocktail_bench::diff::{diff_dirs, DirDiff};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Default relative-delta threshold (5 %).
const DEFAULT_THRESHOLD: f64 = 0.05;
/// Maximum number of offending metrics printed per file.
const MAX_PRINTED: usize = 10;

fn usage() -> ExitCode {
    eprintln!("usage: bench-diff <baseline_dir> <candidate_dir> [--threshold REL]");
    eprintln!("       bench-diff --self-test");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--self-test") {
        return self_test();
    }
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threshold" {
            let Some(value) = iter.next() else {
                return usage();
            };
            match value.parse::<f64>() {
                Ok(t) if t >= 0.0 => threshold = t,
                _ => return usage(),
            }
        } else if arg.starts_with("--") {
            return usage();
        } else {
            dirs.push(PathBuf::from(arg));
        }
    }
    if dirs.len() != 2 {
        return usage();
    }

    match diff_dirs(&dirs[0], &dirs[1]) {
        Ok(diff) => report(&diff, threshold),
        Err(err) => {
            eprintln!("bench-diff: {err}");
            ExitCode::from(2)
        }
    }
}

/// Prints the comparison and converts it into an exit status.
fn report(diff: &DirDiff, threshold: f64) -> ExitCode {
    for name in &diff.missing_in_candidate {
        println!("! {name}: MISSING from candidate (record lost — fails the gate)");
    }
    for name in &diff.missing_in_baseline {
        println!("~ {name}: only in candidate (new experiment)");
    }
    let mut offending = 0usize;
    for file in &diff.files {
        let status = if file.max_abs_rel_delta() > threshold {
            "!"
        } else if file.deltas.is_empty() {
            "="
        } else {
            "."
        };
        println!(
            "{status} {}: {} metrics compared, {} changed, max |delta| {:.2}%",
            file.file,
            file.compared,
            file.deltas.len(),
            file.max_abs_rel_delta() * 100.0
        );
        if file.only_in_baseline > 0 {
            println!(
                "    {} metric path(s) lost from the candidate (fails the gate)",
                file.only_in_baseline
            );
        }
        for delta in file.deltas.iter().take(MAX_PRINTED) {
            if delta.rel_delta.abs() <= threshold {
                break; // sorted by |delta|: the rest are under threshold
            }
            offending += 1;
            println!(
                "    {:<50} {:>14.4} -> {:>14.4}  ({:+.2}%)",
                delta.path,
                delta.before,
                delta.after,
                delta.rel_delta * 100.0
            );
        }
        let hidden = file
            .deltas
            .iter()
            .skip(MAX_PRINTED)
            .filter(|d| d.rel_delta.abs() > threshold)
            .count();
        if hidden > 0 {
            offending += hidden;
            println!("    ... and {hidden} more above threshold");
        }
    }
    if diff.has_regressions(threshold) {
        if diff.has_losses() {
            println!("\nFAIL: the candidate lost record files or metric paths the baseline had");
        } else {
            println!(
                "\nFAIL: {offending} metric(s) moved more than {:.2}% (max {:.2}%)",
                threshold * 100.0,
                diff.max_abs_rel_delta() * 100.0
            );
        }
        ExitCode::from(1)
    } else {
        println!(
            "\nOK: no metric moved more than {:.2}% across {} file(s)",
            threshold * 100.0,
            diff.files.len()
        );
        ExitCode::SUCCESS
    }
}

/// Builds two synthetic result directories and checks the diff verdicts.
fn self_test() -> ExitCode {
    let root = std::env::temp_dir().join(format!("bench-diff-self-test-{}", std::process::id()));
    let baseline = root.join("baseline");
    let candidate = root.join("candidate");
    let result = run_self_test(&baseline, &candidate);
    let _ = std::fs::remove_dir_all(&root);
    match result {
        Ok(()) => {
            println!("bench-diff self-test ok");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("bench-diff self-test FAILED: {message}");
            ExitCode::from(1)
        }
    }
}

fn run_self_test(baseline: &Path, candidate: &Path) -> Result<(), String> {
    let write = |dir: &Path, name: &str, body: &str| -> Result<(), String> {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        std::fs::write(dir.join(name), body).map_err(|e| e.to_string())
    };
    write(
        baseline,
        "fig5_tpot.json",
        r#"{"id":"fig5","rows":[{"method":"Cocktail","tpot_us":100.0},{"method":"FP16","tpot_us":200.0}]}"#,
    )?;
    write(
        candidate,
        "fig5_tpot.json",
        r#"{"id":"fig5","rows":[{"method":"Cocktail","tpot_us":103.0},{"method":"FP16","tpot_us":200.0}]}"#,
    )?;
    // New-on-candidate files are additions and never fail the gate.
    write(candidate, "new_only.json", r#"{"id":"new","rows":[]}"#)?;

    let diff = diff_dirs(baseline, candidate).map_err(|e| e.to_string())?;
    if diff.files.len() != 1 {
        return Err(format!("expected 1 shared file, got {}", diff.files.len()));
    }
    if !diff.missing_in_candidate.is_empty()
        || diff.missing_in_baseline != vec!["new_only.json".to_string()]
    {
        return Err("missing-file bookkeeping is wrong".to_string());
    }
    let max = diff.max_abs_rel_delta();
    if (max - 0.03).abs() > 1e-9 {
        return Err(format!("expected max delta 3%, got {:.4}%", max * 100.0));
    }
    // 3 % moves: fails a 1 % gate, passes a 5 % gate.
    if !diff.has_regressions(0.01) {
        return Err("a 3% move must exceed a 1% threshold".to_string());
    }
    if diff.has_regressions(0.05) {
        return Err("a 3% move must pass a 5% threshold".to_string());
    }
    // The report path must agree with the verdicts.
    if report(&diff, 0.01) != ExitCode::from(1) {
        return Err("report should fail at the 1% threshold".to_string());
    }
    if report(&diff, 0.05) != ExitCode::SUCCESS {
        return Err("report should pass at the 5% threshold".to_string());
    }

    // A record file lost from the candidate must fail regardless of the
    // threshold.
    write(baseline, "lost.json", r#"{"id":"lost","rows":[{"v":1.0}]}"#)?;
    let diff = diff_dirs(baseline, candidate).map_err(|e| e.to_string())?;
    if !diff.has_losses() {
        return Err("a record missing from the candidate must count as a loss".to_string());
    }
    if report(&diff, f64::INFINITY) != ExitCode::from(1) {
        return Err("report should fail when a record file disappeared".to_string());
    }
    Ok(())
}
