//! Regenerates Table II: the accuracy comparison across methods, datasets
//! and model profiles.
fn main() {
    cocktail_bench::experiments::table2_accuracy(cocktail_bench::INSTANCES_PER_CELL);
}
