//! Runs every table and figure of the paper in sequence and writes the
//! machine-readable records under `results/`.
use cocktail_bench::experiments;
use cocktail_bench::INSTANCES_PER_CELL;

fn main() {
    println!("Reproducing every table and figure of the Cocktail paper...");
    experiments::fig1_heatmap();
    experiments::table2_accuracy(INSTANCES_PER_CELL);
    experiments::table3_chunk_size(INSTANCES_PER_CELL);
    experiments::table4_encoders(INSTANCES_PER_CELL);
    experiments::table5_ablation(INSTANCES_PER_CELL);
    experiments::fig4_memory();
    experiments::fig5_tpot();
    experiments::fig6_throughput();
    experiments::fig7_alpha_beta(INSTANCES_PER_CELL);
    experiments::serving_throughput();
    experiments::ttft_prefix_reuse();
    experiments::streaming_latency();
    experiments::prefix_trie_dedup();
    experiments::gateway_saturation();
    experiments::replica_affinity();
    experiments::kernel_scaling();
    experiments::snapshot_warm_restart();
    experiments::chat_multiturn();
    println!("\nAll experiments complete; JSON records are under results/.");
}
