//! Regenerates Table III: the chunk-size sweep.
fn main() {
    cocktail_bench::experiments::table3_chunk_size(cocktail_bench::INSTANCES_PER_CELL);
}
