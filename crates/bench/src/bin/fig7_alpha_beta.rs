//! Regenerates Figure 7: the alpha / beta sensitivity sweeps.
fn main() {
    cocktail_bench::experiments::fig7_alpha_beta(cocktail_bench::INSTANCES_PER_CELL);
}
