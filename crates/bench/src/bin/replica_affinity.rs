//! Runs the replica-affinity experiment and *enforces* its acceptance
//! criteria: every routed output must equal the solo-pipeline replay of
//! the replica that served it (in-process, through the fleet gateway, and
//! for every disconnect-storm survivor), prefix-affinity routing must
//! strictly beat round-robin on prefix-reused tokens without losing
//! aggregate throughput, the measured 1-to-N gateway scaling must land
//! within tolerance of the extended `hwsim::deployment` fleet prediction,
//! and after a cross-replica cancellation storm every replica must hold
//! zero request-owned KV bytes and zero prefix pins. Exits non-zero when
//! any criterion fails, so CI catches routing regressions.
use std::process::ExitCode;

fn main() -> ExitCode {
    let report = cocktail_bench::experiments::replica_affinity();
    let mut ok = true;
    if !report.routed_byte_identical {
        eprintln!("FAIL: an in-process routed output diverged from its replica's solo replay");
        ok = false;
    }
    if !report.gateway_byte_identical {
        eprintln!("FAIL: a fleet-gateway stream diverged from its replica's solo replay");
        ok = false;
    }
    if report.affinity_reused_tokens <= report.round_robin_reused_tokens {
        eprintln!(
            "FAIL: prefix-affinity reused {} tokens, not strictly more than round-robin's {}",
            report.affinity_reused_tokens, report.round_robin_reused_tokens
        );
        ok = false;
    }
    if report.affinity_tokens_per_s < 0.9 * report.round_robin_tokens_per_s {
        eprintln!(
            "FAIL: affinity routing served {:.1} tok/s, below 0.9x round-robin's {:.1} tok/s",
            report.affinity_tokens_per_s, report.round_robin_tokens_per_s
        );
        ok = false;
    }
    if report.affinity_routed == 0 {
        eprintln!("FAIL: the router never placed a request by fingerprint match");
        ok = false;
    }
    // The hwsim fleet model must predict exactly linear scaling (replicas
    // share nothing), and the measured ratio must land inside the band
    // that prediction implies on shared hardware: the fleet may not beat
    // the linear prediction by more than measurement noise, and may not
    // fall below a fixed overhead budget of the single-replica rate (the
    // replicas are threads on the host CPU, so wall-clock speedup is
    // capped by the core count, not by the modeled accelerator).
    if (report.predicted_scaling - report.replicas as f64).abs() > 1e-9 {
        eprintln!(
            "FAIL: hwsim predicts {:.4}x scaling for {} share-nothing replicas, expected exactly \
             {}x",
            report.predicted_scaling, report.replicas, report.replicas
        );
        ok = false;
    }
    let scaling_floor = 0.75;
    let scaling_ceiling = 1.25 * report.predicted_scaling;
    if report.measured_scaling < scaling_floor || report.measured_scaling > scaling_ceiling {
        eprintln!(
            "FAIL: measured gateway scaling {:.2}x is outside [{:.2}x, {:.2}x] (floor: fleet \
             routing overhead budget; ceiling: 1.25x the hwsim {:.2}x fleet prediction)",
            report.measured_scaling, scaling_floor, scaling_ceiling, report.predicted_scaling
        );
        ok = false;
    }
    if report.gateway_replica_requests.contains(&0) {
        eprintln!(
            "FAIL: a fleet replica served no requests (split {:?})",
            report.gateway_replica_requests
        );
        ok = false;
    }
    if report.storm_cancelled == 0 {
        eprintln!("FAIL: the cross-replica storm cancelled nothing");
        ok = false;
    }
    if report.storm_completed == 0 {
        eprintln!("FAIL: no request survived the cross-replica storm");
        ok = false;
    }
    if !report.storm_survivors_byte_identical {
        eprintln!("FAIL: a storm survivor diverged from its replica's solo replay");
        ok = false;
    }
    for leak in &report.storm_leaks {
        if leak.leaked_kv_bytes != 0 {
            eprintln!(
                "FAIL: replica {} still holds {} request-owned KV bytes after the storm settled",
                leak.replica, leak.leaked_kv_bytes
            );
            ok = false;
        }
        if leak.pinned_entries != 0 {
            eprintln!(
                "FAIL: replica {} still holds {} prefix-cache pins after the storm settled",
                leak.replica, leak.pinned_entries
            );
            ok = false;
        }
    }
    if ok {
        println!(
            "OK: affinity reused {} vs round-robin {} tokens, fleet scaling {:.2}x (predicted \
             {:.2}x), byte-identity held everywhere, storm left zero leaks on all {} replicas",
            report.affinity_reused_tokens,
            report.round_robin_reused_tokens,
            report.measured_scaling,
            report.predicted_scaling,
            report.replicas
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
