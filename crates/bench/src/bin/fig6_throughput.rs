//! Regenerates Figure 6: throughput versus batch size with OOM cutoffs.
fn main() {
    cocktail_bench::experiments::fig6_throughput();
}
