//! Measures time-to-first-token under shared-prefix traffic and *enforces*
//! the prefix-reuse acceptance criterion: with >= 2 requests per prefix
//! group, the mean TTFT of prefix-reusing requests must be strictly below
//! the mean TTFT of cold requests, every follower must actually reuse
//! cached tokens, and every answer must be byte-identical to a cold run
//! (the experiment itself panics on divergence). Exits non-zero when the
//! criterion fails, so CI catches prefix-cache regressions.
use std::process::ExitCode;

fn main() -> ExitCode {
    let report = cocktail_bench::experiments::ttft_prefix_reuse();
    let mut ok = true;
    if report.requests_per_group < 2 {
        eprintln!(
            "FAIL: the experiment must run >= 2 requests per prefix group, got {}",
            report.requests_per_group
        );
        ok = false;
    }
    for group in 0..report.groups {
        let warm = report
            .rows
            .iter()
            .filter(|r| r.group == group && !r.cold)
            .count();
        if warm == 0 {
            eprintln!("FAIL: prefix group {group} never reused its cached prefix");
            ok = false;
        }
    }
    for row in report.rows.iter().filter(|r| !r.cold) {
        if row.prefix_reused_tokens == 0 {
            eprintln!(
                "FAIL: request {} is marked warm but reused no tokens",
                row.request
            );
            ok = false;
        }
    }
    // NaN (empty cold/warm sets) must also fail, so compare negatively.
    if report
        .warm_mean_ttft_us
        .partial_cmp(&report.cold_mean_ttft_us)
        != Some(std::cmp::Ordering::Less)
    {
        eprintln!(
            "FAIL: reused-prefix TTFT ({:.0} us) is not strictly below cold TTFT ({:.0} us)",
            report.warm_mean_ttft_us, report.cold_mean_ttft_us
        );
        ok = false;
    }
    if ok {
        println!(
            "OK: prefix reuse cut mean TTFT to {:.0} us from {:.0} us cold ({:.2}x), \
             byte-identically",
            report.warm_mean_ttft_us, report.cold_mean_ttft_us, report.warm_over_cold
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
