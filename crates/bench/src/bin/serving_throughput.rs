//! Measures batched-serving throughput against sequential pipeline runs
//! and the hwsim batch-throughput prediction, and *enforces* the serving
//! redesign's acceptance criterion: batched tokens/s must meet or beat
//! sequential tokens/s at every batch size >= 2. Exits non-zero when the
//! criterion fails, so CI catches batching regressions.
use std::process::ExitCode;

fn main() -> ExitCode {
    let report = cocktail_bench::experiments::serving_throughput();
    let mut ok = true;
    for row in &report.rows {
        if row.batch >= 2 && row.batched_tokens_per_s < row.sequential_tokens_per_s {
            eprintln!(
                "FAIL: batch {} reached {:.1} tok/s, below the sequential {:.1} tok/s",
                row.batch, row.batched_tokens_per_s, row.sequential_tokens_per_s
            );
            ok = false;
        }
    }
    if ok {
        println!("OK: batched serving met or beat sequential throughput at every batch >= 2");
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
