//! Runs branching shared-prefix traffic through the token-trie prefix
//! cache and *enforces* the trie acceptance criteria: divergent branches
//! over a common preamble must occupy strictly fewer shared bytes than the
//! whole-sequence (LCP map) baseline would charge, budget pressure must be
//! observed trimming the tree *partially* (branch leaves evicted while
//! shared ancestors survive), and every trie-on answer must be
//! byte-identical to trie-off serving (the experiment itself panics on
//! divergence). Every number is deterministic — no wall-clock timing —
//! so CI can gate on all of it. Exits non-zero when any criterion fails.
use std::process::ExitCode;

fn main() -> ExitCode {
    let report = cocktail_bench::experiments::prefix_trie_dedup();
    let mut ok = true;
    if !report.byte_identical {
        eprintln!("FAIL: trie-on serving diverged from trie-off serving");
        ok = false;
    }
    if report.requests_per_group < 2 {
        eprintln!(
            "FAIL: the experiment must run >= 2 branches per prefix group, got {}",
            report.requests_per_group
        );
        ok = false;
    }
    if report.trie_resident_bytes >= report.lcp_baseline_bytes {
        eprintln!(
            "FAIL: trie resident bytes ({}) are not strictly below the whole-sequence baseline \
             ({}) — branches did not share their preamble blocks",
            report.trie_resident_bytes, report.lcp_baseline_bytes
        );
        ok = false;
    }
    for group in 0..report.groups {
        let warm = report
            .rows
            .iter()
            .filter(|r| r.group == group && !r.cold)
            .count();
        if warm == 0 {
            eprintln!("FAIL: prefix group {group} never reused its cached preamble");
            ok = false;
        }
    }
    for row in report.rows.iter().filter(|r| !r.cold) {
        if row.prefix_reused_tokens < report.preamble_words {
            eprintln!(
                "FAIL: request {} reused {} tokens, below its {}-word shared preamble",
                row.request, row.prefix_reused_tokens, report.preamble_words
            );
            ok = false;
        }
    }
    if report.dedup_stats.node_splits < report.groups as u64 {
        eprintln!(
            "FAIL: only {} node splits for {} branching groups — divergence points were not \
             shared structurally",
            report.dedup_stats.node_splits, report.groups
        );
        ok = false;
    }
    if report.pressure_stats.partial_evictions == 0 {
        eprintln!(
            "FAIL: budget pressure ({} bytes, {}-node cap) never evicted partially — the trie \
             dropped whole contexts instead of trimming leaf-ward",
            report.pressure_budget_bytes, report.pressure_node_cap
        );
        ok = false;
    }
    if ok {
        println!(
            "OK: branching traffic held {} trie bytes vs {} whole-sequence bytes ({:.2}x) with \
             {} splits, byte-identically; pressure phase evicted {} nodes, {} of them partial",
            report.trie_resident_bytes,
            report.lcp_baseline_bytes,
            report.dedup_ratio,
            report.dedup_stats.node_splits,
            report.pressure_stats.evictions,
            report.pressure_stats.partial_evictions
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
