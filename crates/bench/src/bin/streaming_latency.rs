//! Measures streaming latency under cancelling traffic and *enforces* the
//! streaming acceptance criteria: every request's first streamed token must
//! arrive strictly before its completion (the point of streaming), every
//! client-cancelled request must decode strictly fewer tokens than its
//! budget (cancellation actually saves work), and the KV-budget invariant
//! must hold at every step with cancellations in flight. Byte-identity of
//! survivors against solo sequential runs is asserted inside the experiment
//! itself (it panics on divergence). Exits non-zero when any criterion
//! fails, so CI catches streaming and cancellation regressions.
use std::process::ExitCode;

fn main() -> ExitCode {
    let report = cocktail_bench::experiments::streaming_latency();
    let mut ok = true;
    if !report.rows.iter().any(|r| r.cancelled) || report.rows.iter().all(|r| r.cancelled) {
        eprintln!("FAIL: the traffic must mix cancelled and surviving requests");
        ok = false;
    }
    for row in &report.rows {
        // Strict per-request ordering; a single-token request could tie at
        // microsecond resolution, so it is covered by the mean check below.
        if row.generated_tokens >= 2 && row.first_token_us >= row.completion_us {
            eprintln!(
                "FAIL: request {} streamed its first token at {} us, not strictly before its \
                 completion at {} us",
                row.request, row.first_token_us, row.completion_us
            );
            ok = false;
        }
        if row.cancelled && row.generated_tokens >= row.max_new_tokens {
            eprintln!(
                "FAIL: cancelled request {} decoded {} of {} tokens — cancellation saved nothing",
                row.request, row.generated_tokens, row.max_new_tokens
            );
            ok = false;
        }
        if row.first_token_step.is_none() {
            eprintln!("FAIL: request {} never streamed a first token", row.request);
            ok = false;
        }
    }
    // NaN must fail too, so compare negatively.
    if report
        .mean_first_token_us
        .partial_cmp(&report.mean_completion_us)
        != Some(std::cmp::Ordering::Less)
    {
        eprintln!(
            "FAIL: mean first-token latency ({:.0} us) is not strictly below mean completion \
             latency ({:.0} us)",
            report.mean_first_token_us, report.mean_completion_us
        );
        ok = false;
    }
    if !report.budget_ok {
        eprintln!(
            "FAIL: KV usage peaked at {} bytes over the {}-byte budget",
            report.max_kv_bytes_in_use, report.budget_bytes
        );
        ok = false;
    }
    if ok {
        println!(
            "OK: first token after {:.0} us vs completion after {:.0} us on average, \
             cancellations saved work, budget held ({} of {} bytes peak)",
            report.mean_first_token_us,
            report.mean_completion_us,
            report.max_kv_bytes_in_use,
            report.budget_bytes
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
