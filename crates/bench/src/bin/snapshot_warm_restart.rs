//! Runs the snapshot warm-restart experiment and *enforces* its
//! acceptance criteria: the snapshot must restore with every trie node
//! intact, the restored engine's answers must be byte-identical to the
//! cold sequential reference, its mean TTFT must be strictly below a
//! cold-started control, snapshot -> restore -> snapshot must reproduce
//! the bytes exactly, the disk cold tier must demote and repromote KV
//! bit-identically, and truncated / bit-flipped / wrong-fingerprint
//! snapshots must all degrade to clean cold starts without a panic. Exits
//! non-zero when any criterion fails, so CI catches persistence
//! regressions.
use std::process::ExitCode;

fn main() -> ExitCode {
    let report = cocktail_bench::experiments::snapshot_warm_restart();
    let mut ok = true;
    if !report.restored {
        eprintln!("FAIL: the snapshot did not restore");
        ok = false;
    }
    if report.restored_nodes != report.snapshot_nodes {
        eprintln!(
            "FAIL: restore kept {} trie nodes, the snapshot captured {}",
            report.restored_nodes, report.snapshot_nodes
        );
        ok = false;
    }
    if !report.byte_identical {
        eprintln!("FAIL: a served answer diverged from the cold sequential reference");
        ok = false;
    }
    if report.post_restart_reused_tokens == 0 {
        eprintln!("FAIL: the restored engine reused no prompt tokens from the snapshot");
        ok = false;
    }
    if report.warm_restart_mean_ttft_us >= report.cold_restart_mean_ttft_us {
        eprintln!(
            "FAIL: warm-restart mean TTFT {:.0} us is not strictly below the cold-restart \
             control's {:.0} us",
            report.warm_restart_mean_ttft_us, report.cold_restart_mean_ttft_us
        );
        ok = false;
    }
    if !report.roundtrip_byte_identical {
        eprintln!("FAIL: snapshot -> restore -> snapshot did not reproduce the bytes");
        ok = false;
    }
    if report.demotions == 0 {
        eprintln!("FAIL: the capped cold-tier engine demoted nothing to disk");
        ok = false;
    }
    if report.repromotions == 0 {
        eprintln!("FAIL: re-serving the demoted prefix repromoted nothing from disk");
        ok = false;
    }
    if report.repromoted_reused_tokens == 0 {
        eprintln!("FAIL: the repromoted request reused no prompt tokens");
        ok = false;
    }
    if !report.repromoted_byte_identical {
        eprintln!("FAIL: the repromoted answer diverged from its cold first serve");
        ok = false;
    }
    if !report.truncated_cold_start {
        eprintln!("FAIL: a truncated snapshot did not degrade to a clean cold start");
        ok = false;
    }
    if !report.corrupted_cold_start {
        eprintln!("FAIL: a bit-flipped snapshot did not degrade to a clean cold start");
        ok = false;
    }
    if !report.wrong_fingerprint_cold_start {
        eprintln!("FAIL: a wrong-fingerprint snapshot did not degrade to a clean cold start");
        ok = false;
    }
    if ok {
        println!(
            "OK: snapshot of {} nodes ({} bytes) restored in full, warm-restart TTFT {:.0} us vs \
             cold {:.0} us ({:.2}x), byte-identity held everywhere, cold tier demoted {} and \
             repromoted {} bit-identically, all three corrupt-snapshot drills degraded cleanly",
            report.snapshot_nodes,
            report.snapshot_bytes,
            report.warm_restart_mean_ttft_us,
            report.cold_restart_mean_ttft_us,
            report.warm_over_cold,
            report.demotions,
            report.repromotions
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
