//! Regenerates Table V: the two-module ablation study.
fn main() {
    cocktail_bench::experiments::table5_ablation(cocktail_bench::INSTANCES_PER_CELL);
}
