//! Regenerates Figure 1: the query × chunk similarity heatmap.
fn main() {
    cocktail_bench::experiments::fig1_heatmap();
}
