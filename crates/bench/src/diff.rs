//! Comparison of two `results/` directories: per-metric deltas between the
//! machine-readable experiment records, for catching perf/accuracy
//! regressions in review.
//!
//! Every numeric leaf of a record is addressed by a dotted path
//! (`rows.3.tpot_us`), compared between the two runs, and summarized as a
//! relative delta. The `bench-diff` binary is a thin CLI over this module.

use serde_json::Value;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// One numeric metric that differs between the two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Dotted path of the metric inside the record.
    pub path: String,
    /// Value in the baseline directory.
    pub before: f64,
    /// Value in the candidate directory.
    pub after: f64,
    /// `(after - before) / |before|`; infinite when a zero baseline became
    /// non-zero.
    pub rel_delta: f64,
}

/// Comparison of one record file present in both directories.
#[derive(Debug, Clone)]
pub struct FileDiff {
    /// File name (e.g. `fig5_tpot.json`).
    pub file: String,
    /// Number of numeric metrics compared.
    pub compared: usize,
    /// Metrics whose value changed, sorted by descending `|rel_delta|`.
    pub deltas: Vec<MetricDelta>,
    /// Metric paths present only in the baseline.
    pub only_in_baseline: usize,
    /// Metric paths present only in the candidate.
    pub only_in_candidate: usize,
}

impl FileDiff {
    /// The largest absolute relative delta in this file (0 when identical).
    pub fn max_abs_rel_delta(&self) -> f64 {
        self.deltas
            .first()
            .map(|d| d.rel_delta.abs())
            .unwrap_or(0.0)
    }
}

/// Comparison of two whole `results/` directories.
#[derive(Debug, Clone, Default)]
pub struct DirDiff {
    /// Per-file comparisons for files present on both sides.
    pub files: Vec<FileDiff>,
    /// Record files present only in the baseline directory.
    pub missing_in_candidate: Vec<String>,
    /// Record files present only in the candidate directory.
    pub missing_in_baseline: Vec<String>,
}

impl DirDiff {
    /// The largest absolute relative delta across all files.
    pub fn max_abs_rel_delta(&self) -> f64 {
        self.files
            .iter()
            .map(FileDiff::max_abs_rel_delta)
            .fold(0.0, f64::max)
    }

    /// Whether any metric moved by more than `threshold` (relative).
    pub fn exceeds(&self, threshold: f64) -> bool {
        self.max_abs_rel_delta() > threshold
    }

    /// Whether the candidate *lost* anything the baseline had: record files
    /// missing from the candidate directory, or metric paths present only
    /// in the baseline. New files/metrics on the candidate side are fine
    /// (experiments grow), but disappearances are regressions — a binary
    /// that stopped emitting its record must not pass a CI gate.
    pub fn has_losses(&self) -> bool {
        !self.missing_in_candidate.is_empty() || self.files.iter().any(|f| f.only_in_baseline > 0)
    }

    /// The overall gate: metric movement above `threshold` or any loss.
    pub fn has_regressions(&self, threshold: f64) -> bool {
        self.exceeds(threshold) || self.has_losses()
    }
}

/// Flattens the numeric leaves of a JSON value into dotted paths.
/// Booleans count as 0/1 (so a flipped `fits` flag shows up as a delta);
/// strings and nulls are ignored.
pub fn flatten_numeric(value: &Value, prefix: &str, out: &mut BTreeMap<String, f64>) {
    match value {
        Value::Int(i) => {
            out.insert(prefix.to_string(), *i as f64);
        }
        Value::Float(f) => {
            out.insert(prefix.to_string(), *f);
        }
        Value::Bool(b) => {
            out.insert(prefix.to_string(), f64::from(u8::from(*b)));
        }
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten_numeric(item, &format!("{prefix}.{i}"), out);
            }
        }
        Value::Object(entries) => {
            for (key, item) in entries {
                let child = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                flatten_numeric(item, &child, out);
            }
        }
        Value::Null | Value::String(_) => {}
    }
}

/// Compares the numeric leaves of two parsed records.
pub fn diff_values(file: &str, baseline: &Value, candidate: &Value) -> FileDiff {
    let mut before = BTreeMap::new();
    let mut after = BTreeMap::new();
    flatten_numeric(baseline, "", &mut before);
    flatten_numeric(candidate, "", &mut after);

    let mut deltas = Vec::new();
    let mut compared = 0usize;
    for (path, &b) in &before {
        let Some(&a) = after.get(path) else { continue };
        compared += 1;
        if a == b {
            continue;
        }
        let rel_delta = if b == 0.0 {
            f64::INFINITY * (a - b).signum()
        } else {
            (a - b) / b.abs()
        };
        deltas.push(MetricDelta {
            path: path.clone(),
            before: b,
            after: a,
            rel_delta,
        });
    }
    deltas.sort_by(|x, y| {
        y.rel_delta
            .abs()
            .partial_cmp(&x.rel_delta.abs())
            .expect("deltas are not NaN")
    });
    let only_in_baseline = before.keys().filter(|k| !after.contains_key(*k)).count();
    let only_in_candidate = after.keys().filter(|k| !before.contains_key(*k)).count();
    FileDiff {
        file: file.to_string(),
        compared,
        deltas,
        only_in_baseline,
        only_in_candidate,
    }
}

fn record_files(dir: &Path) -> io::Result<Vec<String>> {
    let mut names = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".json") {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

/// Compares every `*.json` record present in both directories.
///
/// # Errors
///
/// Returns an [`io::Error`] when a directory cannot be read, a record
/// cannot be opened, or a record fails to parse.
pub fn diff_dirs(baseline: &Path, candidate: &Path) -> io::Result<DirDiff> {
    let before_files = record_files(baseline)?;
    let after_files = record_files(candidate)?;
    let mut diff = DirDiff::default();
    for name in &before_files {
        if !after_files.contains(name) {
            diff.missing_in_candidate.push(name.clone());
        }
    }
    for name in &after_files {
        if !before_files.contains(name) {
            diff.missing_in_baseline.push(name.clone());
        }
    }
    for name in before_files.iter().filter(|n| after_files.contains(*n)) {
        let parse = |path: &Path| -> io::Result<Value> {
            let text = fs::read_to_string(path)?;
            serde_json::from_str(&text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        };
        let b = parse(&baseline.join(name))?;
        let a = parse(&candidate.join(name))?;
        diff.files.push(diff_values(name, &b, &a));
    }
    Ok(diff)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(tpot: f64, batch: i64) -> Value {
        Value::Object(vec![
            ("id".to_string(), Value::String("fig5".into())),
            (
                "rows".to_string(),
                Value::Array(vec![Value::Object(vec![
                    ("tpot_us".to_string(), Value::Float(tpot)),
                    ("batch".to_string(), Value::Int(batch as i128)),
                ])]),
            ),
        ])
    }

    #[test]
    fn identical_records_have_no_deltas() {
        let d = diff_values("fig5.json", &record(100.0, 16), &record(100.0, 16));
        assert_eq!(d.compared, 2);
        assert!(d.deltas.is_empty());
        assert_eq!(d.max_abs_rel_delta(), 0.0);
    }

    #[test]
    fn changed_metric_is_reported_with_relative_delta() {
        let d = diff_values("fig5.json", &record(100.0, 16), &record(110.0, 16));
        assert_eq!(d.deltas.len(), 1);
        let delta = &d.deltas[0];
        assert_eq!(delta.path, "rows.0.tpot_us");
        assert!((delta.rel_delta - 0.1).abs() < 1e-12);
    }

    #[test]
    fn losses_fail_the_gate_but_additions_do_not() {
        let base = Value::Object(vec![
            ("a".to_string(), Value::Int(1)),
            ("b".to_string(), Value::Int(2)),
        ]);
        let shrunk = Value::Object(vec![("a".to_string(), Value::Int(1))]);
        let lost_metric = DirDiff {
            files: vec![diff_values("x.json", &base, &shrunk)],
            ..DirDiff::default()
        };
        assert!(lost_metric.has_losses());
        assert!(lost_metric.has_regressions(1.0));

        let lost_file = DirDiff {
            missing_in_candidate: vec!["gone.json".to_string()],
            ..DirDiff::default()
        };
        assert!(lost_file.has_regressions(f64::INFINITY));

        let grown = DirDiff {
            files: vec![diff_values("x.json", &shrunk, &base)],
            missing_in_baseline: vec!["new.json".to_string()],
            ..DirDiff::default()
        };
        assert!(!grown.has_losses());
        assert!(!grown.has_regressions(0.01));
    }

    #[test]
    fn zero_baseline_going_nonzero_is_infinite_delta() {
        let d = diff_values("x.json", &record(0.0, 1), &record(5.0, 1));
        assert!(d.deltas[0].rel_delta.is_infinite());
        let dir = DirDiff {
            files: vec![d],
            ..DirDiff::default()
        };
        assert!(dir.exceeds(1e12));
    }

    #[test]
    fn missing_paths_are_counted_not_compared() {
        let extra = Value::Object(vec![
            ("a".to_string(), Value::Int(1)),
            ("b".to_string(), Value::Int(2)),
        ]);
        let base = Value::Object(vec![("a".to_string(), Value::Int(1))]);
        let d = diff_values("x.json", &base, &extra);
        assert_eq!(d.compared, 1);
        assert_eq!(d.only_in_candidate, 1);
        assert_eq!(d.only_in_baseline, 0);
    }

    #[test]
    fn strings_are_ignored_and_bools_compared() {
        let a = Value::Object(vec![
            ("note".to_string(), Value::String("x".into())),
            ("fits".to_string(), Value::Bool(true)),
        ]);
        let b = Value::Object(vec![
            ("note".to_string(), Value::String("y".into())),
            ("fits".to_string(), Value::Bool(false)),
        ]);
        let d = diff_values("x.json", &a, &b);
        assert_eq!(d.compared, 1);
        assert_eq!(d.deltas.len(), 1);
        assert_eq!(d.deltas[0].path, "fits");
    }
}
